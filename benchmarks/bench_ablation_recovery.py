"""Ablation — soft-state clocks vs recovery time (MTTR) and bandwidth.

The paper's robustness story (§2.2, §2.4) is that every piece of INS
state is soft, so crash recovery is just the refresh/timeout clocks
running their course. The corollary is a tradeoff the paper never
quantifies: slower clocks cost less control bandwidth but stretch
every recovery path. This ablation drives the chaos harness through a
(refresh interval, neighbor timeout) sweep — each point runs the
standard fault plan (INR crashes with restarts, link flaps, noisy
links, a DSR failover) — and reports detection time, repair time and
control bandwidth per point.
"""

import math

from _report import record_table

from repro.chaos import run_recovery_ablation


def test_ablation_recovery_tradeoff(benchmark):
    rows = benchmark.pedantic(
        lambda: run_recovery_ablation(
            sweep=((1.0, 3.0), (2.0, 6.0), (4.0, 12.0)),
        ),
        rounds=1,
        iterations=1,
    )
    record_table(
        "Ablation: soft-state clocks vs recovery "
        "(5 INRs, crash+restart / flaps / noisy links / DSR failover)",
        ["refresh (s)", "nbr timeout (s)", "crash detect p100 (s)",
         "crash MTTR p50 (s)", "crash MTTR p100 (s)",
         "failover MTTR (s)", "control bytes/s"],
        [
            (
                f"{row.refresh_interval:.0f}",
                f"{row.neighbor_timeout:.0f}",
                f"{row.crash_detect_p100:.2f}",
                f"{row.crash_mttr_p50:.2f}",
                f"{row.crash_mttr_p100:.2f}",
                f"{row.failover_mttr_p100:.2f}",
                f"{row.control_bytes_per_second:.0f}",
            )
            for row in rows
        ],
    )
    # Every fault at every sweep point must actually heal: an inf here
    # means a crashed resolver never fully rejoined or a failed-over
    # DSR never reconverged on the live set.
    for row in rows:
        assert math.isfinite(row.crash_detect_p100)
        assert math.isfinite(row.crash_mttr_p50)
        assert math.isfinite(row.crash_mttr_p100)
        assert math.isfinite(row.failover_mttr_p100)
        assert row.violations == 0
    # Slower clocks -> cheaper control plane but slower failure
    # detection; repair time is monotone too (restart delay floor plus
    # a refresh-interval-bound name rebuild).
    bandwidths = [row.control_bytes_per_second for row in rows]
    detects = [row.crash_detect_p100 for row in rows]
    repairs = [row.crash_mttr_p100 for row in rows]
    assert bandwidths == sorted(bandwidths, reverse=True)
    assert detects == sorted(detects)
    assert repairs == sorted(repairs)
    # The 4x clock span should move both sides of the tradeoff
    # materially, not within noise.
    assert bandwidths[0] / bandwidths[-1] > 2
    assert detects[-1] / detects[0] > 2
