"""Ablation — incrementally-indexed subtree aggregates in the name-tree.

LOOKUP-NAME's wild-card branch unions "all of the name-records in the
subtree rooted at Tv" (Figure 5); the straightforward implementation
traverses the subtree on every wild-card lookup. Engine-driven: the
``lookup`` workload's baseline keeps the incremental per-value-node
aggregates and the ``subtree_index`` arm ablates them back to the
paper's traversal. The wall-clock gain is real but bounded — copying
the result set dominates once it is large — which is itself the
finding; the *deterministic* evidence is the analytic scan cost, which
collapses to zero with the index.
"""

from _report import record_table

from repro.xp import ExperimentSpec, WORKLOADS, run_spec

# lookup_memo is pinned off: the repeated wild-card timing must measure
# the union construction itself, not a memo hit (the original ablation
# built plain trees too).
SPEC = ExperimentSpec(
    name="subtree-indexing",
    workload="lookup",
    seed=11,
    toggles={"lookup_memo": False},
    params={"names": 6000},
    ablations=("subtree_index",),
)


def test_ablation_subtree_indexing(benchmark):
    run = benchmark.pedantic(
        lambda: run_spec(SPEC, timing=True), rounds=1, iterations=1
    )
    for title, headers, rows in WORKLOADS["lookup"].suite_tables(run):
        record_table(title, headers, rows)
    base = run.baseline
    ablated = run.ablations["subtree_index"]
    # The index must actually help on the wall clock...
    assert base.timings["wildcard_us"] < ablated.timings["wildcard_us"]
    # ...and deterministically: the indexed union walks zero nodes.
    assert base.metrics["wildcard_scan_nodes"] == 0
    assert ablated.metrics["wildcard_scan_nodes"] > 0
    # Results stay identical either way.
    assert base.metrics["wildcard_matches"] == ablated.metrics["wildcard_matches"]
