"""Ablation — incrementally-indexed subtree aggregates in the name-tree.

LOOKUP-NAME's wild-card branch unions "all of the name-records in the
subtree rooted at Tv" (Figure 5); the straightforward implementation
traverses the subtree on every wild-card lookup. This ablation measures
maintaining per-value-node aggregates incrementally instead: wild-card
unions become dictionary copies, at the price of O(depth) bookkeeping
per insert/remove. The gain is real but bounded — copying the result
set dominates once it is large — which is itself the finding.
"""

import random
import time

from _report import record_table

from repro.experiments.workload import UniformWorkload
from repro.naming import NameSpecifier
from repro.nametree import AnnouncerID, NameRecord, NameTree


def _build(indexed: bool, names: int, seed: int) -> NameTree:
    tree = NameTree(index_subtrees=indexed)
    workload = UniformWorkload(rng=random.Random(seed))
    for i, name in enumerate(workload.distinct_names(names)):
        tree.insert(name, NameRecord(announcer=AnnouncerID.generate(f"ix{i}")))
    return tree


def _measure(tree: NameTree, query: NameSpecifier, repetitions: int) -> float:
    started = time.perf_counter()
    for _ in range(repetitions):
        tree.lookup(query)
    return (time.perf_counter() - started) / repetitions * 1e6


def test_ablation_subtree_indexing(benchmark):
    names = 6000
    repetitions = 40
    wildcard = NameSpecifier.parse("[a0=*]")
    plain = _build(False, names, seed=11)
    indexed = _build(True, names, seed=11)

    plain_us = _measure(plain, wildcard, repetitions)
    indexed_us = _measure(indexed, wildcard, repetitions)

    # Let pytest-benchmark time the optimized variant precisely.
    benchmark(lambda: indexed.lookup(wildcard))

    record_table(
        f"Ablation: subtree indexing, top-level wild-card over {names} names",
        ["variant", "us per wild-card lookup"],
        [
            ("traversal (paper's algorithm)", f"{plain_us:.0f}"),
            ("incremental index", f"{indexed_us:.0f}"),
            ("speedup", f"{plain_us / indexed_us:.2f}x"),
        ],
    )
    assert indexed_us < plain_us  # the index must actually help
    # and results stay identical
    assert len(plain.lookup(wildcard)) == len(indexed.lookup(wildcard))
