"""Figure 14 — discovery time of a new name vs overlay hops.

Paper: T_d(h) = h (T_lookup + T_graft + T_update + d_link): linear in
hop count with a slope under 10 ms/hop; typical discovery times are a
few tens of milliseconds. Engine-driven: the ``discovery`` workload's
baseline is the traced run and its ``obs_tracing`` ablation is the
untraced control, so the zero-cost-when-off claim is the ablation delta
itself (importance 0 in the matrix).
"""

import os

import pytest

from _report import RESULTS_DIR, record_table

from repro.experiments.fig14 import (
    slope_ms_per_hop,
    write_bench_discovery_json,
)
from repro.xp import ExperimentSpec, run_spec

SPEC = ExperimentSpec(
    name="fig14-discovery",
    workload="discovery",
    seed=0,
    params={"max_hops": 9},
)


def test_fig14_discovery_time(benchmark):
    run = benchmark.pedantic(
        lambda: run_spec(SPEC, timing=False), rounds=1, iterations=1
    )
    rows = run.baseline.details["rows"]
    slope = slope_ms_per_hop(rows)
    assert slope == run.baseline.metrics["slope_ms_per_hop"]
    # The baseline run is traced; the ablated arm is the same seed with
    # the collector gone. Discovery traffic carries no trace contexts,
    # so observation must not move a single timestamp — the
    # zero-cost-when-off claim, checked per row.
    unobserved = run.ablations["obs_tracing"].details["rows"]
    assert unobserved == rows
    payload = write_bench_discovery_json(
        os.path.join(RESULTS_DIR, "BENCH_discovery.json"),
        rows,
        run.baseline.collector,
    )
    metrics = payload["observability"]["metrics"]
    assert "counters" in metrics and "gauges" in metrics
    record_table(
        "Figure 14: discovery time of a new name vs INR hops "
        f"(slope {slope:.2f} ms/hop)",
        ["hops", "discovery time (ms)"],
        [(row.hops, f"{row.discovery_ms:.2f}") for row in rows],
    )
    assert slope < 10.0  # the paper's bound
    assert rows[-1].discovery_ms < 100.0  # "tens of milliseconds"
    # Linearity: every point close to the fitted line.
    intercept = rows[0].discovery_ms - slope * rows[0].hops
    for row in rows:
        assert row.discovery_ms == pytest.approx(
            intercept + slope * row.hops, rel=0.1
        )
