"""Ablation — overlay relaxation (the Section 2.4 future-work feature).

After link conditions change, the join-time spanning tree is no longer
near-optimal. Relaxation probes earlier-ordered INRs and swaps parent
edges; the tree cost should approach the greedy cost achievable under
the new latencies.
"""

from _report import record_table

from repro.experiments.ablations import run_relaxation_experiment


def test_ablation_overlay_relaxation(benchmark):
    result = benchmark.pedantic(
        lambda: run_relaxation_experiment(inr_count=8, rounds=400.0),
        rounds=1,
        iterations=1,
    )
    record_table(
        "Ablation: overlay tree cost (sum of parent-edge latencies, s)",
        ["after degradation", "after relaxation", "greedy under new latencies"],
        [
            (
                f"{result.initial_tree_cost:.4f}",
                f"{result.relaxed_tree_cost:.4f}",
                f"{result.optimal_like_cost:.4f}",
            )
        ],
    )
    assert result.relaxed_tree_cost < result.initial_tree_cost * 0.7
    assert result.relaxed_tree_cost <= result.optimal_like_cost * 1.5
