"""Ablation — the Section 2.5 load-balancing machinery end to end.

Spawn: a lookup-overloaded INR claims a candidate and a helper appears
while the load flows, then retires when idle. Delegate: an
update-overloaded INR hands a whole virtual space (names included) to a
fresh INR and the space stays resolvable through vspace forwarding.
"""

from _report import record_table

from repro.experiments.ablations import (
    run_delegation_experiment,
    run_spawn_experiment,
)


def test_ablation_spawn(benchmark):
    result = benchmark.pedantic(
        lambda: run_spawn_experiment(request_rate=900.0, duration=40.0),
        rounds=1,
        iterations=1,
    )
    record_table(
        "Ablation: spawn on lookup overload",
        ["INRs before", "INRs during load", "INRs after idle",
         "spawned nodes", "main peak util", "main min util (late)"],
        [
            (
                result.inrs_before,
                result.inrs_during_load,
                result.inrs_after,
                ",".join(result.spawned_addresses) or "-",
                f"{result.main_peak_utilization:.2f}",
                f"{result.main_min_utilization_late:.2f}",
            )
        ],
    )
    assert result.inrs_before == 1
    assert result.inrs_during_load >= 2
    assert result.inrs_after == 1  # helpers retire when idle
    # The overloaded resolver was saturated, and client re-selection
    # moved the load off it for at least part of the late window (one
    # client oscillates between resolvers rather than splitting).
    assert result.main_peak_utilization > 0.9
    assert result.main_min_utilization_late < (
        result.main_peak_utilization / 2
    )


def test_ablation_delegation(benchmark):
    result = benchmark.pedantic(run_delegation_experiment, rounds=1, iterations=1)
    record_table(
        "Ablation: vspace delegation on update overload",
        ["vspaces before", "vspaces after", "delegate resolver",
         "delegated space still resolvable"],
        [
            (
                ",".join(result.vspaces_before),
                ",".join(result.vspaces_after),
                ",".join(result.delegate_resolvers) or "-",
                result.still_resolvable,
            )
        ],
    )
    assert len(result.vspaces_after) < len(result.vspaces_before)
    assert result.delegate_resolvers
    assert result.still_resolvable
