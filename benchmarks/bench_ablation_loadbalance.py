"""Ablation — the Section 2.5 load-balancing machinery end to end.

Engine-driven: the ``spawn-overload`` and ``update-overload`` workloads
run baseline vs ``load_balancing``-ablated arms from the same specs the
committed ``BENCH_matrix.json`` uses. Spawn: a lookup-overloaded INR
claims a candidate and a helper appears while the load flows, then
retires when idle. Delegate: an update-overloaded INR hands a whole
virtual space (names included) to a fresh INR and the space stays
resolvable through vspace forwarding. With the policy ablated, the
overloaded resolver just stays overloaded.
"""

from _report import record_table

from repro.xp import ExperimentSpec, WORKLOADS, run_spec

SPAWN_SPEC = ExperimentSpec(
    name="spawn-overload",
    workload="spawn-overload",
    seed=0,
    params={"request_rate": 900.0, "duration": 40.0},
)

UPDATE_SPEC = ExperimentSpec(
    name="update-overload", workload="update-overload", seed=0
)


def test_ablation_spawn(benchmark):
    run = benchmark.pedantic(
        lambda: run_spec(SPAWN_SPEC, timing=False), rounds=1, iterations=1
    )
    for title, headers, rows in WORKLOADS["spawn-overload"].suite_tables(run):
        record_table(title, headers, rows)
    result = run.baseline.details["result"]
    assert result.inrs_before == 1
    assert result.inrs_during_load >= 2
    assert result.inrs_after == 1  # helpers retire when idle
    # The overloaded resolver was saturated, and client re-selection
    # moved the load off it for at least part of the late window (one
    # client oscillates between resolvers rather than splitting).
    assert result.main_peak_utilization > 0.9
    assert result.main_min_utilization_late < (
        result.main_peak_utilization / 2
    )
    # Ablated: with the policy off no helper ever appears and the main
    # resolver never gets relief.
    off = run.ablations["load_balancing"].details["result"]
    assert not off.spawned_addresses
    assert off.inrs_during_load == 1


def test_ablation_delegation(benchmark):
    run = benchmark.pedantic(
        lambda: run_spec(UPDATE_SPEC, timing=False), rounds=1, iterations=1
    )
    for title, headers, rows in WORKLOADS["update-overload"].suite_tables(run):
        record_table(title, headers, rows)
    result = run.baseline.details["result"]
    assert len(result.vspaces_after) < len(result.vspaces_before)
    assert result.delegate_resolvers
    assert result.still_resolvable
    # Ablated: the overloaded resolver keeps every vspace.
    off = run.ablations["load_balancing"].details["result"]
    assert len(off.vspaces_after) == len(off.vspaces_before)
    assert not off.delegate_resolvers
