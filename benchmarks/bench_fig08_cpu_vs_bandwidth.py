"""Figure 8 — CPU vs bandwidth saturation.

Paper: with 82-byte names refreshed every 15 s across a 1 Mbps link, the
Pentium II's CPU saturates (100%) well before the link does; at 20 000
names the bandwidth is still below 1 Mbps.

This bench regenerates the two curves at the paper's full scale
(0..20 000 names) and additionally benchmarks the per-interval update
processing step that drives the CPU curve.
"""

from _report import record_table

from repro.experiments.fig08 import run_saturation_experiment, saturation_point


def test_fig08_cpu_vs_bandwidth(benchmark):
    rows = benchmark.pedantic(
        lambda: run_saturation_experiment(
            name_counts=(0, 2500, 5000, 7500, 10000, 12500, 15000, 17500, 20000),
            measure_intervals=2,
        ),
        rounds=1,
        iterations=1,
    )
    record_table(
        "Figure 8: CPU vs bandwidth saturation (15 s refresh, 1 Mbps link)",
        ["names", "cpu %", "bandwidth %", "bytes/interval"],
        [
            (
                row.total_names,
                f"{row.cpu_percent:.1f}",
                f"{row.bandwidth_percent:.1f}",
                row.bytes_per_interval,
            )
            for row in rows
        ],
    )
    point = saturation_point(rows)
    # The paper's shape: CPU-bound — saturation between 10k and 15k
    # names while bandwidth never reaches the 1 Mbps link.
    assert 10000 < point <= 15000
    assert all(row.bandwidth_percent < 100 for row in rows)
    assert all(
        row.cpu_percent > row.bandwidth_percent for row in rows if row.total_names
    )
