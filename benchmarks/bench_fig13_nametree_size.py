"""Figure 13 — name-tree memory footprint.

Paper: the Java heap allocated to the name-tree grows from ~0.5 MB to
~4 MB as names go from a few hundred to 14 300, steeper early (while
the attribute/value vocabulary fills in) and linear afterwards.
"""

from _report import record_table

from repro.experiments.fig13 import run_size_experiment


def test_fig13_nametree_size(benchmark):
    rows = benchmark.pedantic(
        lambda: run_size_experiment(
            name_counts=(100, 1000, 2500, 5000, 7500, 10000, 14300)
        ),
        rounds=1,
        iterations=1,
    )
    record_table(
        "Figure 13: name-tree size vs names in the tree",
        ["names in tree", "megabytes"],
        [(row.names_in_tree, f"{row.tree_megabytes:.2f}") for row in rows],
    )
    sizes = [row.tree_bytes for row in rows]
    assert sizes == sorted(sizes)  # monotone growth
    # Same order of magnitude as the paper at full size (0.5-4 MB there).
    assert 0.5 < rows[-1].tree_megabytes < 40
    # Early slope (vocabulary building) steeper than the late slope.
    early = (rows[1].tree_bytes - rows[0].tree_bytes) / 900
    late = (rows[-1].tree_bytes - rows[-2].tree_bytes) / 4300
    assert early > late
