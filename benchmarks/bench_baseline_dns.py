"""Baseline comparison — INS late binding vs DNS-style early binding.

The paper motivates intentional naming with exactly this failure mode:
a name-to-address mapping that changes during a session strands every
client that resolved early. One service, one request every 0.5 s, the
service's host moves at t=20 s.
"""

import math

from _report import record_table

from repro.experiments.baseline_dns import run_mobility_comparison


def test_baseline_dns_vs_ins(benchmark):
    rows = benchmark.pedantic(run_mobility_comparison, rounds=1, iterations=1)
    record_table(
        "Baseline: node mobility at t=20s, one request per 0.5s for 120s",
        ["system", "sent", "delivered", "outage after move (s)"],
        [
            (
                row.system,
                row.requests_sent,
                row.delivered,
                "never recovers" if math.isinf(row.outage_seconds)
                else f"{row.outage_seconds:.1f}",
            )
            for row in rows
        ],
    )
    ins, dns_fixed, dns_stale = rows
    # INS: essentially lossless, sub-second outage.
    assert ins.delivered >= ins.requests_sent - 2
    assert ins.outage_seconds < 2.0
    # DNS with an operator fixing the record: loses everything until the
    # client's cached answer expires (TTL-bound outage — here the cache
    # was filled at t~1s with a 60 s TTL, so ~40 s of the run is dark).
    assert dns_fixed.delivered <= ins.delivered - 50
    assert 10.0 < dns_fixed.outage_seconds < 70.0
    # DNS never re-registered: dead after the move.
    assert math.isinf(dns_stale.outage_seconds)
