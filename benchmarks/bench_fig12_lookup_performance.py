"""Figure 12 — name-tree lookup performance.

Paper: with r_a = 3, r_v = 3, n_a = 2, d = 3, their Java tree sustains
~900 lookups/s at small n decaying to ~700 at 14 300 names. We run the
same sweep natively; absolute rates differ with the host, but the mild,
smooth decay is the shape to reproduce. The pytest-benchmark timing
measures a single LOOKUP-NAME call against the largest tree.
"""

import os
import random

from _report import RESULTS_DIR, record_table

from repro.experiments.fig12 import (
    MemoAblationResult,
    run_lookup_experiment,
    run_update_ingestion_bench,
    write_bench_lookup_json,
)
from repro.experiments.workload import UniformWorkload
from repro.nametree import NameTree
from repro.xp import ExperimentSpec, WORKLOADS, run_spec


def test_fig12_lookup_curve(benchmark):
    rows = benchmark.pedantic(
        lambda: run_lookup_experiment(
            name_counts=(100, 1000, 2500, 5000, 7500, 10000, 14300),
            lookups_per_point=1000,
        ),
        rounds=1,
        iterations=1,
    )
    record_table(
        "Figure 12: name-tree lookup performance (r_a=3, r_v=3, n_a=2, d=3)",
        ["names in tree", "lookups/s", "mean lookup (us)"],
        [
            (
                row.names_in_tree,
                f"{row.lookups_per_second:.0f}",
                f"{row.mean_lookup_us:.1f}",
            )
            for row in rows
        ],
    )
    first, last = rows[0], rows[-1]
    # The paper's shape: throughput decays as the tree grows. This is a
    # wall-clock measurement, so allow small per-step noise while
    # requiring the overall trend to be downward.
    rates = [row.lookups_per_second for row in rows]
    assert last.lookups_per_second < first.lookups_per_second
    for earlier, later in zip(rates, rates[1:]):
        assert later <= earlier * 1.15
    # The per-name cost growth is tiny: the paper's Java tree adds
    # ~22 ns of lookup time per extra name (1.11 -> 1.43 ms across
    # 14 200 names); ours must stay in the same regime (< 25 ns/name).
    growth_ns_per_name = (
        (last.mean_lookup_us - first.mean_lookup_us)
        * 1000.0
        / (last.names_in_tree - first.names_in_tree)
    )
    assert growth_ns_per_name < 25.0
    # And absolute throughput comfortably beats the paper's 700/s floor.
    assert last.lookups_per_second > 5000


#: The memo's home workload, engine-declared: the baseline arm runs
#: memoized with periodic refreshes, the ``lookup_memo`` ablation arm
#: is the uncached control — same tree, same queries, same refreshes.
MEMO_SPEC = ExperimentSpec(
    name="fig12-memo",
    workload="lookup",
    seed=0,
    params={"names": 5000, "lookups": 20000},
    ablations=("lookup_memo",),
)


def test_fig12_memo_ablation(benchmark):
    """Cached vs uncached LOOKUP-NAME on the repeated-query workload.

    An INR's resolution hot path sees the same few destination names
    over and over between advertisement changes; the per-tree memo
    (keyed by canonical name, invalidated by the tree epoch) turns
    those repeats into hash hits. Emits ``BENCH_lookup.json`` with the
    Figure-12 curve and the ablation numbers.
    """
    run = benchmark.pedantic(
        lambda: run_spec(MEMO_SPEC, timing=True), rounds=1, iterations=1
    )
    base = run.baseline
    uncached_arm = run.ablations["lookup_memo"]
    ablation = MemoAblationResult(
        names_in_tree=int(MEMO_SPEC.params["names"]),
        distinct_queries=64,
        lookups=int(MEMO_SPEC.params["lookups"]),
        uncached_lookups_per_second=uncached_arm.timings["lookups_per_second"],
        cached_lookups_per_second=base.timings["lookups_per_second"],
        speedup=(
            base.timings["lookups_per_second"]
            / uncached_arm.timings["lookups_per_second"]
        ),
        memo_hits=int(base.metrics["memo_hits"]),
        memo_misses=int(base.metrics["memo_misses"]),
        refreshes_during_cached_run=int(base.metrics["refreshes"]),
        memo_invalidations=int(base.metrics["memo_invalidations"]),
    )
    ingestion = run_update_ingestion_bench()
    curve = run_lookup_experiment(
        name_counts=(100, 2500, 5000), lookups_per_point=1000
    )
    payload = write_bench_lookup_json(
        os.path.join(RESULTS_DIR, "BENCH_lookup.json"), curve, ablation,
        ingestion,
    )
    for title, headers, rows in WORKLOADS["lookup"].suite_tables(run):
        record_table(title, headers, rows)
    assert payload["memo_ablation"]["speedup"] == ablation.speedup
    # The fast path must be worth having: >= 2x on repeated queries.
    assert ablation.speedup >= 2.0
    # Batched refresh ingestion must beat per-update validation: the
    # refresh fast path plus one epoch per batch is the whole point.
    assert payload["update_ingestion"]["speedup"] == ingestion.speedup
    assert ingestion.speedup >= 1.5
    # Pure periodic refreshes kept the memo warm: each distinct query
    # misses once, every other lookup hits.
    assert ablation.memo_misses == ablation.distinct_queries
    assert ablation.memo_invalidations == 0
    assert ablation.refreshes_during_cached_run > 0


def test_fig12_single_lookup_benchmark(benchmark):
    workload = UniformWorkload(rng=random.Random(0))
    tree = NameTree()
    workload.populate_tree(tree, 5000)
    queries = [workload.random_name() for _ in range(256)]
    index = iter(range(1 << 30))

    def one_lookup():
        tree.lookup(queries[next(index) % len(queries)])

    benchmark(one_lookup)
