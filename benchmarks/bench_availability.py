"""Availability under chaos — request resilience on vs off.

The paper's robustness claims (§2.2, §2.4) are about the *resolver
mesh*: soft state heals. This benchmark measures robustness where the
application feels it — at the request boundary. Engine-driven: the
``availability`` workload runs steady early-binding lookup traffic
through one seeded fault plan (INR crashes with restarts, lossy links,
a mesh partition, CPU overload); the baseline arm keeps the client
resilience layer (retries/backoff, deadlines, failover) and the
``resilience`` ablation arm is plain fire-and-forget. Same seed, same
faults — the difference is purely what the resilience machinery buys:
higher success rate and zero permanently-hung replies, paid for with
retry traffic and a longer success tail (retried requests succeed late
instead of never).

Emits ``BENCH_availability.json`` with both runs plus the success-rate
delta for trend tracking across sessions. The resilience-on run is
traced: every lookup's hop-by-hop span tree lands in
``BENCH_availability_spans.jsonl`` and, for ``chrome://tracing`` /
Perfetto, ``BENCH_availability_trace.json``; the artifact JSON embeds
the harvested metrics and span summary under ``observability``.
"""

import math
import os

from _report import RESULTS_DIR, record_table, write_json_artifact

from repro.chaos import write_bench_availability_json
from repro.obs import well_formed_traces, write_chrome_trace, write_spans_jsonl
from repro.xp import ExperimentSpec, run_spec

#: Same spec as the committed ``BENCH_matrix.json`` entry, restricted
#: to the resilience arm (the full matrix also ablates admission
#: control and tracing; this driver regenerates the on/off artifact).
SPEC = ExperimentSpec(
    name="availability-chaos",
    workload="availability",
    seed=7,
    ablations=("resilience",),
)


def _mttr_cell(report, kind):
    stats = report.mttr.get(kind)
    return f"{stats['p100']:.2f}" if stats else "-"


def test_availability_resilience_on_vs_off(benchmark):
    run = benchmark.pedantic(
        lambda: run_spec(SPEC, timing=False), rounds=1, iterations=1
    )
    resilient = run.baseline.details["report"]
    bare = run.ablations["resilience"].details["report"]
    payload = write_bench_availability_json(
        os.path.join(RESULTS_DIR, "BENCH_availability.json"), resilient, bare
    )
    # Span-tree acceptance: every traced lookup forms a well-formed tree
    # (single client.request root, every hop span parented inside it),
    # and the artifacts are written for offline inspection.
    spans = resilient.collector.tracer.spans
    assert spans, "observed run produced no spans"
    assert well_formed_traces(spans) == {}
    roots = [span for span in spans if span.is_root]
    assert all(span.name == "client.request" for span in roots)
    assert len(roots) == resilient.requests_attempted
    write_spans_jsonl(
        os.path.join(RESULTS_DIR, "BENCH_availability_spans.jsonl"), spans
    )
    write_chrome_trace(
        os.path.join(RESULTS_DIR, "BENCH_availability_trace.json"), spans
    )
    # The standalone metrics snapshot — the artifact the determinism
    # contract promises is byte-identical across same-seed runs.
    write_json_artifact(
        "BENCH_availability_metrics.json",
        resilient.collector.metrics_snapshot(),
    )
    assert "observability" in payload
    record_table(
        "Availability: request resilience on vs off "
        "(4 INRs, crash+restart / partition / lossy links / CPU overload)",
        ["resilience", "requests", "success rate", "failed", "hung",
         "p50 (s)", "p99 (s)", "retries", "failovers", "crash MTTR p100 (s)"],
        [
            (
                "on" if report.resilience else "off",
                f"{report.requests_attempted}",
                f"{report.success_rate:.3f}",
                f"{report.requests_failed}",
                f"{report.requests_hung}",
                f"{report.latency_p50:.4f}",
                f"{report.latency_p99:.4f}",
                f"{report.retries}",
                f"{report.failovers}",
                _mttr_cell(report, "crash-inr"),
            )
            for report in (resilient, bare)
        ],
    )
    # The acceptance bar: under identical seeded faults the resilience
    # layer must strictly raise the success rate, and no Reply may be
    # left permanently pending when it is on.
    assert resilient.requests_attempted == bare.requests_attempted > 0
    assert resilient.success_rate > bare.success_rate
    assert resilient.requests_hung == 0
    # Fire-and-forget under loss leaves replies hanging forever — the
    # failure mode the Reply error path exists to eliminate.
    assert bare.requests_hung > 0
    assert math.isfinite(resilient.latency_p99)
    assert payload["success_rate_delta"] > 0
