"""Ablation — the Section 5.1.1 analytic model vs measurements.

Checks that measured LOOKUP-NAME times track the fitted
T(d) = Theta(n_a^d (t + b)) model as the name-specifier depth grows, and
quantifies the hash-table vs linear-search gap the analysis predicts.
"""

from _report import record_table

from repro.analysis import relative_error
from repro.experiments.ablations import run_lookup_model_check


def test_ablation_lookup_model(benchmark):
    rows, fitted_t_us, fitted_b_us = benchmark.pedantic(
        lambda: run_lookup_model_check(
            depths=(1, 2, 3, 4, 5), names_per_tree=300, lookups=400
        ),
        rounds=1,
        iterations=1,
    )
    record_table(
        "Ablation: T(d) model vs measured lookup time "
        f"(fit t={fitted_t_us:.2f}us, b={fitted_b_us:.2f}us)",
        ["depth d", "measured (us)", "model (us)", "linear search (us)"],
        [
            (
                row.depth,
                f"{row.measured_us:.1f}",
                f"{row.predicted_us:.1f}",
                f"{row.linear_search_us:.1f}",
            )
            for row in rows
        ],
    )
    # Growth is super-linear in d (the n_a^d term).
    assert rows[-1].measured_us > 3 * rows[0].measured_us
    # The fitted model tracks the deeper measurements well.
    for row in rows[1:]:
        assert relative_error(row.predicted_us, row.measured_us) < 0.5
    # Linear child search loses to hashing at depth (the paper's reason
    # for the hash-table design).
    assert rows[-1].linear_search_us > rows[-1].measured_us * 0.8
