"""Ablation — the INR packet-caching extension (Section 3.2).

Repeated cacheable Camera requests should be answered by INR caches;
the origin camera serves the first request and the caches absorb the
rest.
"""

from _report import record_table

from repro.experiments.ablations import run_cache_experiment


def test_ablation_packet_cache(benchmark):
    result = benchmark.pedantic(
        lambda: run_cache_experiment(requests=10),
        rounds=1,
        iterations=1,
    )
    record_table(
        "Ablation: INR packet cache on repeated Camera requests",
        ["requests", "served by origin", "answered from cache"],
        [(result.requests, result.origin_served, result.cache_answers)],
    )
    assert result.origin_served <= 2
    assert result.cache_answers >= result.requests - 2
