"""Ablation — the INR packet-caching extension (Section 3.2).

Engine-driven: the ``packet-cache`` workload runs the baseline and the
cache-off arm from one spec, so this driver shares its run IDs (and its
numbers) with the committed ``BENCH_matrix.json`` entry of the same
name. Repeated cacheable Camera requests should be answered by INR
caches; the origin camera serves the first request and the caches
absorb the rest — with the cache ablated, every request reaches the
origin.
"""

from _report import record_table

from repro.xp import ExperimentSpec, WORKLOADS, run_spec

SPEC = ExperimentSpec(
    name="packet-cache-camera",
    workload="packet-cache",
    seed=0,
    params={"requests": 10},
)


def test_ablation_packet_cache(benchmark):
    run = benchmark.pedantic(
        lambda: run_spec(SPEC, timing=False), rounds=1, iterations=1
    )
    for title, headers, rows in WORKLOADS["packet-cache"].suite_tables(run):
        record_table(title, headers, rows)
    result = run.baseline.details["result"]
    assert result.origin_served <= 2
    assert result.cache_answers >= result.requests - 2
    # The ablated arm: with the cache off, nothing shields the origin.
    ablated = run.ablations["packet_cache"].details["result"]
    assert ablated.cache_answers == 0
    assert ablated.origin_served == ablated.requests
