"""Figure 15 — per-INR time to route a 100-packet burst.

Paper (586-byte Camera messages, ~82-byte names): local destination
grows 3.1 -> 19 ms/packet as the vspace grows 250 -> 5000 names (mostly
a delivery-code artifact, reproduced deliberately); remote same-vspace
stays flat near 9.8 ms/packet; a different vspace costs a near-constant
381 ms per burst (one DSR query, then cached forwarding).
"""

import os

import pytest

from _report import RESULTS_DIR, record_table

from repro.experiments.fig15 import (
    run_observed_routing,
    run_routing_experiment,
    write_bench_routing_json,
)
from repro.obs import well_formed_traces
from repro.xp import ExperimentSpec, WORKLOADS, run_spec


def test_fig15_routing_burst(benchmark):
    rows = benchmark.pedantic(
        lambda: run_routing_experiment(name_counts=(250, 1000, 2500, 5000)),
        rounds=1,
        iterations=1,
    )
    # Traced rerun of the remote-same-vspace burst: every packet must
    # produce a complete root -> forwarded-at-inr-a -> delivered-at-inr-b
    # span chain.
    burst_ms, collector = run_observed_routing(names=250)
    assert well_formed_traces(collector.tracer.spans) == {}
    hops = [s for s in collector.tracer.spans if s.name == "inr.hop"]
    assert sum(1 for s in hops if s.status == "forwarded") == 100
    assert sum(1 for s in hops if s.status == "delivered") == 100
    write_bench_routing_json(
        os.path.join(RESULTS_DIR, "BENCH_routing.json"),
        rows,
        observed_burst_ms=burst_ms,
        collector=collector,
    )
    record_table(
        "Figure 15: time to route 100 packets (ms per burst)",
        ["names in vspace", "local", "remote same vspace",
         "remote different vspace"],
        [
            (
                row.names_in_vspace,
                f"{row.local_ms:.0f}",
                f"{row.remote_same_vspace_ms:.0f}",
                f"{row.remote_other_vspace_ms:.0f}",
            )
            for row in rows
        ],
    )
    by_names = {row.names_in_vspace: row for row in rows}
    assert by_names[250].local_ms / 100 == pytest.approx(3.1, rel=0.15)
    assert by_names[5000].local_ms / 100 == pytest.approx(19.0, rel=0.15)
    assert by_names[5000].remote_same_vspace_ms == pytest.approx(
        by_names[250].remote_same_vspace_ms, rel=0.05
    )
    assert by_names[250].remote_same_vspace_ms / 100 == pytest.approx(9.8, rel=0.1)
    for row in rows:
        assert row.remote_other_vspace_ms == pytest.approx(381, rel=0.1)


#: The same spec the committed ``BENCH_matrix.json`` runs: the baseline
#: keeps the paper's delivery-code artifact, the ablated arm disables
#: it. Its importance in the matrix is negative by construction — the
#: artifact is a reproduced *cost*.
ABLATION_SPEC = ExperimentSpec(
    name="routing-burst",
    workload="routing",
    seed=0,
    params={"name_counts": (250, 5000)},
)


def test_fig15_ablation_delivery_artifact_off(benchmark):
    """With the paper's delivery-code artifact disabled, the local curve
    flattens — evidence the linearity was the artifact, not lookups."""
    run = benchmark.pedantic(
        lambda: run_spec(ABLATION_SPEC, timing=False), rounds=1, iterations=1
    )
    for title, headers, rows in WORKLOADS["routing"].suite_tables(run):
        record_table(title, headers, rows)
    rows = run.ablations["delivery_artifact"].details["rows"]
    assert rows[1].local_ms == pytest.approx(rows[0].local_ms, rel=0.05)
    # The baseline keeps the artifact's linear growth in the vspace size.
    base_rows = run.baseline.details["rows"]
    assert base_rows[1].local_ms > 3 * base_rows[0].local_ms
