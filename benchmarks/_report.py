"""Result tables produced by benchmark runs.

Each benchmark records the rows it regenerated; the conftest hook prints
every recorded table in the terminal summary (which pytest never
captures) and writes it under ``benchmarks/results/`` so EXPERIMENTS.md
can reference stable artifacts.
"""

from __future__ import annotations

import json
import os
from typing import List, Sequence, Tuple

_TABLES: List[Tuple[str, Sequence[str], List[Sequence[str]]]] = []

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_json_artifact(name: str, payload: dict) -> str:
    """Write ``payload`` under ``benchmarks/results/`` as canonical JSON.

    Canonical means sorted keys, two-space indent and a trailing
    newline, so two runs that produce equal payloads produce
    byte-identical files — the property the determinism checks diff on.
    Returns the path written.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def record_table(title: str, headers: Sequence[str], rows: List[Sequence]) -> None:
    """Register a result table for the end-of-run report."""
    rendered = [[str(cell) for cell in row] for row in rows]
    _TABLES.append((title, [str(h) for h in headers], rendered))
    _write_file(title, headers, rendered)


def _write_file(title: str, headers: Sequence[str], rows: List[Sequence[str]]) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    # A TRAILING parenthesized part of a title carries run-specific
    # numbers (fitted parameters, slopes); strip it so filenames stay
    # stable across runs. Interior parentheses (e.g. "T(d) model") stay.
    import re

    stem = re.sub(r"\s*\([^()]*\)\s*$", "", title).strip()
    slug = "".join(c if c.isalnum() else "_" for c in stem.lower()).strip("_")
    path = os.path.join(RESULTS_DIR, f"{slug}.txt")
    with open(path, "w") as handle:
        handle.write(format_table(title, headers, rows))


def format_table(title: str, headers: Sequence[str], rows: List[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines) + "\n"


def drain_tables():
    """All recorded tables; clears the registry."""
    global _TABLES
    tables, _TABLES = _TABLES, []
    return tables
