"""Ablation — footnote 3: soft-state flooding vs reliable-delta updates.

The paper's footnote 3 sketches the road not taken: reliable TCP-like
connections between INRs carrying only changed entries, "perhaps
eliminating periodic updates at the expense of maintaining connection
state". This bench quantifies the trade on 20 services across two INRs:

- steady-state inter-INR bandwidth (soft state re-floods every name
  each refresh interval; reliable-delta sends empty keepalives),
- removal latency of a dead service's name one hop away (soft state
  cascades one lifetime per hop; a withdrawal propagates instantly once
  the origin notices),
- propagation of a metric change (identical: both modes send triggered
  deltas immediately).
"""

from _report import record_table

from repro.experiments.ablations import run_update_mode_comparison


def test_ablation_update_modes(benchmark):
    rows = benchmark.pedantic(
        lambda: run_update_mode_comparison(services=20),
        rounds=1,
        iterations=1,
    )
    record_table(
        "Ablation: soft-state vs reliable-delta inter-INR updates "
        "(20 services, 15 s refresh)",
        ["mode", "steady bytes/s", "stale removal (s)", "change propagation (s)"],
        [
            (
                row.mode,
                f"{row.steady_state_bytes_per_second:.1f}",
                f"{row.stale_name_removal_s:.1f}",
                f"{row.change_propagation_s:.3f}",
            )
            for row in rows
        ],
    )
    soft, reliable = rows
    assert soft.mode == "soft-state"
    # Reliable-delta slashes steady-state bandwidth by an order of
    # magnitude or more...
    assert reliable.steady_state_bytes_per_second < (
        soft.steady_state_bytes_per_second / 10
    )
    # ...and removes dead names faster (origin expiry only, no
    # per-hop soft-state cascade)...
    assert reliable.stale_name_removal_s < soft.stale_name_removal_s * 0.7
    # ...while changes propagate equally fast in both modes (triggered
    # updates are immediate either way).
    assert abs(reliable.change_propagation_s - soft.change_propagation_s) < 0.1
