"""Ablation — soft-state refresh interval: overhead vs responsiveness.

Section 7 of the paper flags tuning the name dissemination protocol's
bandwidth use as open work: "some names are more ephemeral ... than
others, implying that all names must not be treated equally". This
ablation quantifies the underlying tradeoff for the uniform policy the
paper (and this reproduction) ships: halving the refresh interval
roughly doubles control traffic and roughly halves the time a dead
service's name lingers.
"""

from _report import record_table

from repro.experiments.ablations import run_softstate_experiment


def test_ablation_softstate_tradeoff(benchmark):
    rows = benchmark.pedantic(
        lambda: run_softstate_experiment(refresh_intervals=(2.0, 5.0, 15.0)),
        rounds=1,
        iterations=1,
    )
    record_table(
        "Ablation: soft-state refresh interval tradeoff "
        "(10 services, lifetime = 3x interval)",
        ["refresh interval (s)", "control bytes/s on INR link",
         "stale-name removal (s)"],
        [
            (
                f"{row.refresh_interval:.0f}",
                f"{row.control_bytes_per_second:.0f}",
                f"{row.stale_name_removal_s:.1f}",
            )
            for row in rows
        ],
    )
    # Faster refresh -> more bandwidth, faster staleness removal.
    bandwidths = [row.control_bytes_per_second for row in rows]
    removals = [row.stale_name_removal_s for row in rows]
    assert bandwidths == sorted(bandwidths, reverse=True)
    assert removals == sorted(removals)
    # Roughly proportional both ways across the 7.5x interval span.
    assert bandwidths[0] / bandwidths[-1] > 4
    assert removals[-1] / removals[0] > 3
