"""Disruption tolerance — custody-transfer store-and-forward on vs off.

The availability benchmark shows retries ride out faults *shorter than
a request deadline*. This one measures the opposite regime: duty-cycled
links and partitions that outlast any deadline, where a late-binding
anycast payload is simply lost unless a custodian holds it.
Engine-driven: one ``dtn`` spec per disruption length runs the same
seeded fault plan (intermittent links, then a long partition cutting
the service's resolver — and the DSR — off) twice: the baseline with
the custody store enabled, the ``custody`` ablation arm with the
paper's drop-at-no-route behavior. The delta is purely what disruption
tolerance buys: payloads queued during the partition are delivered
when the service re-advertises on heal, at the price of a latency tail
the length of the disruption.

Emits ``BENCH_dtn.json`` (delivery ratio and latency vs disruption
length, custody on vs off). The first spec is traced: ``inr.custody``
spans (accept/release/expire/evict) land in ``BENCH_dtn_spans.jsonl``;
drop attribution rides the artifact under ``observability``.
"""

import os

from _report import RESULTS_DIR, record_table, write_json_artifact

from repro.chaos import write_bench_dtn_json
from repro.obs import well_formed_traces, write_spans_jsonl
from repro.xp import ExperimentSpec, run_spec

SEED = 7
DISRUPTIONS = (10.0, 30.0, 60.0)

#: One spec per disruption length; only the first is traced (one
#: observed run keeps the sweep cheap while still producing span
#: artifacts for the CI job to upload).
SPECS = [
    ExperimentSpec(
        name=f"dtn-disruption-{int(disruption)}",
        workload="dtn",
        seed=SEED,
        toggles={"obs_tracing": index == 0},
        params={"disruption": disruption},
        ablations=("custody",),
    )
    for index, disruption in enumerate(DISRUPTIONS)
]


def test_dtn_custody_on_vs_off(benchmark):
    runs = benchmark.pedantic(
        lambda: [run_spec(spec, timing=False) for spec in SPECS],
        rounds=1,
        iterations=1,
    )
    rows = [
        {
            "disruption": disruption,
            "custody_on": run.baseline.details["report"],
            "custody_off": run.ablations["custody"].details["report"],
        }
        for disruption, run in zip(DISRUPTIONS, runs)
    ]
    payload = write_bench_dtn_json(
        os.path.join(RESULTS_DIR, "BENCH_dtn.json"), rows
    )
    # Span acceptance: the traced custody-on run produced well-formed
    # trees whose custody spans carry the accept/release lifecycle.
    traced = rows[0]["custody_on"]
    spans = traced.collector.tracer.spans
    assert spans, "observed run produced no spans"
    assert well_formed_traces(spans) == {}
    custody_spans = [span for span in spans if span.name == "inr.custody"]
    statuses = {span.status for span in custody_spans}
    assert "custody-released" in statuses
    write_spans_jsonl(os.path.join(RESULTS_DIR, "BENCH_dtn_spans.jsonl"), spans)
    write_json_artifact(
        "BENCH_dtn_metrics.json", traced.collector.metrics_snapshot()
    )
    assert "observability" in payload
    record_table(
        "DTN: custody transfer on vs off "
        "(duty-cycled links + partition isolating the service's INR)",
        ["disruption (s)", "custody", "sent", "delivered", "ratio",
         "p50 (s)", "max (s)", "accepted", "released", "lapsed"],
        [
            (
                f"{row['disruption']:.0f}",
                "on" if report.custody else "off",
                f"{report.messages_sent}",
                f"{report.messages_delivered}",
                f"{report.delivery_ratio:.3f}",
                f"{report.latency_p50:.3f}",
                f"{report.latency_max:.3f}",
                f"{report.custody_accepted}",
                f"{report.custody_released}",
                f"{report.drops_custody_expired}",
            )
            for row in rows
            for report in (row["custody_on"], row["custody_off"])
        ],
    )
    # The acceptance bar: at every disruption length custody must
    # strictly raise the delivery ratio, the post-heal invariants
    # (including custody-drained) must hold, and no payload may lose
    # attribution — accepted payloads are all released, lapsed, or
    # evicted by the end of the drain.
    for row in rows:
        on, off = row["custody_on"], row["custody_off"]
        assert on.messages_sent == off.messages_sent > 0
        assert on.delivery_ratio > off.delivery_ratio
        assert on.converged_violations == ()
        assert off.converged_violations == ()
        assert on.custody_accepted == (
            on.custody_released
            + on.drops_custody_expired
            + on.drops_custody_evicted
        )
        assert off.custody_accepted == 0
        # Longer partitions stretch the delivery tail: payloads wait in
        # custody for (at most) the disruption plus reconvergence.
        assert on.latency_max <= row["disruption"] + 20.0
