"""Crash-safe vspace delegation — the two-phase handoff under fire.

An overloaded resolver must hand a virtual space to a freshly spawned
INR without losing a name, no matter which side crashes at which phase
of the handoff. This benchmark runs the full crash matrix (donor and
recipient each crashed at OFFER, mid-TRANSFER, AWAIT-COMMIT and the
recipient's COMMITTED window, with an operator restart shortly after)
plus the controlled ablation: the same recipient crash with *no*
operator intervention against the two-phase protocol and against the
paper-era single-shot transfer. Two-phase self-heals — the donor never
stopped serving, aborts, and retries onto a spare; single-shot orphans
the vspace outright.

Emits ``BENCH_delegation.json`` (the matrix and the ablation). The
ablation is engine-driven — the same ``delegation`` spec the committed
``BENCH_matrix.json`` runs, whose baseline arm is the two-phase
protocol and whose ``delegation_two_phase`` arm is the single-shot
transfer. The matrix's baseline run is traced: ``inr.delegate`` spans
(one per phase transition per side) land in
``BENCH_delegation_spans.jsonl``.
"""

import os

from _report import RESULTS_DIR, record_table, write_json_artifact

from repro.chaos import (
    run_delegation_matrix,
    write_bench_delegation_json,
)
from repro.obs import well_formed_traces, write_spans_jsonl
from repro.xp import ExperimentSpec, run_spec

SEED = 7

#: Identical to the committed matrix entry, run-IDs included.
ABLATION_SPEC = ExperimentSpec(
    name="delegation-crash", workload="delegation", seed=SEED
)

#: The dual-serving guarantee: lookups issued while a handoff is in
#: flight keep succeeding, because the donor answers until COMMIT.
WINDOW_SUCCESS_FLOOR = 0.95

#: Donor-crash runs kill the vspace's only authority outright for the
#: restart gap — unavailability no handoff protocol can mask. The bar
#: there is recovery, not continuity.
DONOR_CRASH_FLOOR = 0.70


def test_delegation_crash_matrix_and_ablation(benchmark):
    matrix, ablation_run = benchmark.pedantic(
        lambda: (
            run_delegation_matrix(seed=SEED, observe_baseline=True),
            run_spec(ABLATION_SPEC, timing=False),
        ),
        rounds=1,
        iterations=1,
    )
    ablation = {
        "two_phase": ablation_run.baseline.details["report"],
        "ablated": ablation_run.ablations["delegation_two_phase"].details[
            "report"
        ],
    }
    payload = write_bench_delegation_json(
        os.path.join(RESULTS_DIR, "BENCH_delegation.json"), matrix, ablation
    )

    # Span acceptance: the traced baseline produced well-formed trees
    # carrying the full delegation phase lifecycle on both sides.
    traced = matrix[0]
    spans = traced.collector.tracer.spans
    assert spans, "observed run produced no spans"
    assert well_formed_traces(spans) == {}
    delegate_spans = [span for span in spans if span.name == "inr.delegate"]
    phases = {
        (span.tags.get("role"), span.tags.get("phase"))
        for span in delegate_spans
    }
    for expected in (
        ("donor", "offer"),
        ("donor", "transfer"),
        ("donor", "await-commit"),
        ("donor", "commit"),
        ("recipient", "offer"),
        ("recipient", "commit"),
    ):
        assert expected in phases, f"missing delegation span {expected}"
    write_spans_jsonl(
        os.path.join(RESULTS_DIR, "BENCH_delegation_spans.jsonl"), spans
    )
    write_json_artifact(
        "BENCH_delegation_metrics.json", traced.collector.metrics_snapshot()
    )
    assert "observability" in payload

    record_table(
        "Delegation under fire: two-phase handoff crash matrix "
        "(sustained update overload; crash + restart at each phase)",
        ["crash", "phase", "handoffs", "committed", "aborted", "rollbacks",
         "window ok", "overall ok", "lost", "authority"],
        [
            (
                report.crash_role or "none",
                report.crash_phase or "-",
                f"{report.delegations_started}",
                f"{report.delegations_committed}",
                f"{report.delegations_aborted}",
                f"{report.delegation_rollbacks}",
                f"{report.window_success_rate:.3f}",
                f"{report.success_rate:.3f}",
                f"{report.lost_records}",
                ",".join(report.authority),
            )
            for report in matrix
        ],
    )
    on, off = ablation["two_phase"], ablation["ablated"]
    record_table(
        "Delegation ablation: recipient crash, no operator restart "
        "(two-phase vs single-shot transfer)",
        ["mode", "window ok", "overall ok", "lost records", "authority",
         "converged violations"],
        [
            (
                label,
                f"{report.window_success_rate:.3f}",
                f"{report.success_rate:.3f}",
                f"{report.lost_records}",
                ",".join(report.authority) or "(none)",
                ",".join(sorted(set(report.converged_violations))) or "-",
            )
            for label, report in (("two-phase", on), ("single-shot", off))
        ],
    )

    # ------------------------------------------------------------------
    # The acceptance bar.
    # ------------------------------------------------------------------
    for report in matrix:
        # Crash safety: whatever crashed, wherever, after convergence no
        # name record is lost, exactly one live INR routes each vspace,
        # no handoff is left in flight, and the always-invariants held
        # at every sample throughout.
        if report.crash_role is not None:
            # The seeded crash actually fired — a phase the watcher
            # never observes would silently test nothing.
            assert report.crash_at > 0.0, (report.crash_role,
                                           report.crash_phase)
        assert report.lost_records == 0, (report.crash_role, report.crash_phase)
        assert len(report.authority) == 1, (report.crash_role, report.crash_phase)
        assert report.converged_violations == (), (
            report.crash_role, report.crash_phase, report.converged_violations
        )
        assert report.always_violations == ()
        assert report.delegations_committed >= 1
        assert report.window_requests > 0
        floor = (
            DONOR_CRASH_FLOOR
            if report.crash_role == "donor"
            else WINDOW_SUCCESS_FLOOR
        )
        assert report.window_success_rate >= floor, (
            report.crash_role, report.crash_phase, report.window_success_rate
        )
    # The ablation: two-phase holds the dual-serving floor and loses
    # nothing with no operator in the loop; single-shot collapses —
    # every record lost, no authority, lookups dead in the window.
    assert on.window_success_rate >= WINDOW_SUCCESS_FLOOR
    assert on.lost_records == 0 and on.converged_violations == ()
    assert off.lost_records > 0
    assert off.window_success_rate <= 0.5
    assert "single-vspace-authority" in off.converged_violations
    # Reproducibility: the whole matrix is seed-deterministic.
    rerun = run_delegation_matrix(seed=SEED)[1]
    assert rerun.fingerprint() == matrix[1].fingerprint()
