"""Figure 9 — periodic update time under virtual-space partitioning.

Paper: splitting names into two vspaces on ONE machine does not reduce
the periodic update processing time, but placing the two vspaces on TWO
machines halves it — the namespace-partitioning scaling technique.
"""

import pytest

from _report import record_table

from repro.experiments.fig09 import run_partition_experiment


def test_fig09_vspace_partitioning(benchmark):
    rows = benchmark.pedantic(
        lambda: run_partition_experiment(
            name_counts=(500, 1000, 2000, 3000, 4000, 5000)
        ),
        rounds=1,
        iterations=1,
    )
    record_table(
        "Figure 9: periodic update time (ms) vs names, two equal vspaces",
        ["names", "1 vspace / 1 machine", "2 vspaces / 1 machine",
         "2 vspaces / 2 machines"],
        [
            (
                row.total_names,
                f"{row.one_vspace_one_machine_ms:.0f}",
                f"{row.two_vspaces_one_machine_ms:.0f}",
                f"{row.two_vspaces_two_machines_ms:.0f}",
            )
            for row in rows
        ],
    )
    for row in rows:
        assert row.two_vspaces_two_machines_ms == pytest.approx(
            row.one_vspace_one_machine_ms / 2, rel=0.15
        )
        assert row.two_vspaces_one_machine_ms == pytest.approx(
            row.one_vspace_one_machine_ms, rel=0.15
        )
