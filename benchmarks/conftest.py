"""Benchmark-suite conftest: print recorded result tables at the end.

The terminal summary is not captured by pytest, so the paper-comparison
tables always appear in the run's output (and in bench_output.txt).
"""

from __future__ import annotations

from _report import drain_tables, format_table


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = drain_tables()
    if not tables:
        return
    terminalreporter.section("INS reproduction — regenerated figures")
    for title, headers, rows in tables:
        terminalreporter.write("\n" + format_table(title, headers, rows))
