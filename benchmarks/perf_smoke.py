"""Perf smoke: the deterministic Figure-12 bench gated by repro-bench-gate.

Runs the fig12 lookup curve (same workload seeds as the checked-in
``benchmarks/results/BENCH_lookup.json``), the memo ablation and the
update-ingestion ablation, then:

1. hands the freshly-measured payload and the checked-in baseline to
   the :mod:`repro.xp.gate` comparison — the same machinery behind the
   ``repro-bench-gate`` console tool — with one explicit rule: the
   uncached lookup cost at the largest tree size may not regress by
   more than the threshold (default 20%, ``lower`` is better). The
   rest of the wall-clock payload stays informational, and the gate
   **exits non-zero on regression**;
2. rewrites ``BENCH_lookup.json`` with the new numbers (CI uploads it
   as an artifact; a release commit checks it in as the next baseline).

Wall-clock noise is handled the way the baseline itself was produced:
the curve is measured ``--repeats`` times and each point keeps its best
(minimum) per-lookup time, which is the standard low-noise statistic
for a single-threaded CPU-bound loop.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--repeats 3]
        [--threshold 0.20] [--baseline PATH] [--output PATH] [--dry-run]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))  # for _report
from _report import RESULTS_DIR  # noqa: E402

from repro.experiments.fig12 import (  # noqa: E402
    run_lookup_experiment,
    run_memo_ablation,
    run_update_ingestion_bench,
    write_bench_lookup_json,
)
from repro.xp.gate import (  # noqa: E402
    MetricRule,
    compare_artifacts,
    render_gate_report,
)

#: The curve protocol: same points and seeds as the checked-in
#: baseline, and the paper's own 1000 lookups per point (Section 5.1.1
#: times "1000 random lookups" at each size). Comparing a different
#: workload would be comparing two different experiments.
CURVE_POINTS = (100, 2500, 5000)
LOOKUPS_PER_POINT = 1000


def measure_curve(repeats: int) -> list:
    """The fig12 curve, each point at its best-of-``repeats`` time."""
    best: list = None
    for _ in range(repeats):
        rows = run_lookup_experiment(
            name_counts=CURVE_POINTS, lookups_per_point=LOOKUPS_PER_POINT
        )
        if best is None:
            best = rows
        else:
            best = [
                row if row.mean_lookup_us < kept.mean_lookup_us else kept
                for kept, row in zip(best, rows)
            ]
    return best


def best_ingestion(repeats: int):
    """The update-ingestion ablation at its best-of-``repeats`` rates."""
    best = None
    for _ in range(repeats):
        result = run_update_ingestion_bench()
        if best is None or result.batched_updates_per_second > best.batched_updates_per_second:
            best = result
    return best


def gate_rules(curve, threshold: float) -> list:
    """The perf-smoke gate as explicit metric rules: the tree sizes
    must match exactly (two different sweeps are not comparable), and
    the uncached lookup cost at the largest size may not regress past
    the threshold. Everything else in the wall-clock payload is left to
    the ``fig12-lookup`` family default (informational)."""
    largest = len(curve) - 1
    return [
        MetricRule("curve[*].names_in_tree", tolerance=0.0, direction="both"),
        MetricRule(
            f"curve[{largest}].mean_lookup_us",
            tolerance=threshold,
            direction="lower",
        ),
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional regression (0.20 = 20%%)")
    parser.add_argument(
        "--baseline",
        default=os.path.join(RESULTS_DIR, "BENCH_lookup.json"),
        help="checked-in BENCH_lookup.json to compare against",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(RESULTS_DIR, "BENCH_lookup.json"),
        help="where to write the fresh BENCH_lookup.json",
    )
    parser.add_argument("--dry-run", action="store_true",
                        help="measure and compare, but do not rewrite the json")
    args = parser.parse_args(argv)

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"perf-smoke: no usable baseline ({error}); measuring only")
        baseline = None

    curve = measure_curve(args.repeats)
    ablation = run_memo_ablation(refresh_every=100)
    ingestion = best_ingestion(args.repeats)

    for row in curve:
        print(
            f"perf-smoke: {row.names_in_tree:>6} names  "
            f"{row.mean_lookup_us:7.2f} us/lookup  "
            f"{row.lookups_per_second:10.0f} lookups/s"
        )
    print(f"perf-smoke: memo speedup {ablation.speedup:.1f}x, "
          f"ingestion speedup {ingestion.speedup:.2f}x")

    if args.dry_run:
        # The writer both writes and returns the payload; a dry run
        # only wants the return value.
        payload = write_bench_lookup_json(os.devnull, curve, ablation, ingestion)
    else:
        payload = write_bench_lookup_json(args.output, curve, ablation, ingestion)
        print(f"perf-smoke: wrote {args.output}")

    if baseline is None:
        return 0
    report = compare_artifacts(
        payload,
        baseline,
        rules=gate_rules(curve, args.threshold),
        family="fig12-lookup",
    )
    print(render_gate_report(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
