"""Perf smoke: the deterministic Figure-12 bench as a regression gate.

Runs the fig12 lookup curve (same workload seeds as the checked-in
``benchmarks/results/BENCH_lookup.json``), the memo ablation and the
update-ingestion ablation, then:

1. compares the freshly-measured uncached lookup cost at the largest
   tree size against the checked-in baseline and **exits non-zero when
   it regressed by more than the threshold** (default 20%);
2. rewrites ``BENCH_lookup.json`` with the new numbers (CI uploads it
   as an artifact; a release commit checks it in as the next baseline).

Wall-clock noise is handled the way the baseline itself was produced:
the curve is measured ``--repeats`` times and each point keeps its best
(minimum) per-lookup time, which is the standard low-noise statistic
for a single-threaded CPU-bound loop.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--repeats 3]
        [--threshold 0.20] [--baseline PATH] [--output PATH] [--dry-run]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))  # for _report
from _report import RESULTS_DIR  # noqa: E402

from repro.experiments.fig12 import (  # noqa: E402
    LookupRow,
    run_lookup_experiment,
    run_memo_ablation,
    run_update_ingestion_bench,
    write_bench_lookup_json,
)

#: The curve protocol: same points and seeds as the checked-in
#: baseline, and the paper's own 1000 lookups per point (Section 5.1.1
#: times "1000 random lookups" at each size). Comparing a different
#: workload would be comparing two different experiments.
CURVE_POINTS = (100, 2500, 5000)
LOOKUPS_PER_POINT = 1000


def measure_curve(repeats: int) -> list:
    """The fig12 curve, each point at its best-of-``repeats`` time."""
    best: list = None
    for _ in range(repeats):
        rows = run_lookup_experiment(
            name_counts=CURVE_POINTS, lookups_per_point=LOOKUPS_PER_POINT
        )
        if best is None:
            best = rows
        else:
            best = [
                row if row.mean_lookup_us < kept.mean_lookup_us else kept
                for kept, row in zip(best, rows)
            ]
    return best


def best_ingestion(repeats: int):
    """The update-ingestion ablation at its best-of-``repeats`` rates."""
    best = None
    for _ in range(repeats):
        result = run_update_ingestion_bench()
        if best is None or result.batched_updates_per_second > best.batched_updates_per_second:
            best = result
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional regression (0.20 = 20%%)")
    parser.add_argument(
        "--baseline",
        default=os.path.join(RESULTS_DIR, "BENCH_lookup.json"),
        help="checked-in BENCH_lookup.json to compare against",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(RESULTS_DIR, "BENCH_lookup.json"),
        help="where to write the fresh BENCH_lookup.json",
    )
    parser.add_argument("--dry-run", action="store_true",
                        help="measure and compare, but do not rewrite the json")
    args = parser.parse_args(argv)

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        baseline_point = max(baseline["curve"], key=lambda r: r["names_in_tree"])
        baseline_us = baseline_point["mean_lookup_us"]
        baseline_names = baseline_point["names_in_tree"]
    except (OSError, KeyError, ValueError) as error:
        print(f"perf-smoke: no usable baseline ({error}); measuring only")
        baseline_us = None
        baseline_names = None

    curve = measure_curve(args.repeats)
    ablation = run_memo_ablation(refresh_every=100)
    ingestion = best_ingestion(args.repeats)

    for row in curve:
        print(
            f"perf-smoke: {row.names_in_tree:>6} names  "
            f"{row.mean_lookup_us:7.2f} us/lookup  "
            f"{row.lookups_per_second:10.0f} lookups/s"
        )
    print(f"perf-smoke: memo speedup {ablation.speedup:.1f}x, "
          f"ingestion speedup {ingestion.speedup:.2f}x")

    if not args.dry_run:
        write_bench_lookup_json(args.output, curve, ablation, ingestion)
        print(f"perf-smoke: wrote {args.output}")

    if baseline_us is None:
        return 0
    current = max(curve, key=lambda r: r.names_in_tree)
    if current.names_in_tree != baseline_names:
        print("perf-smoke: baseline measures a different tree size "
              f"({baseline_names} vs {current.names_in_tree}); not comparable")
        return 1
    limit = baseline_us * (1.0 + args.threshold)
    verdict = "OK" if current.mean_lookup_us <= limit else "REGRESSED"
    print(
        f"perf-smoke: uncached lookup at {current.names_in_tree} names: "
        f"{current.mean_lookup_us:.2f} us vs baseline {baseline_us:.2f} us "
        f"(limit {limit:.2f} us) -> {verdict}"
    )
    return 0 if verdict == "OK" else 1


if __name__ == "__main__":
    raise SystemExit(main())
