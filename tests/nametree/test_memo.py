"""Tests for the LOOKUP-NAME memo and its epoch invalidation.

The memo is beyond the paper (see ``NameTree.__init__``): repeated
queries against an unchanged record set are answered from a bounded
LRU keyed by the query's canonical key. The tree epoch advances only
on membership changes — graft, remove, expiry — so pure soft-state
refreshes keep the memo warm. These tests pin down the counters, the
invalidation points, the capacity bound, and (via hypothesis) that
memoized results always equal a freshly built uncached tree's.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments import UniformWorkload
from repro.nametree import AnnouncerID, Endpoint, NameRecord, NameTree

from ..conftest import make_record, parse


def _refresh_record(host: str, expires_at: float = float("inf")) -> NameRecord:
    """A record whose announcer is stable across calls, so re-inserting
    one is a soft-state refresh rather than a new advertisement."""
    return NameRecord(
        announcer=AnnouncerID.generate(host, startup_time=1.0),
        endpoints=[Endpoint(host=host, port=1)],
        expires_at=expires_at,
    )


class TestMemoCounters:
    def test_repeat_query_hits(self, tree):
        tree.insert(parse("[service=camera]"), make_record("h1"))
        query = parse("[service=camera]")
        first = tree.lookup(query)
        second = tree.lookup(query)
        assert first == second
        assert tree.memo_misses == 1
        assert tree.memo_hits == 1

    def test_structurally_equal_queries_share_an_entry(self, tree):
        """The memo key is the canonical key: sibling order and
        whitespace never cause a second miss."""
        tree.insert(parse("[a=1][b=2]"), make_record("h1"))
        tree.lookup(parse("[a=1][b=2]"))
        tree.lookup(parse("[b=2][a=1]"))
        assert tree.memo_hits == 1
        assert tree.memo_misses == 1

    def test_returned_set_is_a_copy(self, tree):
        record = make_record("h1")
        tree.insert(parse("[service=camera]"), record)
        query = parse("[service=camera]")
        tree.lookup(query).clear()  # caller mutates its copy
        assert tree.lookup(query) == {record}

    def test_memoize_off_never_counts(self):
        tree = NameTree(memoize=False)
        tree.insert(parse("[service=camera]"), make_record("h1"))
        query = parse("[service=camera]")
        tree.lookup(query)
        tree.lookup(query)
        assert tree.memo_hits == 0
        assert tree.memo_misses == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            NameTree(memo_capacity=0)


class TestEpochInvalidation:
    def test_new_advertisement_flushes(self, tree):
        tree.insert(parse("[service=camera]"), make_record("h1"))
        query = parse("[service=camera]")
        tree.lookup(query)
        late = make_record("h2")
        tree.insert(parse("[service=camera]"), late)
        assert late in tree.lookup(query)
        assert tree.memo_invalidations == 1
        assert tree.memo_misses == 2

    def test_remove_flushes(self, tree):
        record = make_record("h1")
        tree.insert(parse("[service=camera]"), record)
        query = parse("[service=camera]")
        tree.lookup(query)
        tree.remove(record)
        assert tree.lookup(query) == set()
        assert tree.memo_invalidations == 1

    def test_expire_flushes(self, tree):
        record = make_record("h1", expires_at=10.0)
        tree.insert(parse("[service=camera]"), record)
        query = parse("[service=camera]")
        assert tree.lookup(query) == {record}
        tree.expire(now=11.0)
        assert tree.lookup(query) == set()
        assert tree.memo_invalidations == 1

    def test_expire_with_nothing_expired_keeps_memo(self, tree):
        tree.insert(parse("[service=camera]"), make_record("h1", expires_at=10.0))
        query = parse("[service=camera]")
        tree.lookup(query)
        tree.expire(now=5.0)
        tree.lookup(query)
        assert tree.memo_hits == 1
        assert tree.memo_invalidations == 0

    def test_pure_refresh_keeps_memo_warm(self, tree):
        """The tentpole property: a periodic re-advertisement of the
        same name by the same announcer does not advance the epoch, so
        the memo keeps answering from cache."""
        tree.insert(parse("[service=camera]"), _refresh_record("h1", 10.0))
        query = parse("[service=camera]")
        tree.lookup(query)
        epoch_before = tree.epoch
        outcome = tree.insert(parse("[service=camera]"), _refresh_record("h1", 20.0))
        assert not outcome.created
        assert tree.epoch == epoch_before
        found = tree.lookup(query)
        assert tree.memo_hits == 1
        assert tree.memo_invalidations == 0
        # In-place refreshes are visible through the memoized result
        # because records are shared objects.
        assert {r.expires_at for r in found} == {20.0}

    def test_refresh_with_new_name_flushes(self, tree):
        """Service mobility: the same announcer advertising a different
        name IS a membership change."""
        tree.insert(parse("[service=camera[room=510]]"), _refresh_record("h1"))
        old_query = parse("[service=camera[room=510]]")
        tree.lookup(old_query)
        tree.insert(parse("[service=camera[room=511]]"), _refresh_record("h1"))
        assert tree.lookup(old_query) == set()
        assert len(tree.lookup(parse("[service=camera[room=511]]"))) == 1
        assert tree.memo_invalidations == 1


class TestMemoCapacity:
    def test_lru_bound(self):
        tree = NameTree(memo_capacity=2)
        tree.insert(parse("[service=camera]"), make_record("h1"))
        a, b, c = parse("[x=1]"), parse("[x=2]"), parse("[x=3]")
        tree.lookup(a)
        tree.lookup(b)
        tree.lookup(a)  # touch a: b becomes least recently used
        tree.lookup(c)  # evicts b
        assert tree.memo_misses == 3
        tree.lookup(a)
        tree.lookup(c)
        assert tree.memo_hits == 3
        tree.lookup(b)  # evicted: misses again
        assert tree.memo_misses == 4


def _workload(seed: int) -> UniformWorkload:
    return UniformWorkload(
        rng=random.Random(seed),
        depth=2,
        attribute_range=3,
        value_range=3,
        attributes_per_level=2,
    )


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_memoized_lookup_equals_fresh_uncached_tree(seed):
    """Under a random interleaving of insert / refresh / move / remove
    / expire / lookup, every memoized lookup returns exactly what a
    freshly built, uncached tree over the same live records returns."""
    rng = random.Random(seed)
    names = _workload(seed).distinct_names(12)
    query_pool = [_workload(seed + 1).random_query(wildcard_probability=0.4)
                  for _ in range(6)]
    tree = NameTree(memo_capacity=4)  # small, so eviction is exercised
    live = {}  # tag -> (name, expires_at)
    clock = 0.0
    next_tag = 0
    for _ in range(60):
        clock += 1.0
        op = rng.choice(["insert", "refresh", "move", "remove", "expire",
                         "lookup", "lookup"])
        if op == "insert":
            tag = f"m-{next_tag}"
            next_tag += 1
            name = rng.choice(names)
            expires = clock + rng.choice([5.0, 1000.0])
            tree.insert(name, _refresh_record(tag, expires))
            live[tag] = (name, expires)
        elif op == "refresh" and live:
            tag = rng.choice(sorted(live))
            name, _ = live[tag]
            expires = clock + 1000.0
            tree.insert(name, _refresh_record(tag, expires))
            live[tag] = (name, expires)
        elif op == "move" and live:
            tag = rng.choice(sorted(live))
            name = rng.choice(names)
            expires = clock + 1000.0
            tree.insert(name, _refresh_record(tag, expires))
            live[tag] = (name, expires)
        elif op == "remove" and live:
            tag = rng.choice(sorted(live))
            removed = tree.remove_announcer(
                AnnouncerID.generate(tag, startup_time=1.0)
            )
            assert removed is not None
            del live[tag]
        elif op == "expire":
            tree.expire(clock)
            live = {tag: entry for tag, entry in live.items()
                    if entry[1] > clock}
        elif op == "lookup":
            query = rng.choice(query_pool)
            fresh = NameTree(memoize=False)
            for tag, (name, expires) in live.items():
                fresh.insert(name, _refresh_record(tag, expires))
            expected = {r.announcer for r in fresh.lookup(query)}
            assert {r.announcer for r in tree.lookup(query)} == expected
    assert len(tree) == len(live)
