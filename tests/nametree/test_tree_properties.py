"""Property-based tests for name-tree invariants (hypothesis)."""

import random

from hypothesis import given, settings, strategies as st

from repro.experiments import UniformWorkload
from repro.naming import NameSpecifier
from repro.nametree import AnnouncerID, Endpoint, NameRecord, NameTree


def _workload(seed: int, depth: int = 2) -> UniformWorkload:
    return UniformWorkload(
        rng=random.Random(seed),
        depth=depth,
        attribute_range=3,
        value_range=3,
        attributes_per_level=2,
    )


def _record(tag: str) -> NameRecord:
    return NameRecord(
        announcer=AnnouncerID.generate(tag),
        endpoints=[Endpoint(host=tag, port=1)],
    )


@given(seed=st.integers(min_value=0, max_value=10_000),
       count=st.integers(min_value=1, max_value=30))
@settings(max_examples=60, deadline=None)
def test_every_inserted_name_is_found_by_itself(seed, count):
    """lookup(n) contains n's record for every advertised n."""
    workload = _workload(seed)
    tree = NameTree()
    pairs = []
    for index, name in enumerate(workload.distinct_names(count)):
        record = _record(f"p-{index}")
        tree.insert(name, record)
        pairs.append((name, record))
    for name, record in pairs:
        assert record in tree.lookup(name)


@given(seed=st.integers(min_value=0, max_value=10_000),
       count=st.integers(min_value=1, max_value=25))
@settings(max_examples=50, deadline=None)
def test_get_name_inverts_insert(seed, count):
    """GET-NAME returns exactly the advertised name-specifier."""
    workload = _workload(seed, depth=3)
    tree = NameTree()
    pairs = []
    for index, name in enumerate(workload.distinct_names(count)):
        record = _record(f"g-{index}")
        tree.insert(name, record)
        pairs.append((name, record))
    for name, record in pairs:
        assert tree.get_name(record) == name


@given(seed=st.integers(min_value=0, max_value=10_000),
       count=st.integers(min_value=2, max_value=25))
@settings(max_examples=50, deadline=None)
def test_remove_then_empty_tree_is_pristine(seed, count):
    """Inserting then removing everything leaves zero nodes (pruning
    never strands branches)."""
    workload = _workload(seed, depth=3)
    tree = NameTree()
    records = []
    for index, name in enumerate(workload.distinct_names(count)):
        record = _record(f"r-{index}")
        tree.insert(name, record)
        records.append(record)
    order = random.Random(seed)
    order.shuffle(records)
    for record in records:
        tree.remove(record)
    assert len(tree) == 0
    assert tree.node_counts() == (0, 0)


@given(seed=st.integers(min_value=0, max_value=10_000),
       count=st.integers(min_value=1, max_value=20))
@settings(max_examples=40, deadline=None)
def test_empty_query_returns_all_records(seed, count):
    workload = _workload(seed)
    tree = NameTree()
    expected = set()
    for index, name in enumerate(workload.distinct_names(count)):
        record = _record(f"e-{index}")
        tree.insert(name, record)
        expected.add(record)
    assert tree.lookup(NameSpecifier()) == expected


@given(seed=st.integers(min_value=0, max_value=10_000),
       count=st.integers(min_value=1, max_value=20))
@settings(max_examples=40, deadline=None)
def test_lookup_results_subset_of_wildcard_union(seed, count):
    """Any constrained lookup returns a subset of what the top-level
    wild-card over the same attribute returns."""
    workload = _workload(seed)
    tree = NameTree()
    names = workload.distinct_names(count)
    for index, name in enumerate(names):
        tree.insert(name, _record(f"s-{index}"))
    probe = names[0]
    attribute = probe.roots[0].attribute
    wild = NameSpecifier.parse(f"[{attribute}=*]")
    exact = NameSpecifier.parse(
        f"[{attribute}={probe.roots[0].value}]"
    )
    assert tree.lookup(exact) <= tree.lookup(wild)


@given(seed=st.integers(min_value=0, max_value=10_000),
       count=st.integers(min_value=1, max_value=20))
@settings(max_examples=40, deadline=None)
def test_hash_and_linear_search_agree(seed, count):
    """Search strategy never changes lookup results."""
    workload_a = _workload(seed)
    workload_b = _workload(seed)
    hash_tree = NameTree(search="hash")
    linear_tree = NameTree(search="linear")
    names_a = workload_a.distinct_names(count)
    names_b = workload_b.distinct_names(count)
    hash_records, linear_records = {}, {}
    for index, (na, nb) in enumerate(zip(names_a, names_b)):
        ra, rb = _record(f"h-{index}"), _record(f"l-{index}")
        hash_tree.insert(na, ra)
        linear_tree.insert(nb, rb)
        hash_records[index] = ra
        linear_records[index] = rb
    query = _workload(seed + 1).random_query(wildcard_probability=0.3)
    found_hash = {i for i, r in hash_records.items() if r in hash_tree.lookup(query)}
    found_linear = {
        i for i, r in linear_records.items() if r in linear_tree.lookup(query)
    }
    assert found_hash == found_linear
