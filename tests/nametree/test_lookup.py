"""Tests for the LOOKUP-NAME algorithm (Figure 5 semantics)."""

import pytest

from repro.naming import NameSpecifier
from repro.nametree import NameTree

from ..conftest import OVAL_OFFICE_CAMERA, make_record, parse


@pytest.fixture
def populated():
    """A tree with the paper's Figure 4 flavour of content."""
    tree = NameTree()
    records = {}
    advertisements = {
        "oval-camera": OVAL_OFFICE_CAMERA,
        "macy-printer": "[city=washington[building=macy[floor=1]]]"
        "[service=printer]",
        "movie-camera": "[city=rome][service=camera[data-type=movie"
        "[format=mpg]]][accessibility=private]",
        "plain-sensor": "[service=sensor]",
    }
    for label, wire in advertisements.items():
        record = make_record(host=label)
        tree.insert(parse(wire), record)
        records[label] = record
    return tree, records


def lookup_labels(tree, records, query):
    found = tree.lookup(parse(query))
    return {label for label, record in records.items() if record in found}


class TestExactMatching:
    def test_full_name_matches(self, populated):
        tree, records = populated
        assert lookup_labels(tree, records, OVAL_OFFICE_CAMERA) == {"oval-camera"}

    def test_prefix_query_matches_deeper_advertisement(self, populated):
        """Omitted query attributes are wild-cards."""
        tree, records = populated
        assert lookup_labels(tree, records, "[service=camera]") == {
            "oval-camera",
            "movie-camera",
        }

    def test_value_mismatch_excludes(self, populated):
        tree, records = populated
        assert lookup_labels(
            tree, records, "[service=camera[data-type=audio]]"
        ) == set()

    def test_unknown_attribute_in_query_is_no_constraint(self, populated):
        """Figure 5: a query attribute absent from the tree is skipped
        (every advertisement omitted it -> wild-card)."""
        tree, records = populated
        assert lookup_labels(
            tree, records, "[service=sensor][nonexistent=thing]"
        ) == {"plain-sensor"}

    def test_multiple_constraints_intersect(self, populated):
        tree, records = populated
        assert lookup_labels(
            tree, records, "[city=washington][service=camera]"
        ) == {"oval-camera"}

    def test_shorter_advertisement_matches_deeper_query(self, populated):
        """Omitted advertisement attributes are wild-cards too: the
        plain sensor (no room) satisfies any deeper constraint chain
        below its leaf."""
        tree, records = populated
        assert lookup_labels(
            tree, records, "[service=sensor[unit=celsius]]"
        ) == {"plain-sensor"}

    def test_empty_query_matches_everything(self, populated):
        tree, records = populated
        assert tree.lookup(NameSpecifier()) == set(records.values())


class TestWildcardMatching:
    def test_leaf_wildcard_unions_values(self, populated):
        tree, records = populated
        assert lookup_labels(tree, records, "[city=*]") == {
            "oval-camera",
            "macy-printer",
            "movie-camera",
        }

    def test_wildcard_constrains_attribute_presence(self, populated):
        """[city=*] does NOT match advertisements without a city."""
        tree, records = populated
        assert "plain-sensor" not in lookup_labels(tree, records, "[city=*]")

    def test_wildcard_in_nested_position(self, populated):
        tree, records = populated
        found = lookup_labels(
            tree,
            records,
            "[city=washington[building=whitehouse[wing=west[room=*]]]]",
        )
        assert found == {"oval-camera"}

    def test_pairs_below_wildcard_are_ignored(self, populated):
        """Section 2.3.2: av-pairs after a wild-card are ignored."""
        tree, records = populated
        with_garbage = lookup_labels(
            tree, records, "[service=*[data-type=never-advertised]]"
        )
        without = lookup_labels(tree, records, "[service=*]")
        assert with_garbage == without


class TestRangeMatching:
    @pytest.fixture
    def rooms(self):
        tree = NameTree()
        records = {}
        for room in ("4", "12", "20", "annex"):
            record = make_record(host=f"printer-{room}")
            tree.insert(parse(f"[service=printer[room={room}]]"), record)
            records[f"printer-{room}"] = record
        return tree, records

    def test_less_than(self, rooms):
        tree, records = rooms
        assert lookup_labels(tree, records, "[service=printer[room=<15]]") == {
            "printer-4",
            "printer-12",
        }

    def test_greater_equal(self, rooms):
        tree, records = rooms
        assert lookup_labels(tree, records, "[service=printer[room=>=12]]") == {
            "printer-12",
            "printer-20",
        }

    def test_lexicographic_for_non_numeric(self, rooms):
        tree, records = rooms
        found = lookup_labels(tree, records, "[service=printer[room=>aaa]]")
        assert found == {"printer-annex"}


class TestMultipleRecords:
    def test_identical_names_from_different_announcers_coexist(self, tree):
        """Section 2.2: AnnouncerIDs differentiate identical names."""
        first = make_record("h1")
        second = make_record("h2")
        tree.insert(parse("[service=camera][room=510]"), first)
        tree.insert(parse("[service=camera][room=510]"), second)
        assert tree.lookup(parse("[service=camera]")) == {first, second}
        assert len(tree) == 2

    def test_single_pass_no_sibling_branch_recovery(self, tree):
        """Documented Figure 5 behaviour: the single-pass algorithm does
        not match an advertisement through a sibling branch it omitted.

        [service=camera[entity=transmitter]] advertises no 'id', so a
        query constraining BOTH entity and id under service=camera
        intersects the id constraint against the id-bearing records
        only."""
        with_id = make_record("with-id")
        without_id = make_record("without-id")
        tree.insert(parse("[service=camera[entity=t][id=a]]"), with_id)
        tree.insert(parse("[service=camera[entity=t]]"), without_id)
        found = tree.lookup(parse("[service=camera[entity=t][id=a]]"))
        assert with_id in found

    def test_early_exit_on_empty_intersection(self, tree):
        first = make_record("h1")
        tree.insert(parse("[a=1][b=2]"), first)
        # a=1 matches, b=3 empties the set; result must be empty.
        assert tree.lookup(parse("[a=1][b=3]")) == set()


class TestLookupEdgeBranches:
    """Pin down Figure 5's less-travelled branches."""

    def test_early_exit_never_resurrects_via_later_constraints(self, tree):
        """Once the candidate intersection empties, remaining query
        pairs are skipped — and skipping must not re-admit records a
        later constraint would have matched."""
        record = make_record("h1")
        tree.insert(parse("[a=1][b=2][c=3]"), record)
        # b=9 empties the set; c=3 WOULD match but must not resurrect.
        assert tree.lookup(parse("[a=1][b=9][c=3]")) == set()

    def test_query_deeper_than_advertisement_unions_the_leaf_subtree(self, tree):
        """When the matched value-node is an advertisement leaf, the
        query's deeper constraints are satisfied vacuously and ALL
        records attached below that value-node are unioned in."""
        shallow_a = make_record("shallow-a")
        shallow_b = make_record("shallow-b")
        deep = make_record("deep")
        tree.insert(parse("[service=sensor]"), shallow_a)
        tree.insert(parse("[service=sensor]"), shallow_b)
        tree.insert(parse("[service=sensor[unit=kelvin]]"), deep)
        # sensor is a leaf for both shallow ads; the deeper query's
        # [unit=celsius] is a wild-card for them but excludes the
        # kelvin advertisement, which classifies 'unit' differently.
        found = tree.lookup(parse("[service=sensor[unit=celsius]]"))
        assert found == {shallow_a, shallow_b}

    def test_wildcard_with_zero_matching_values_is_empty(self, tree):
        """A wild-card/range constraint over an attribute that IS in
        the tree but whose advertised values all fail the matcher
        yields the empty union, not 'no constraint'."""
        record = make_record("h1")
        tree.insert(parse("[service=printer[room=annex]]"), record)
        assert tree.lookup(parse("[service=printer[room=<5]]")) == set()

    def test_wildcard_zero_match_then_early_exit(self, tree):
        record = make_record("h1")
        tree.insert(parse("[room=annex][floor=2]"), record)
        # the empty range union triggers the early exit before floor.
        assert tree.lookup(parse("[room=<5][floor=2]")) == set()


class TestLinearSearchEquivalence:
    def test_hash_and_linear_agree(self):
        """The search strategy is a performance knob, never a semantic
        one (Section 5.1.1 compares their costs)."""
        queries = [
            "[service=camera]",
            "[city=*]",
            "[service=camera[data-type=picture]]",
            "[service=printer[room=<15]]",
            OVAL_OFFICE_CAMERA,
        ]
        ads = [
            OVAL_OFFICE_CAMERA,
            "[service=printer[room=4]]",
            "[service=printer[room=20]]",
            "[city=rome][service=camera]",
        ]
        hash_tree, linear_tree = NameTree(search="hash"), NameTree(search="linear")
        for index, wire in enumerate(ads):
            for target in (hash_tree, linear_tree):
                target.insert(parse(wire), make_record(host=f"ad-{index}-{target.vspace}-{id(target)}"))
        for query in queries:
            hash_hosts = {r.endpoints[0].host.split("-")[1] for r in hash_tree.lookup(parse(query))}
            linear_hosts = {r.endpoints[0].host.split("-")[1] for r in linear_tree.lookup(parse(query))}
            assert hash_hosts == linear_hosts, query

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            NameTree(search="binary")


class TestValueDependentHierarchy:
    """Section 2.1's argument for av-pair (not attribute) hierarchies:
    child attributes may vary with the parent VALUE — country=us has a
    state, country=canada has a province."""

    def test_children_vary_with_parent_value(self, tree):
        us = make_record("us-host")
        canada = make_record("ca-host")
        tree.insert(parse("[country=us[state=virginia]]"), us)
        tree.insert(parse("[country=canada[province=ontario]]"), canada)
        assert tree.lookup(parse("[country=us[state=virginia]]")) == {us}
        assert tree.lookup(parse("[country=canada[province=ontario]]")) == {canada}
        # both live under one 'country' attribute-node
        attributes, _values = tree.node_counts()
        assert attributes == 3  # country, state, province

    def test_omitted_attribute_is_a_wildcard_for_the_advertisement(self, tree):
        """Faithful Figure 5: canada never advertised a 'state', so a
        state constraint does not exclude it (omitted attributes are
        wild-cards for advertisements too)."""
        us = make_record("us-host")
        canada = make_record("ca-host")
        tree.insert(parse("[country=us[state=virginia]]"), us)
        tree.insert(parse("[country=canada[province=ontario]]"), canada)
        assert tree.lookup(parse("[country=canada[state=virginia]]")) == {canada}

    def test_value_mismatch_under_the_right_attribute_excludes(self, tree):
        us = make_record("us-host")
        canada = make_record("ca-host")
        tree.insert(parse("[country=us[state=virginia]]"), us)
        tree.insert(parse("[country=canada[province=ontario]]"), canada)
        # 'province' IS advertised under canada; a wrong value excludes.
        assert tree.lookup(parse("[country=canada[province=quebec]]")) == set()
