"""Tests for name-tree memory accounting (the Figure 13 instrument)."""

from repro.nametree import NameTree, name_tree_bytes, name_tree_megabytes

from ..conftest import make_record, parse


class TestSizing:
    def test_empty_tree_has_nonzero_overhead(self, tree):
        assert name_tree_bytes(tree) > 0

    def test_size_grows_with_insertions(self, tree):
        empty = name_tree_bytes(tree)
        for i in range(50):
            tree.insert(parse(f"[service=s{i}[id=v{i}]]"), make_record(f"h{i}"))
        assert name_tree_bytes(tree) > empty

    def test_size_shrinks_after_removal(self, tree):
        records = []
        for i in range(30):
            record = make_record(f"h{i}")
            tree.insert(parse(f"[service=s{i}]"), record)
            records.append(record)
        full = name_tree_bytes(tree)
        for record in records[:20]:
            tree.remove(record)
        assert name_tree_bytes(tree) < full

    def test_shared_strings_counted_once(self):
        """Two records under the same attribute/value vocabulary add
        records but not vocabulary bytes."""
        one = NameTree()
        one.insert(parse("[a=b]"), make_record("h1"))
        single = name_tree_bytes(one)

        two = NameTree()
        two.insert(parse("[a=b]"), make_record("h1"))
        two.insert(parse("[a=b]"), make_record("h2"))
        double = name_tree_bytes(two)
        # The second identical name costs less than the first one did
        # (no new nodes, no new tokens; just a record).
        assert double - single < single

    def test_megabytes_scaling(self, tree):
        tree.insert(parse("[a=b]"), make_record())
        assert name_tree_megabytes(tree) == name_tree_bytes(tree) / (1024 * 1024)
