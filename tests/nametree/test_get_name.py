"""Tests for the GET-NAME extraction algorithm (Figure 6)."""

from repro.naming import NameSpecifier
from repro.nametree import NameTree

from ..conftest import OVAL_OFFICE_CAMERA, make_record, parse


class TestGetName:
    def test_single_pair_round_trip(self, tree):
        record = make_record()
        tree.insert(parse("[a=b]"), record)
        assert tree.get_name(record) == parse("[a=b]")

    def test_deep_chain_round_trip(self, tree):
        record = make_record()
        name = parse("[a=b[c=d[e=f[g=h]]]]")
        tree.insert(name, record)
        assert tree.get_name(record) == name

    def test_multi_branch_round_trip(self, tree):
        """Grafting joins fragments through shared ancestors."""
        record = make_record()
        name = parse("[a=b[x=1][y=2[z=3]]][c=d]")
        tree.insert(name, record)
        assert tree.get_name(record) == name

    def test_figure_3_name_round_trips(self, tree):
        record = make_record()
        name = parse(OVAL_OFFICE_CAMERA)
        tree.insert(name, record)
        assert tree.get_name(record) == name

    def test_extraction_from_superposed_tree(self, tree):
        """Each record's name comes back exactly, even when the tree
        superposes many names over shared nodes."""
        names = [
            "[a=b[c=d]]",
            "[a=b[c=e]]",
            "[a=b[c=d[f=g]]]",
            "[a=z]",
            "[q=r][a=b]",
        ]
        records = {}
        for index, wire in enumerate(names):
            record = make_record(host=f"h{index}")
            tree.insert(parse(wire), record)
            records[wire] = record
        for wire, record in records.items():
            assert tree.get_name(record) == parse(wire), wire

    def test_ptrs_are_reset_between_extractions(self, tree):
        """The transient PTR variables must not leak across calls."""
        first = make_record("h1")
        second = make_record("h2")
        tree.insert(parse("[a=b[c=d]]"), first)
        tree.insert(parse("[a=b[c=e]]"), second)
        assert tree.get_name(first) == parse("[a=b[c=d]]")
        assert tree.get_name(second) == parse("[a=b[c=e]]")
        assert tree.get_name(first) == parse("[a=b[c=d]]")
        for value_node in tree.root.walk_values():
            assert value_node.ptr is None

    def test_names_iterates_all_pairs(self, tree):
        wires = {"[a=b]", "[c=d[e=f]]"}
        inserted = {}
        for wire in sorted(wires):
            record = make_record(host=wire)
            tree.insert(parse(wire), record)
            inserted[wire] = record
        extracted = {name.to_wire(): record for name, record in tree.names()}
        assert set(extracted) == wires
        for wire in sorted(wires):
            assert extracted[wire] is inserted[wire]
