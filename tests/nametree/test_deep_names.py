"""Deep-name regression tests (recursion-limit bugfix).

Programmatically-built name-specifiers are not subject to the parser's
``MAX_NAME_DEPTH`` bound, and before the iterative rewrites a ~1000-deep
name blew ``RecursionError`` out of ``AVPair.walk``, ``to_wire``,
``encode_name``, ``NameTree._lookup`` and ``get_name``. These tests push
every one of those paths to 5000 levels — far past any recursion limit —
and must fail on the old recursive code.
"""

import pytest

from repro.naming import AVPair, NameSpecifier
from repro.naming.binary import BinaryNameError, decode_name, encode_name
from repro.nametree import AnnouncerID, Endpoint, NameRecord, NameTree

DEPTH = 5000


def deep_name(depth: int = DEPTH) -> NameSpecifier:
    """A concrete single-chain name ``[l0=v[l1=v[...]]]`` of ``depth``."""
    root = AVPair("l0", "v")
    node = root
    for level in range(1, depth):
        child = AVPair(f"l{level}", "v")
        node.add_child(child)
        node = child
    name = NameSpecifier()
    name.add_pair(root)
    return name


def chain_tokens(name: NameSpecifier):
    """(attribute, value) pairs of a single-chain name, iteratively."""
    tokens = []
    pairs = list(name._roots.values())
    while pairs:
        assert len(pairs) == 1, "not a chain"
        pair = pairs[0]
        tokens.append((pair.attribute, pair.value))
        pairs = list(pair._children.values())
    return tokens


@pytest.fixture(scope="module")
def name():
    return deep_name()


def test_walk_and_depth_and_count(name):
    assert name.depth() == DEPTH
    assert name.count() == DEPTH
    assert sum(1 for _ in name.walk()) == DEPTH


def test_is_concrete_and_require_concrete(name):
    assert name.is_concrete()
    name.require_concrete()  # must not raise (nor recurse)


def test_to_wire(name):
    wire = name.to_wire()
    assert wire.startswith("[l0=v[l1=v[")
    assert wire.endswith("]" * DEPTH)


def test_canonical_key(name):
    key = name.canonical_key()
    assert key[0][0] == "l0"
    # Hashable all the way down (used as the lookup memo key).
    assert isinstance(hash(key), int)


def test_binary_round_trip_with_lifted_bound(name):
    frame = encode_name(name)
    decoded = decode_name(frame, max_depth=None)
    assert chain_tokens(decoded) == chain_tokens(name)
    # Re-encode is byte-identical.
    assert encode_name(decoded) == frame


def test_decode_enforces_default_depth_bound(name):
    # Untrusted frames keep the parser's bound: the same deep frame is
    # rejected, not stack-overflowed.
    with pytest.raises(BinaryNameError, match="deeper"):
        decode_name(encode_name(name))


def test_tree_insert_lookup_get_name(name):
    tree = NameTree()
    record = NameRecord(
        announcer=AnnouncerID.generate("deep"),
        endpoints=[Endpoint(host="deep", port=1)],
    )
    tree.insert(name, record)
    found = tree.lookup(deep_name())  # a distinct, equally-deep query
    assert found == {record}
    # GET-NAME walks back up 5000 levels, iteratively.
    recovered = tree.get_name(record)
    assert chain_tokens(recovered) == chain_tokens(name)
    # walk_values spans the whole chain without recursion.
    assert sum(1 for _ in tree.root.walk_values()) == DEPTH + 1


def test_tree_remove_deep(name):
    tree = NameTree()
    record = NameRecord(
        announcer=AnnouncerID.generate("deep-rm"),
        endpoints=[Endpoint(host="deep-rm", port=1)],
    )
    tree.insert(name, record)
    assert tree.remove(record)
    assert tree.lookup(deep_name()) == set()
    assert len(tree) == 0
    # Pruning walked 5000 levels back up; the chain is fully gone.
    assert not tree.root.children
