"""Tests for batched mutation epochs (begin_batch/end_batch/batch).

The INR ingests a whole periodic-update batch under one tree epoch:
membership changes inside an open batch defer the epoch advance, and
the outermost ``end_batch`` commits exactly one advance for the whole
group. These tests pin the commit points — one advance per dirty
batch, zero for clean or pure-refresh batches, lookups mid-batch
committing early so they never serve stale results — and that the
lookup memo is invalidated exactly when membership actually changed.
"""

import pytest

from repro.nametree import AnnouncerID, Endpoint, NameRecord, NameTree

from ..conftest import make_record, parse


def _stable_record(host: str, port: int = 1) -> NameRecord:
    """A record whose announcer identity is reproducible, so inserting
    it again counts as a soft-state refresh."""
    return NameRecord(
        announcer=AnnouncerID.generate(host, startup_time=1.0),
        endpoints=[Endpoint(host=host, port=port)],
    )


class TestEpochCommitPoints:
    def test_batch_of_inserts_advances_epoch_once(self, tree):
        before = tree.epoch
        with tree.batch():
            for index in range(10):
                tree.insert(parse(f"[service=s{index}]"), make_record(f"h{index}"))
        assert tree.epoch == before + 1

    def test_unbatched_inserts_advance_epoch_each(self, tree):
        before = tree.epoch
        for index in range(10):
            tree.insert(parse(f"[service=s{index}]"), make_record(f"h{index}"))
        assert tree.epoch == before + 10

    def test_clean_batch_is_free(self, tree):
        tree.insert(parse("[service=camera]"), make_record("h1"))
        before = tree.epoch
        with tree.batch():
            tree.lookup(parse("[service=camera]"))
        assert tree.epoch == before

    def test_pure_refresh_batch_keeps_epoch(self, tree):
        tree.insert(parse("[service=camera]"), _stable_record("h1"))
        before = tree.epoch
        with tree.batch():
            # Same announcer, same name: a soft-state refresh, not a
            # membership change — even the batch's dirty flag stays off.
            refreshed = _stable_record("h1", port=2)
            tree.insert(parse("[service=camera]"), refreshed)
        assert tree.epoch == before

    def test_nested_batches_commit_at_outermost_close(self, tree):
        before = tree.epoch
        with tree.batch():
            tree.insert(parse("[a=1]"), make_record("h1"))
            with tree.batch():
                tree.insert(parse("[a=2]"), make_record("h2"))
            # Inner close must not commit while the outer is open.
            assert tree.epoch == before
        assert tree.epoch == before + 1

    def test_batched_removes_advance_once(self, tree):
        records = [make_record(f"h{index}") for index in range(5)]
        for index, record in enumerate(records):
            tree.insert(parse(f"[service=s{index}]"), record)
        before = tree.epoch
        with tree.batch():
            for record in records:
                assert tree.remove(record)
        assert tree.epoch == before + 1
        assert len(tree) == 0

    def test_expire_sweep_is_one_epoch(self, tree):
        for index in range(5):
            tree.insert(
                parse(f"[service=s{index}]"),
                make_record(f"h{index}", expires_at=10.0),
            )
        before = tree.epoch
        assert len(tree.expire(now=100.0)) == 5
        assert tree.epoch == before + 1

    def test_end_batch_without_begin_raises(self, tree):
        with pytest.raises(RuntimeError):
            tree.end_batch()

    def test_batch_reraises_and_still_commits(self, tree):
        before = tree.epoch
        with pytest.raises(ValueError, match="boom"):
            with tree.batch():
                tree.insert(parse("[a=1]"), make_record("h1"))
                raise ValueError("boom")
        # The context manager closed the batch on the way out: the
        # insert that did land is committed, not left pending.
        assert tree.epoch == before + 1
        assert len(tree.lookup(parse("[a=1]"))) == 1


class TestMemoInteraction:
    def test_dirty_batch_invalidates_memo_exactly_once(self, tree):
        query = parse("[service=camera]")
        tree.insert(parse("[service=camera]"), make_record("h0"))
        tree.lookup(query)  # populate the memo
        with tree.batch():
            for index in range(1, 6):
                tree.insert(parse("[service=camera]"), make_record(f"h{index}"))
        invalidations = tree.memo_invalidations
        assert len(tree.lookup(query)) == 6  # sees every batched insert
        assert tree.memo_invalidations == invalidations + 1
        # Re-querying at the new epoch is a hit again.
        hits = tree.memo_hits
        tree.lookup(query)
        assert tree.memo_hits == hits + 1

    def test_pure_refresh_batch_keeps_memo_warm(self, tree):
        query = parse("[service=camera]")
        tree.insert(parse("[service=camera]"), _stable_record("h1"))
        first = tree.lookup(query)
        with tree.batch():
            tree.insert(parse("[service=camera]"), _stable_record("h1", port=7))
        assert tree.memo_invalidations == 0
        hits = tree.memo_hits
        result = tree.lookup(query)
        assert tree.memo_hits == hits + 1
        assert result == first
        # Refreshes mutate the shared record in place, so the memoized
        # result already exposes the new endpoint.
        (record,) = result
        assert record.endpoints[0].port == 7

    def test_lookup_mid_batch_commits_pending_epoch(self, tree):
        query = parse("[service=camera]")
        before = tree.epoch
        with tree.batch():
            tree.insert(parse("[service=camera]"), make_record("h1"))
            # The lookup must observe the insert, which forces the
            # pending advance to commit early...
            assert len(tree.lookup(query)) == 1
            assert tree.epoch == before + 1
            # ...and later changes in the same batch re-dirty it.
            tree.insert(parse("[service=camera]"), make_record("h2"))
        assert tree.epoch == before + 2
        assert len(tree.lookup(query)) == 2

    def test_batched_equals_unbatched_results(self):
        queries = [parse("[a=1]"), parse("[a=1[b=2]]"), parse("[a=*]")]
        names = ["[a=1[b=1]]", "[a=1[b=2]]", "[a=2[b=2]]", "[a=1]"]
        batched, unbatched = NameTree(), NameTree()
        with batched.batch():
            for index, text in enumerate(names):
                batched.insert(parse(text), make_record(f"h{index}"))
        for index, text in enumerate(names):
            unbatched.insert(parse(text), make_record(f"h{index}"))
        for query in queries:
            left = {r.endpoints[0].host for r in batched.lookup(query)}
            right = {r.endpoints[0].host for r in unbatched.lookup(query)}
            assert left == right
