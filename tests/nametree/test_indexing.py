"""Tests for the optional subtree-index optimization."""

import random

import pytest

from repro.experiments import UniformWorkload
from repro.naming import NameSpecifier
from repro.nametree import AnnouncerID, NameRecord, NameTree

from ..conftest import make_record, parse


class TestIndexMaintenance:
    def test_aggregate_tracks_inserts(self):
        tree = NameTree(index_subtrees=True)
        record = make_record()
        tree.insert(parse("[a=b[c=d]]"), record)
        # one leaf (c=d): the root sees the record exactly once
        assert tree.root.aggregate == {record: 1}

    def test_aggregate_counts_are_per_leaf(self):
        tree = NameTree(index_subtrees=True)
        record = make_record()
        tree.insert(parse("[a=b[x=1][y=2]][c=d]"), record)
        # three leaves -> the root sees the record three times
        assert tree.root.aggregate[record] == 3

    def test_aggregate_empties_on_removal(self):
        tree = NameTree(index_subtrees=True)
        record = make_record()
        tree.insert(parse("[a=b[x=1][y=2]][c=d]"), record)
        tree.remove(record)
        assert tree.root.aggregate == {}

    def test_shared_ancestor_keeps_record_until_last_leaf_detaches(self):
        tree = NameTree(index_subtrees=True)
        keep = make_record("keep")
        go = make_record("go")
        tree.insert(parse("[a=b[x=1]]"), keep)
        tree.insert(parse("[a=b[x=2]]"), go)
        tree.remove(go)
        assert keep in tree.root.aggregate
        assert go not in tree.root.aggregate

    def test_plain_tree_has_no_aggregates(self):
        tree = NameTree()
        tree.insert(parse("[a=b]"), make_record())
        assert tree.root.aggregate is None


class TestIndexEquivalence:
    @pytest.mark.parametrize("wildcards", [0.0, 0.5])
    def test_lookup_results_identical(self, wildcards):
        workload_a = UniformWorkload(rng=random.Random(5))
        workload_b = UniformWorkload(rng=random.Random(5))
        plain = NameTree()
        indexed = NameTree(index_subtrees=True)
        plain_records, indexed_records = {}, {}
        for i, (na, nb) in enumerate(
            zip(workload_a.distinct_names(150), workload_b.distinct_names(150))
        ):
            rp = NameRecord(announcer=AnnouncerID.generate(f"pl{i}"))
            ri = NameRecord(announcer=AnnouncerID.generate(f"ix{i}"))
            plain.insert(na, rp)
            indexed.insert(nb, ri)
            plain_records[i], indexed_records[i] = rp, ri
        queries = UniformWorkload(rng=random.Random(6))
        for _ in range(60):
            query = queries.random_query(wildcard_probability=wildcards)
            found_plain = {
                i for i, r in plain_records.items() if r in plain.lookup(query)
            }
            found_indexed = {
                i for i, r in indexed_records.items()
                if r in indexed.lookup(query)
            }
            assert found_plain == found_indexed

    def test_equivalence_survives_expiry(self):
        plain = NameTree()
        indexed = NameTree(index_subtrees=True)
        for i in range(40):
            expires = 10.0 if i % 2 else 100.0
            plain.insert(parse(f"[s=v{i % 5}[id=n{i}]]"),
                         make_record(f"p{i}", expires_at=expires))
            indexed.insert(parse(f"[s=v{i % 5}[id=n{i}]]"),
                           make_record(f"i{i}", expires_at=expires))
        plain.expire(50.0)
        indexed.expire(50.0)
        query = parse("[s=*]")
        assert len(plain.lookup(query)) == len(indexed.lookup(query)) == 20
        assert len(indexed.root.aggregate) == 20
