"""Tests for grafting names into a name-tree and removing them."""

import pytest

from repro.naming import NameSpecifier, WildcardValueError
from repro.nametree import AnnouncerID, Endpoint, NameRecord, NameTree, Route

from ..conftest import make_record, parse


class TestInsert:
    def test_insert_creates_record(self, tree):
        record = make_record()
        outcome = tree.insert(parse("[a=b]"), record)
        assert outcome.created
        assert outcome.changed
        assert outcome.record is record
        assert len(tree) == 1

    def test_insert_builds_alternating_layers(self, tree):
        tree.insert(parse("[a=b[c=d]]"), make_record())
        attributes, values = tree.node_counts()
        assert attributes == 2  # a, c
        assert values == 2  # b, d

    def test_superposition_shares_prefixes(self, tree):
        tree.insert(parse("[a=b[c=d]]"), make_record())
        tree.insert(parse("[a=b[c=e]]"), make_record("10.0.0.2"))
        attributes, values = tree.node_counts()
        assert attributes == 2  # 'a' and one shared 'c' attribute node
        assert values == 3  # b, d, e

    def test_record_attached_at_each_leaf(self, tree):
        record = make_record()
        tree.insert(parse("[a=b[x=1][y=2]][c=d]"), record)
        # leaves: x=1, y=2, c=d
        assert len(record.attachments) == 3

    def test_wildcard_advertisement_rejected(self, tree):
        with pytest.raises(WildcardValueError):
            tree.insert(parse("[a=*]"), make_record())

    def test_range_advertisement_rejected(self, tree):
        with pytest.raises(WildcardValueError):
            tree.insert(parse("[a=<9]"), make_record())

    def test_empty_advertisement_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.insert(NameSpecifier(), make_record())

    def test_insert_sets_vspace_on_record(self):
        tree = NameTree(vspace="cameras")
        record = make_record()
        tree.insert(parse("[a=b]"), record)
        assert record.vspace == "cameras"


class TestRefresh:
    def test_same_name_same_announcer_refreshes(self, tree):
        record = make_record()
        record.expires_at = 10.0
        tree.insert(parse("[a=b]"), record)
        refresh = NameRecord(
            announcer=record.announcer,
            endpoints=list(record.endpoints),
            anycast_metric=record.anycast_metric,
            route=record.route,
            expires_at=99.0,
        )
        outcome = tree.insert(parse("[a=b]"), refresh)
        assert not outcome.created
        assert not outcome.changed  # pure refresh: no new information
        assert outcome.record is record  # canonical record kept
        assert record.expires_at == 99.0
        assert len(tree) == 1

    def test_metric_change_marks_changed(self, tree):
        record = make_record(metric=5.0)
        tree.insert(parse("[a=b]"), record)
        update = NameRecord(
            announcer=record.announcer,
            endpoints=list(record.endpoints),
            anycast_metric=1.0,
            route=record.route,
            expires_at=50.0,
        )
        outcome = tree.insert(parse("[a=b]"), update)
        assert not outcome.created
        assert outcome.changed
        assert record.anycast_metric == 1.0

    def test_endpoint_change_marks_changed(self, tree):
        record = make_record(host="old-host")
        tree.insert(parse("[a=b]"), record)
        update = NameRecord(
            announcer=record.announcer,
            endpoints=[Endpoint(host="new-host", port=9)],
            anycast_metric=record.anycast_metric,
            route=record.route,
            expires_at=50.0,
        )
        outcome = tree.insert(parse("[a=b]"), update)
        assert outcome.changed
        assert record.endpoints[0].host == "new-host"

    def test_name_change_regrafts(self, tree):
        """Service mobility: same announcer, new name (Section 3.2)."""
        record = make_record()
        tree.insert(parse("[service=camera][room=510]"), record)
        moved = NameRecord(
            announcer=record.announcer,
            endpoints=list(record.endpoints),
            expires_at=50.0,
        )
        outcome = tree.insert(parse("[service=camera][room=520]"), moved)
        assert outcome.changed
        assert len(tree) == 1
        assert not tree.lookup(parse("[room=510]"))
        assert tree.lookup(parse("[room=520]")) == {moved}


class TestRemove:
    def test_remove_detaches_record(self, tree):
        record = make_record()
        tree.insert(parse("[a=b]"), record)
        assert tree.remove(record)
        assert len(tree) == 0
        assert not tree.lookup(parse("[a=b]"))

    def test_remove_prunes_dead_branches(self, tree):
        record = make_record()
        tree.insert(parse("[a=b[c=d]]"), record)
        tree.remove(record)
        assert tree.node_counts() == (0, 0)

    def test_remove_keeps_shared_branches(self, tree):
        first = make_record("h1")
        second = make_record("h2")
        tree.insert(parse("[a=b[c=d]]"), first)
        tree.insert(parse("[a=b[c=e]]"), second)
        tree.remove(first)
        assert tree.node_counts() == (2, 2)  # a,b and c,e survive
        assert tree.lookup(parse("[a=b[c=e]]")) == {second}

    def test_remove_unknown_record_returns_false(self, tree):
        assert not tree.remove(make_record())

    def test_remove_announcer(self, tree):
        record = make_record()
        tree.insert(parse("[a=b]"), record)
        assert tree.remove_announcer(record.announcer) is record
        assert tree.remove_announcer(record.announcer) is None

    def test_contains_and_record_for(self, tree):
        record = make_record()
        tree.insert(parse("[a=b]"), record)
        assert record.announcer in tree
        assert tree.record_for(record.announcer) is record
