"""Tests for soft-state expiry of name-records (Section 2.2)."""

import math

from repro.nametree import DEFAULT_LIFETIME, NameTree

from ..conftest import make_record, parse


class TestExpiry:
    def test_expired_records_are_removed(self, tree):
        record = make_record(expires_at=10.0)
        tree.insert(parse("[a=b]"), record)
        expired = tree.expire(now=10.0)
        assert expired == [record]
        assert len(tree) == 0

    def test_live_records_survive(self, tree):
        record = make_record(expires_at=10.0)
        tree.insert(parse("[a=b]"), record)
        assert tree.expire(now=9.999) == []
        assert len(tree) == 1

    def test_expiry_prunes_branches(self, tree):
        record = make_record(expires_at=5.0)
        tree.insert(parse("[a=b[c=d]]"), record)
        tree.expire(now=6.0)
        assert tree.node_counts() == (0, 0)

    def test_partial_expiry(self, tree):
        doomed = make_record(host="doomed", expires_at=5.0)
        survivor = make_record(host="survivor", expires_at=100.0)
        tree.insert(parse("[a=b]"), doomed)
        tree.insert(parse("[a=c]"), survivor)
        tree.expire(now=50.0)
        assert tree.lookup(parse("[a=*]")) == {survivor}

    def test_refresh_extends_life(self, tree):
        record = make_record(expires_at=5.0)
        tree.insert(parse("[a=b]"), record)
        record.refresh(now=4.0, lifetime=DEFAULT_LIFETIME)
        assert tree.expire(now=6.0) == []
        assert record.expires_at == 4.0 + DEFAULT_LIFETIME

    def test_next_expiry(self, tree):
        assert tree.next_expiry() is None
        tree.insert(parse("[a=b]"), make_record(expires_at=7.0))
        tree.insert(parse("[a=c]"), make_record(expires_at=3.0))
        assert tree.next_expiry() == 3.0

    def test_infinite_lifetime_never_expires(self, tree):
        record = make_record(expires_at=math.inf)
        tree.insert(parse("[a=b]"), record)
        assert tree.expire(now=1e12) == []


class TestRecordBasics:
    def test_is_expired_boundary(self):
        record = make_record(expires_at=10.0)
        assert not record.is_expired(9.999)
        assert record.is_expired(10.0)

    def test_same_payload_detects_differences(self):
        base = make_record(host="h", metric=1.0)
        twin = make_record(host="h", metric=1.0)
        twin.endpoints = list(base.endpoints)
        assert base.same_payload(twin)
        twin.anycast_metric = 2.0
        assert not base.same_payload(twin)

    def test_records_hash_by_identity_semantics(self):
        """Two records never compare equal unless identical objects —
        a set of records is a set of distinct announcements."""
        a = make_record("h")
        b = make_record("h")
        assert a != b
        assert len({a, b}) == 2
