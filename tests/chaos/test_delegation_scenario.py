"""Reduced-scale checks of the delegation-under-fire chaos scenario.

The benchmark and CI smoke run the full crash matrix; these tests keep
a representative slice in tier-1 so a regression in the handoff
protocol, the invariants, or the scenario plumbing fails fast.
"""

from repro.chaos import (
    run_delegation_ablation,
    run_delegation_scenario,
)

# Small enough to stay fast in tier-1, but with >= 3 transfer chunks
# (20 records / chunk size 8) so a mid-transfer crash has an observable
# mid-transfer to hit.
SCALE = dict(n_bulk=20, n_anchor=4, traffic=10.0)


class TestDelegationScenario:
    def test_fault_free_run_commits_exactly_one_handoff(self):
        report = run_delegation_scenario(seed=3, **SCALE)
        assert report.delegations_started == 1
        assert report.delegations_committed == 1
        assert report.lost_records == 0
        assert len(report.authority) == 1
        assert report.always_violations == ()
        assert report.converged_violations == ()
        assert report.window_success_rate >= 0.95

    def test_recipient_crash_mid_transfer_self_heals(self):
        report = run_delegation_scenario(
            seed=3, crash_role="recipient", crash_phase="transfer",
            restart_after=1.5, **SCALE
        )
        assert report.crash_at > 0.0
        assert report.lost_records == 0
        assert len(report.authority) == 1
        assert report.converged_violations == ()
        assert report.window_success_rate >= 0.95  # dual-serving window

    def test_donor_crash_at_await_commit_converges_to_one_authority(self):
        report = run_delegation_scenario(
            seed=3, crash_role="donor", crash_phase="await-commit",
            restart_after=1.5, **SCALE
        )
        assert report.crash_at > 0.0
        assert report.lost_records == 0
        assert len(report.authority) == 1
        assert report.converged_violations == ()

    def test_same_seed_runs_fingerprint_identically(self):
        first = run_delegation_scenario(
            seed=3, crash_role="recipient", crash_phase="transfer",
            restart_after=1.5, **SCALE
        )
        second = run_delegation_scenario(
            seed=3, crash_role="recipient", crash_phase="transfer",
            restart_after=1.5, **SCALE
        )
        assert first.fingerprint() == second.fingerprint()

    def test_single_shot_ablation_loses_the_vspace(self):
        ablation = run_delegation_ablation(seed=3, **SCALE)
        on, off = ablation["two_phase"], ablation["ablated"]
        assert on.lost_records == 0
        assert on.converged_violations == ()
        assert off.lost_records > 0
        assert "single-vspace-authority" in off.converged_violations
