"""InvariantChecker: overlay shape, routing loops, claims, name sync."""

import pytest

from repro.chaos import InvariantChecker
from repro.chaos.scenario import fast_chaos_config
from repro.experiments import InsDomain


def make_domain(seed=50, n_inrs=4, n_services=2):
    config = fast_chaos_config()
    domain = InsDomain(seed=seed, config=config, dsr_registration_lifetime=3.0,
                       dsr_sweep_interval=0.5)
    inrs = [domain.add_inr() for _ in range(n_inrs)]
    for index in range(n_services):
        domain.add_service(
            f"[service=inv[id={index}]]",
            resolver=inrs[index % n_inrs],
            refresh_interval=config.refresh_interval,
            lifetime=config.record_lifetime,
        )
    domain.run(3.0)
    return domain, inrs


class TestHealthyDomain:
    def test_all_invariants_hold_at_steady_state(self):
        domain, _inrs = make_domain()
        checker = InvariantChecker(domain)
        assert checker.check_always() == []
        assert checker.check_converged() == []

    def test_periodic_sampling_accumulates_nothing_when_healthy(self):
        domain, _inrs = make_domain()
        checker = InvariantChecker(domain).install(0.5)
        domain.run(5.0)
        checker.uninstall()
        assert checker.violations == []
        assert checker.samples_taken == 10

    def test_install_twice_rejected(self):
        domain, _inrs = make_domain(n_inrs=1, n_services=0)
        checker = InvariantChecker(domain).install()
        with pytest.raises(RuntimeError, match="already installed"):
            checker.install()

    def test_uninstall_stops_sampling(self):
        domain, _inrs = make_domain(n_inrs=1, n_services=0)
        checker = InvariantChecker(domain).install(0.5)
        domain.run(2.0)
        taken = checker.samples_taken
        checker.uninstall()
        domain.run(2.0)
        assert checker.samples_taken == taken


class TestOverlayShape:
    def test_cycle_detected(self):
        """Force a peering cycle by hand; the forest invariant flags it."""
        domain, inrs = make_domain(n_inrs=3, n_services=0)
        a, b, c = inrs
        # Complete the triangle behind the protocol's back.
        a.neighbors.add(b.address, rtt=0.01)
        b.neighbors.add(c.address, rtt=0.01)
        c.neighbors.add(a.address, rtt=0.01)
        b.neighbors.add(a.address, rtt=0.01)
        c.neighbors.add(b.address, rtt=0.01)
        a.neighbors.add(c.address, rtt=0.01)
        violations = InvariantChecker(domain).overlay_is_forest()
        assert violations
        assert violations[0].invariant == "overlay-acyclic"

    def test_disconnected_overlay_is_a_forest_but_not_a_tree(self):
        domain, inrs = make_domain(n_inrs=4, n_services=0)
        # Sever one INR from everyone, bilaterally.
        loner = inrs[-1]
        for other in inrs[:-1]:
            loner.neighbors.remove(other.address)
            other.neighbors.remove(loner.address)
        checker = InvariantChecker(domain)
        assert checker.overlay_is_forest() == []
        violations = checker.overlay_is_single_tree()
        assert violations
        assert violations[0].invariant == "overlay-single-tree"

    def test_crashed_inrs_are_ignored(self):
        """A crashed resolver's stale neighbor entries must not count."""
        domain, inrs = make_domain(n_inrs=3, n_services=0)
        inrs[0].crash()
        domain.run(fast_chaos_config().neighbor_timeout + 2.0)
        checker = InvariantChecker(domain)
        assert checker.overlay_is_forest() == []
        assert checker.overlay_is_single_tree() == []


class TestClaims:
    def test_duplicate_candidate_flagged(self):
        domain, _inrs = make_domain(n_inrs=1, n_services=0)
        domain.dsr._candidates = ["spare-1", "spare-1"]
        violations = InvariantChecker(domain).no_duplicate_candidate_claims()
        assert violations
        assert "duplicates" in violations[0].detail

    def test_candidate_also_active_flagged(self):
        domain, inrs = make_domain(n_inrs=1, n_services=0)
        domain.dsr._candidates = [inrs[0].address]
        violations = InvariantChecker(domain).no_duplicate_candidate_claims()
        assert violations
        assert "both" in violations[0].detail


class TestNameConsistency:
    def test_stale_name_flagged_before_expiry_sweep(self):
        """Kill a service, freeze the clocks: its record is now stale
        state the converged invariant must flag (the lifetime has not
        run out, so it is *visible* stale state)."""
        domain, inrs = make_domain(n_inrs=2, n_services=1)
        service = domain.services[0]
        service.stop()
        domain.run(0.1)  # not long enough for soft state to expire
        violations = InvariantChecker(domain).names_consistent()
        assert violations
        assert "stale" in violations[0].detail

    def test_stale_name_ages_out(self):
        domain, inrs = make_domain(n_inrs=2, n_services=1)
        domain.services[0].stop()
        checker = InvariantChecker(domain)
        domain.run(checker.convergence_bound())
        assert checker.names_consistent() == []

    def test_missing_name_flagged(self):
        domain, inrs = make_domain(n_inrs=2, n_services=1)
        service = domain.services[0]
        for vspace in service.name.vspaces():
            for inr in inrs:
                tree = inr.trees.get(vspace)
                if tree is not None and tree.record_for(service.announcer):
                    tree.remove_announcer(service.announcer)
        violations = InvariantChecker(domain).names_consistent()
        assert violations
        assert "missing" in violations[0].detail

    def test_convergence_bound_scales_with_clocks(self):
        fast_domain, _ = make_domain(n_inrs=2, n_services=0)
        slow_config = fast_chaos_config(refresh_interval=4.0,
                                        neighbor_timeout=12.0)
        slow_domain = InsDomain(seed=51, config=slow_config)
        slow_domain.add_inr()
        slow_domain.add_inr()
        fast_bound = InvariantChecker(fast_domain).convergence_bound()
        slow_bound = InvariantChecker(slow_domain).convergence_bound()
        assert slow_bound > fast_bound


class TestCustodyDrained:
    """Post-heal convergence: no payload may still sit in custody."""

    def custody_domain(self):
        from dataclasses import replace

        config = replace(
            fast_chaos_config(),
            enable_custody=True,
            custody_ttl=5.0,
            custody_retry_interval=0.5,
        )
        domain = InsDomain(seed=52, config=config,
                           dsr_registration_lifetime=3.0,
                           dsr_sweep_interval=0.5)
        inr = domain.add_inr()
        client = domain.add_client(resolver=inr)
        domain.run(2.0)
        return domain, inr, client

    def test_vacuous_when_custody_disabled(self):
        domain, _inrs = make_domain(n_inrs=1, n_services=0)
        assert InvariantChecker(domain).custody_drained() == []

    def test_held_payload_past_bound_flagged(self):
        from repro.naming import NameSpecifier

        domain, inr, client = self.custody_domain()
        client.send_anycast(NameSpecifier.parse("[service=stuck]"), b"x")
        domain.run(0.5)
        assert len(inr.custody) == 1
        violations = InvariantChecker(domain).custody_drained()
        assert len(violations) == 1
        assert violations[0].invariant == "custody-drained"
        assert inr.address in violations[0].detail

    def test_settled_store_is_clean(self):
        """Once every payload lapses by TTL the store drains and the
        invariant holds again (the lapse is an attributed drop)."""
        from repro.naming import NameSpecifier

        domain, inr, client = self.custody_domain()
        client.send_anycast(NameSpecifier.parse("[service=stuck]"), b"x")
        checker = InvariantChecker(domain)
        domain.run(checker.convergence_bound())
        assert checker.custody_drained() == []
        assert inr.stats.drops_custody_expired == 1

    def test_bound_covers_custody_ttl(self):
        domain, _inr, _client = self.custody_domain()
        plain, _ = make_domain(n_inrs=1, n_services=0)
        assert (
            InvariantChecker(domain).convergence_bound()
            > InvariantChecker(plain).convergence_bound()
        )
