"""Chaos: neighbor crash + restart under reliable-delta updates.

The regression this pins down: a restarted INR opens fresh reliable
connections whose sequence numbers begin at 1 again. Before connection
epochs, the surviving neighbor's stale receive cursor silently swallowed
every post-restart frame as a "duplicate" (and the survivor's own
continuing high sequence numbers sat unresolvable in the restarted
peer's reorder buffer), so the domain never reconverged. The crash
window here is deliberately shorter than the neighbor timeout: the
survivor keeps its stale channel state rather than timing the peer out.
"""

from repro.chaos.invariants import InvariantChecker
from repro.experiments import InsDomain
from repro.resolver import InrConfig


def reliable_delta_config() -> InrConfig:
    return InrConfig(
        update_mode="reliable-delta",
        refresh_interval=2.0,
        record_lifetime=6.0,
        expiry_sweep_interval=1.0,
        heartbeat_interval=1.0,
        neighbor_timeout=8.0,
        reliable_retransmit_timeout=0.5,
    )


class TestReliableRestart:
    def test_neighbor_crash_and_restart_reconverges(self):
        domain = InsDomain(seed=808, config=reliable_delta_config())
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        domain.add_service("[service=rr[id=a1]]", resolver=a,
                           refresh_interval=2.0, lifetime=6.0)
        domain.add_service("[service=rr[id=b1]]", resolver=b,
                           refresh_interval=2.0, lifetime=6.0)
        domain.run(4.0)
        assert a.name_count() == 2
        assert b.name_count() == 2

        domain.crash_inr("inr-b")
        domain.run(3.0)  # < neighbor_timeout: a keeps stale channel state
        domain.restart_inr("inr-b")
        # A service b never saw before the crash: its advertisement can
        # only reach a through post-restart reliable frames.
        domain.add_service("[service=rr[id=b2]]", resolver=b,
                           refresh_interval=2.0, lifetime=6.0)

        checker = InvariantChecker(domain)
        domain.run(checker.convergence_bound())
        assert a.name_count() == 3
        assert b.name_count() == 3
        assert checker.check_converged() == []
