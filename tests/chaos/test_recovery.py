"""RecoveryTracker: fault lifecycle timestamps and MTTR statistics."""

import math

import pytest

from repro.chaos import RecoveryRecord, RecoveryTracker, percentile
from repro.chaos.scenario import fast_chaos_config
from repro.experiments import InsDomain


class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 0.5))

    def test_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0.50) == 2.0
        assert percentile(samples, 0.95) == 4.0
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 4.0

    def test_inf_propagates(self):
        assert percentile([1.0, math.inf], 1.0) == math.inf

    def test_fraction_validated(self):
        with pytest.raises(ValueError, match="fraction"):
            percentile([1.0], 1.5)


class TestRecoveryRecord:
    def test_open_record_reports_inf(self):
        record = RecoveryRecord(kind="crash-inr", target="inr-1",
                                injected_at=3.0)
        assert record.time_to_detect == math.inf
        assert record.time_to_recover == math.inf

    def test_closed_record_reports_deltas(self):
        record = RecoveryRecord(kind="crash-inr", target="inr-1",
                                injected_at=3.0, detected_at=5.0,
                                recovered_at=10.0)
        assert record.time_to_detect == 2.0
        assert record.time_to_recover == 7.0


def make_domain(seed=60, n_inrs=3, n_services=1):
    config = fast_chaos_config()
    domain = InsDomain(seed=seed, config=config, dsr_registration_lifetime=2.0,
                       dsr_sweep_interval=0.5)
    inrs = [domain.add_inr() for _ in range(n_inrs)]
    for index in range(n_services):
        domain.add_service(
            f"[service=rec[id={index}]]",
            resolver=inrs[index % n_inrs],
            refresh_interval=config.refresh_interval,
            lifetime=config.record_lifetime,
        )
    domain.run(2.0)
    return domain, inrs


class TestCrashWatch:
    def test_crash_without_restart_recovers_when_forgotten(self):
        domain, inrs = make_domain()
        tracker = RecoveryTracker(domain, poll_interval=0.1)
        doomed = inrs[1]
        doomed.crash()
        record = tracker.watch_inr_crash(doomed)
        domain.run(30.0)
        assert record.detected_at is not None
        assert record.recovered_at is not None
        # Detection is bounded by the DSR registration lifetime plus a
        # sweep; full forgetting additionally needs the peer timeout.
        assert record.time_to_detect <= 2.0 + 0.5 + 0.2
        assert record.time_to_recover >= record.time_to_detect
        assert doomed.address not in domain.dsr.active_inrs
        for live in domain.live_inrs:
            assert doomed.address not in live.neighbors

    def test_crash_with_restart_waits_for_names(self):
        domain, inrs = make_domain()
        tracker = RecoveryTracker(domain, poll_interval=0.1)
        doomed = inrs[0]  # hosts the service's records
        doomed.crash()
        record = tracker.watch_inr_crash_with_restart(doomed)
        domain.run(4.0)
        assert record.recovered_at is None  # still down
        domain.restart_inr(doomed.address)
        domain.run(15.0)
        assert record.recovered_at is not None
        revived = domain.inr_at(doomed.address)
        assert revived.active and not revived.terminated
        assert doomed.address in domain.dsr.active_inrs
        # The service's record is back in the revived resolver.
        assert revived.name_count() >= 1

    def test_fast_restart_counts_recovery_even_without_detection(self):
        """A restart quicker than any timeout: detection never fires on
        its own, so recovery implies it (no inf MTTR for healed
        faults)."""
        domain, inrs = make_domain()
        tracker = RecoveryTracker(domain, poll_interval=0.1)
        doomed = inrs[2]
        doomed.crash()
        record = tracker.watch_inr_crash_with_restart(doomed)
        domain.run(0.3)  # far less than the 2 s DSR lifetime
        domain.restart_inr(doomed.address)
        domain.run(10.0)
        assert record.recovered_at is not None
        assert record.detected_at is not None
        assert record.time_to_detect <= record.time_to_recover


class TestLinkFlapWatch:
    def test_flap_lifecycle(self):
        domain, inrs = make_domain()
        pair = (inrs[0].address, inrs[1].address)
        link = domain.network.link(*pair)
        tracker = RecoveryTracker(domain, poll_interval=0.1)
        link.up = False
        record = tracker.watch_link_flap(pair)
        domain.run(2.0)
        assert record.detected_at is not None
        assert record.recovered_at is None
        link.up = True
        domain.run(1.0)
        assert record.recovered_at is not None
        assert record.time_to_recover == pytest.approx(2.0, abs=0.2)


class TestDsrFailoverWatch:
    def test_failover_recovers_when_live_set_matches(self):
        domain, inrs = make_domain()
        domain.add_dsr_replica()
        domain.run(2.0)
        tracker = RecoveryTracker(domain, poll_interval=0.1)
        domain.fail_over_dsr()
        record = tracker.watch_dsr_failover()
        domain.run(10.0)
        assert record.recovered_at is not None
        assert set(domain.dsr.active_inrs) == {i.address for i in inrs}


class TestTrackerMachinery:
    def test_stop_leaves_open_watches_inf(self):
        domain, inrs = make_domain()
        tracker = RecoveryTracker(domain, poll_interval=0.1)
        inrs[1].crash()
        record = tracker.watch_inr_crash_with_restart(inrs[1])
        domain.run(1.0)
        tracker.stop()
        domain.run(30.0)  # no restart ever happens
        assert record.recovered_at is None
        summary = tracker.mttr_summary()
        assert summary["crash-inr"]["unrecovered"] == 1.0
        assert math.isinf(summary["crash-inr"]["p100"])

    def test_mttr_summary_groups_by_kind(self):
        domain, inrs = make_domain()
        tracker = RecoveryTracker(domain, poll_interval=0.1)
        pair = (inrs[0].address, inrs[1].address)
        link = domain.network.link(*pair)
        link.up = False
        tracker.watch_link_flap(pair)
        domain.run(1.0)
        link.up = True
        inrs[2].crash()
        tracker.watch_inr_crash(inrs[2])
        domain.run(30.0)
        summary = tracker.mttr_summary()
        assert set(summary) == {"link-flap", "crash-inr"}
        for stats in summary.values():
            assert stats["count"] == 1.0
            assert stats["unrecovered"] == 0.0
            assert math.isfinite(stats["p50"])
            assert stats["p50"] <= stats["p95"] <= stats["p100"]

    def test_poll_interval_validated(self):
        domain, _ = make_domain(n_inrs=1, n_services=0)
        with pytest.raises(ValueError, match="poll interval"):
            RecoveryTracker(domain, poll_interval=0.0)
