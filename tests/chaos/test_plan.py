"""FaultPlan generation, validation and controller scheduling."""

import pytest

from repro.chaos import FAULT_KINDS, ChaosController, FaultEvent, FaultPlan
from repro.experiments import InsDomain


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(at=1.0, kind="meteor-strike")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultEvent(at=-0.1, kind="crash-inr", target="inr-1")

    def test_params_lookup(self):
        event = FaultEvent(
            at=1.0, kind="cpu-degrade", target="inr-1", params=(("factor", 0.25),)
        )
        assert event.param("factor") == 0.25
        assert event.param("absent", 1.0) == 1.0


class TestFaultPlanBuild:
    def test_events_sorted_by_time(self):
        plan = FaultPlan.build(
            [
                FaultEvent(at=5.0, kind="crash-inr", target="b"),
                FaultEvent(at=1.0, kind="crash-inr", target="a"),
            ]
        )
        assert [event.at for event in plan] == [1.0, 5.0]
        assert len(plan) == 2


class TestFaultPlanRandom:
    ADDRESSES = [f"inr-{i}" for i in range(1, 11)]
    LINKS = [(f"inr-{i}", f"inr-{i + 1}") for i in range(1, 10)]

    def test_same_seed_same_plan(self):
        kwargs = dict(
            inr_addresses=self.ADDRESSES,
            link_pairs=self.LINKS,
            duration=60.0,
            dsr_failover=True,
            cpu_degrade_fraction=0.2,
            link_fault_fraction=0.2,
        )
        assert FaultPlan.random(7, **kwargs) == FaultPlan.random(7, **kwargs)

    def test_different_seed_different_plan(self):
        kwargs = dict(inr_addresses=self.ADDRESSES, link_pairs=self.LINKS)
        assert FaultPlan.random(1, **kwargs) != FaultPlan.random(2, **kwargs)

    def test_input_order_does_not_matter(self):
        """The generator canonicalises its inputs, so shuffled address
        lists produce the identical timeline."""
        forward = FaultPlan.random(3, self.ADDRESSES, self.LINKS)
        backward = FaultPlan.random(
            3, list(reversed(self.ADDRESSES)), list(reversed(self.LINKS))
        )
        assert forward == backward

    def test_crash_fraction_rounds_up(self):
        plan = FaultPlan.random(
            5, self.ADDRESSES, crash_fraction=0.25, restart_after=None
        )
        crashes = [e for e in plan if e.kind == "crash-inr"]
        assert len(crashes) == 3  # ceil(0.25 * 10)
        assert not [e for e in plan if e.kind == "restart-inr"]

    def test_every_crash_gets_a_restart(self):
        plan = FaultPlan.random(
            5, self.ADDRESSES, crash_fraction=0.3, restart_after=4.0
        )
        crashes = {e.target: e.at for e in plan if e.kind == "crash-inr"}
        restarts = {e.target: e.at for e in plan if e.kind == "restart-inr"}
        assert set(restarts) == set(crashes)
        for address, crashed_at in crashes.items():
            assert restarts[address] == pytest.approx(crashed_at + 4.0)

    def test_flaps_come_in_down_up_pairs(self):
        plan = FaultPlan.random(
            9, self.ADDRESSES, self.LINKS, flap_fraction=0.2, flap_length=6.0
        )
        downs = {e.target: e.at for e in plan if e.kind == "link-down"}
        ups = {e.target: e.at for e in plan if e.kind == "link-up"}
        assert set(downs) == set(ups) and downs
        for pair, down_at in downs.items():
            assert ups[pair] == pytest.approx(down_at + 6.0)

    def test_fault_times_leave_recovery_headroom(self):
        plan = FaultPlan.random(
            11, self.ADDRESSES, self.LINKS, duration=50.0,
            dsr_failover=True, link_fault_fraction=0.3,
        )
        # Clearing events (restarts, link-ups, zeroed link-faults) may
        # land later; the injections themselves stay inside 60% of the
        # duration so recovery fits in the run.
        injections = [
            e
            for e in plan
            if e.kind in ("crash-inr", "link-down", "dsr-failover", "cpu-degrade")
            or (e.kind == "link-faults" and e.param("duplicate_rate") > 0)
        ]
        assert injections
        assert all(e.at <= 50.0 * 0.6 for e in injections)

    def test_kinds_listed(self):
        plan = FaultPlan.random(1, self.ADDRESSES, self.LINKS, dsr_failover=True)
        assert set(plan.kinds) <= set(FAULT_KINDS)
        assert "dsr-failover" in plan.kinds


class TestChaosController:
    def test_events_fire_relative_to_execute_time(self):
        """Setup time must not eat into the fault timeline: an event at
        t=2 fires two seconds after execute(), wherever `now` is."""
        domain = InsDomain(seed=1)
        inr = domain.add_inr()
        domain.run(5.0)  # arbitrary setup delay
        started_at = domain.now
        controller = ChaosController(domain)
        controller.execute(
            FaultPlan.build([FaultEvent(at=2.0, kind="crash-inr",
                                        target=inr.address)])
        )
        domain.run(1.9)
        assert not controller.applied
        domain.run(0.2)
        assert [e.kind for e in controller.applied] == ["crash-inr"]
        assert inr.terminated
        assert domain.now == pytest.approx(started_at + 2.1)

    def test_cpu_degrade_and_restore(self):
        domain = InsDomain(seed=2)
        inr = domain.add_inr()
        original = inr.node.cpu.speed
        controller = ChaosController(domain)
        controller.execute(
            FaultPlan.build(
                [
                    FaultEvent(at=0.5, kind="cpu-degrade", target=inr.address,
                               params=(("factor", 0.25),)),
                    FaultEvent(at=1.5, kind="cpu-restore", target=inr.address),
                ]
            )
        )
        domain.run(1.0)
        assert inr.node.cpu.speed == pytest.approx(original * 0.25)
        domain.run(1.0)
        assert inr.node.cpu.speed == pytest.approx(original)

    def test_link_faults_toggle(self):
        domain = InsDomain(seed=3)
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        link = domain.network.link("inr-a", "inr-b")
        controller = ChaosController(domain)
        controller.execute(
            FaultPlan.build(
                [
                    FaultEvent(
                        at=0.5, kind="link-faults", target=("inr-a", "inr-b"),
                        params=(("duplicate_rate", 0.5), ("reorder_rate", 0.3)),
                    ),
                    FaultEvent(
                        at=1.5, kind="link-faults", target=("inr-a", "inr-b"),
                        params=(("duplicate_rate", 0.0), ("reorder_rate", 0.0)),
                    ),
                ]
            )
        )
        domain.run(1.0)
        assert link.duplicate_rate == 0.5 and link.reorder_rate == 0.3
        domain.run(1.0)
        assert link.duplicate_rate == 0.0 and link.reorder_rate == 0.0


class TestFaultPlanDutyCycle:
    LINKS = [("inr-a", "inr-b"), ("inr-b", "inr-c")]

    def test_same_seed_same_plan(self):
        kwargs = dict(link_pairs=self.LINKS, start=1.0, end=31.0, period=6.0)
        assert FaultPlan.duty_cycle(7, **kwargs) == FaultPlan.duty_cycle(
            7, **kwargs
        )

    def test_different_seed_different_phases(self):
        kwargs = dict(link_pairs=self.LINKS, start=1.0, end=31.0, period=6.0)
        assert FaultPlan.duty_cycle(1, **kwargs) != FaultPlan.duty_cycle(
            2, **kwargs
        )

    def test_every_link_ends_up(self):
        """The closing event for every link is its link-up: a duty
        plan never strands a link down past its window."""
        plan = FaultPlan.duty_cycle(
            3, self.LINKS, start=0.0, end=40.0, period=5.0, duty=0.4
        )
        final = {}
        for event in plan:
            assert 0.0 <= event.at <= 40.0
            assert event.kind in ("link-down", "link-up")
            final[event.target] = event.kind
        assert len(final) == len(self.LINKS)
        assert set(final.values()) == {"link-up"}

    def test_duty_fraction_validated(self):
        with pytest.raises(ValueError, match="duty"):
            FaultPlan.duty_cycle(0, self.LINKS, start=0.0, end=10.0, duty=1.0)
        with pytest.raises(ValueError, match="period"):
            FaultPlan.duty_cycle(0, self.LINKS, start=5.0, end=5.0)

    def test_links_actually_cycle(self):
        """Executing a duty plan toggles the physical link state."""
        domain = InsDomain(seed=4)
        domain.add_inr(address="inr-a")
        domain.add_inr(address="inr-b")
        link = domain.network.link("inr-a", "inr-b")
        plan = FaultPlan.duty_cycle(
            0, [("inr-a", "inr-b")], start=0.5, end=10.5, period=10.0,
            duty=0.5, phase_jitter=0.0
        )
        controller = ChaosController(domain)
        controller.execute(plan)
        domain.run(7.0)
        assert link.up is False
        domain.run(5.0)
        assert link.up is True
