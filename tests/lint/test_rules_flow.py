"""Rule-level tests for the cross-file flow rules (entropy-taint,
node-isolation) over synthetic trees rooted at tmp_path.

Paths matter: the engine maps each file's repo-relative path onto
``DEFAULT_PROFILES``, so placing a caller under ``benchmarks/`` vs
``src/`` is how these tests exercise per-profile sanctioning.
"""

import textwrap

import pytest

from repro.lint import Engine
from repro.lint.rules.flow import classify_entropy_origin


def run_tree(tmp_path, files, **engine_kwargs):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    engine_kwargs.setdefault("root", tmp_path)
    return Engine(**engine_kwargs).run([tmp_path])


def findings_of(result, rule):
    return [f for f in result.findings if f.rule == rule]


class TestClassifyEntropyOrigin:
    def test_kinds(self):
        assert classify_entropy_origin("time.time") == "wall-clock"
        assert classify_entropy_origin("random.random") == "ambient-rng"
        assert classify_entropy_origin("random.uniform") == "ambient-rng"
        assert classify_entropy_origin("os.urandom") == "os-entropy"
        assert classify_entropy_origin("uuid.uuid4") == "os-entropy"
        assert classify_entropy_origin("secrets.token_hex") == "os-entropy"

    def test_clean_origins(self):
        assert classify_entropy_origin("random.Random") is None
        assert classify_entropy_origin("random.SystemRandom") is None
        assert classify_entropy_origin("time.perf_counter") is None
        assert classify_entropy_origin("math.sqrt") is None


RNG_TREE = {
    "src/repro/util.py": """
        import random


        def jitter():
            return random.random()
    """,
    "src/repro/proto.py": """
        from repro.util import jitter


        def backoff(base):
            return base + jitter()
    """,
}


class TestEntropyTaint:
    def test_rng_taint_crosses_files_with_remedy(self, tmp_path):
        result = run_tree(tmp_path, RNG_TREE, select=["entropy-taint"])
        (finding,) = findings_of(result, "entropy-taint")
        assert finding.path == "src/repro/proto.py"
        assert "ambient-rng" in finding.message
        assert "jitter -> random.random()" in finding.message
        assert "seeded random.Random" in finding.message

    def test_os_entropy_taint(self, tmp_path):
        result = run_tree(tmp_path, {
            "src/repro/ids.py": """
                import uuid


                def fresh_id():
                    return uuid.uuid4()
            """,
            "src/repro/record.py": """
                from repro.ids import fresh_id


                def record():
                    return {"id": fresh_id()}
            """,
        }, select=["entropy-taint"])
        (finding,) = findings_of(result, "entropy-taint")
        assert finding.path == "src/repro/record.py"
        assert "os-entropy" in finding.message

    def test_benchmark_caller_is_sanctioned_for_wall_clock_only(
        self, tmp_path
    ):
        # benchmarks/ allows the wall clock (host timing) but not RNG:
        # the same helper pair flags once, for the RNG chain only.
        result = run_tree(tmp_path, {
            "src/repro/hosttime.py": """
                import time


                def wall():  # lint: disable=no-ambient-entropy -- helper under test
                    return time.time()
            """,
            "src/repro/rng.py": """
                import random


                def roll():  # lint: disable=no-ambient-entropy -- helper under test
                    return random.random()
            """,
            "benchmarks/driver.py": """
                from repro.hosttime import wall
                from repro.rng import roll


                def measure():
                    start = wall()
                    return start + roll()
            """,
        }, select=["entropy-taint"])
        flagged = findings_of(result, "entropy-taint")
        assert [(f.path, f.line) for f in flagged] == [
            ("benchmarks/driver.py", 8)
        ]
        assert "ambient-rng" in flagged[0].message
        # The identical caller under src/ flags both chains.
        strict = run_tree(tmp_path, {
            "src/repro/caller.py": """
                from repro.hosttime import wall
                from repro.rng import roll


                def measure():
                    start = wall()
                    return start + roll()
            """,
        }, select=["entropy-taint"])
        kinds = {
            f.line: f.message.split(" through ")[0]
            for f in findings_of(strict, "entropy-taint")
            if f.path == "src/repro/caller.py"
        }
        assert "wall-clock" in kinds[7]
        assert "ambient-rng" in kinds[8]

    def test_pragma_at_call_site_suppresses(self, tmp_path):
        files = dict(RNG_TREE)
        files["src/repro/proto.py"] = """
            from repro.util import jitter


            def backoff(base):
                return base + jitter()  # lint: disable=entropy-taint -- seeded upstream
        """
        result = run_tree(tmp_path, files, select=["entropy-taint"])
        assert findings_of(result, "entropy-taint") == []
        assert len(result.suppressed) == 1

    def test_long_chain_is_truncated_in_message(self, tmp_path):
        files = {
            "src/repro/h0.py": """
                import time


                def hop0():
                    return time.time()
            """,
        }
        for i in range(1, 8):
            files[f"src/repro/h{i}.py"] = f"""
                from repro.h{i - 1} import hop{i - 1}


                def hop{i}():
                    return hop{i - 1}()
            """
        result = run_tree(tmp_path, files, select=["entropy-taint"])
        deepest = [
            f for f in findings_of(result, "entropy-taint")
            if f.path == "src/repro/h7.py"
        ]
        assert len(deepest) == 1
        assert "..." in deepest[0].message


ISOLATION_BASE = {
    "src/repro/netsim/__init__.py": "",
    "src/repro/netsim/process.py": """
        class Process:
            def __init__(self, node):
                self.node = node
                self.table = {}

            def send(self, address, port, payload):
                pass
    """,
}


class TestNodeIsolation:
    def test_foreign_write_and_global_forms(self, tmp_path):
        files = dict(ISOLATION_BASE)
        files["src/repro/sim/actor.py"] = """
            from repro.netsim.process import Process

            PEERS = {}


            def helper():
                global _COUNT
                _COUNT = 0


            class Actor(Process):
                def meddle(self, other: Process, value):
                    other.table["k"] = value
                    PEERS[self.node] = other

                def rebind(self):
                    global PEERS
                    PEERS = {}
        """
        result = run_tree(tmp_path, files, select=["node-isolation"])
        flagged = {
            (f.line, f.message.split(";")[0])
            for f in findings_of(result, "node-isolation")
        }
        lines = sorted(line for line, _ in flagged)
        assert lines == [14, 15, 19]
        messages = dict(sorted(flagged))
        assert "another node's process reference" in messages[14]
        assert "'PEERS'" in messages[15]
        assert "rebinds module-level 'PEERS'" in messages[19]

    def test_module_function_and_reads_are_exempt(self, tmp_path):
        # helper() above is not a node method; reads never flag.
        files = dict(ISOLATION_BASE)
        files["src/repro/sim/reader.py"] = """
            from repro.netsim.process import Process

            TABLE = {}


            def module_level():
                TABLE["x"] = 1


            class Reader(Process):
                def peek(self, other: Process):
                    return other.table, len(TABLE)

                def own(self, value):
                    self.table["x"] = value
        """
        result = run_tree(tmp_path, files, select=["node-isolation"])
        assert findings_of(result, "node-isolation") == []

    def test_tests_profile_disables_the_rule(self, tmp_path):
        files = dict(ISOLATION_BASE)
        files["tests/helper_nodes.py"] = """
            from repro.netsim.process import Process

            SEEN = set()


            class Probe(Process):
                def poke(self, other: Process, value):
                    other.table["k"] = value
                    SEEN.add(value)
        """
        result = run_tree(tmp_path, files, select=["node-isolation"])
        assert findings_of(result, "node-isolation") == []
