"""Per-rule unit tests for the hygiene rules."""


class TestMutableDefault:
    RULE = "no-mutable-default"

    def test_list_literal_flagged(self, rule_ids):
        assert self.RULE in rule_ids("def f(x=[]):\n    return x\n")

    def test_dict_literal_flagged(self, rule_ids):
        assert self.RULE in rule_ids("def f(x={}):\n    return x\n")

    def test_constructor_call_flagged(self, rule_ids):
        assert self.RULE in rule_ids("def f(x=set()):\n    return x\n")
        assert self.RULE in rule_ids(
            "from collections import defaultdict\n"
            "def f(x=defaultdict(list)):\n    return x\n"
        )

    def test_keyword_only_default_flagged(self, rule_ids):
        assert self.RULE in rule_ids("def f(*, x=[]):\n    return x\n")

    def test_lambda_default_flagged(self, rule_ids):
        assert self.RULE in rule_ids("f = lambda x=[]: x\n")

    def test_immutable_defaults_allowed(self, rule_ids):
        assert self.RULE not in rule_ids(
            "def f(a=None, b=0, c='x', d=(), e=frozenset()):\n"
            "    return a, b, c, d, e\n"
        )


class TestSilentExcept:
    RULE = "no-silent-except"

    def test_bare_except_flagged(self, lint):
        found = [
            f for f in lint("try:\n    x = 1\nexcept:\n    x = 2\n")
            if f.rule == self.RULE
        ]
        assert len(found) == 1
        assert "bare except" in found[0].message

    def test_swallowing_handler_flagged(self, lint):
        found = [
            f for f in lint(
                "try:\n    x = 1\nexcept ValueError:\n    pass\n"
            )
            if f.rule == self.RULE
        ]
        assert len(found) == 1
        assert "swallows" in found[0].message

    def test_continue_body_flagged(self, rule_ids):
        assert self.RULE in rule_ids(
            "for i in [1]:\n"
            "    try:\n"
            "        x = i\n"
            "    except ValueError:\n"
            "        continue\n"
        )

    def test_handler_that_records_allowed(self, rule_ids):
        assert self.RULE not in rule_ids(
            "def f(stats):\n"
            "    try:\n"
            "        x = 1\n"
            "    except ValueError:\n"
            "        stats.errors += 1\n"
        )

    def test_handler_that_reraises_allowed(self, rule_ids):
        assert self.RULE not in rule_ids(
            "try:\n    x = 1\nexcept ValueError:\n    raise\n"
        )
