"""Unit tests for the pass-2 whole-program model (repro.lint.project)."""

import textwrap

import pytest

from repro.lint import FileContext
from repro.lint.project import ProjectModel


def build_model(tmp_path, files):
    contexts = []
    for rel, source in sorted(files.items()):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        contexts.append(FileContext(path, path.read_text(), root=tmp_path))
    return ProjectModel(contexts, root=tmp_path)


class TestModuleIndex:
    def test_repro_modules_and_pseudo_modules(self, tmp_path):
        model = build_model(tmp_path, {
            "src/repro/naming/tree.py": "def lookup():\n    pass\n",
            "src/repro/naming/__init__.py": "",
            "tests/test_x.py": "def test_x():\n    pass\n",
        })
        assert "repro.naming.tree" in model.modules
        assert "repro.naming" in model.modules
        assert "tests.test_x" in model.modules
        assert "repro.naming.tree.lookup" in model.functions

    def test_exports_and_mutable_vars(self, tmp_path):
        model = build_model(tmp_path, {
            "src/repro/pkg/__init__.py": """
                __all__ = ["a", "b"]
                REGISTRY = {}
                LIMIT = 3
            """,
        })
        info = model.modules["repro.pkg"]
        assert [name for name, _ in info.exports] == ["a", "b"]
        assert info.mutable_vars == {"REGISTRY"}
        assert "LIMIT" in info.variables


class TestResolution:
    def test_reexport_chased_through_package_init(self, tmp_path):
        model = build_model(tmp_path, {
            "src/repro/pkg/__init__.py":
                "from .impl import Thing\n__all__ = [\"Thing\"]\n",
            "src/repro/pkg/impl.py": "class Thing:\n    pass\n",
            "src/repro/user.py":
                "from repro.pkg import Thing\n"
                "def make():\n    return Thing()\n",
        })
        assert model.resolve_local("repro.pkg", "Thing") == (
            "class", "repro.pkg.impl.Thing"
        )
        assert model.resolve_local("repro.user", "Thing") == (
            "class", "repro.pkg.impl.Thing"
        )

    def test_relative_import_absolutized(self, tmp_path):
        model = build_model(tmp_path, {
            "src/repro/layer/a.py": "def helper():\n    pass\n",
            "src/repro/layer/b.py":
                "from .a import helper\n"
                "def use():\n    return helper()\n",
        })
        fn = model.functions["repro.layer.b.use"]
        assert [callee for callee, _ in fn.project_calls] == [
            "repro.layer.a.helper"
        ]

    def test_external_symbol_resolves_external(self, tmp_path):
        model = build_model(tmp_path, {
            "src/repro/m.py":
                "import time\n"
                "def stamp():\n    return time.time()\n",
        })
        fn = model.functions["repro.m.stamp"]
        assert [origin for origin, _ in fn.external_calls] == ["time.time"]

    def test_import_graph_edges(self, tmp_path):
        model = build_model(tmp_path, {
            "src/repro/a.py": "from repro.b import helper\n",
            "src/repro/b.py": "def helper():\n    pass\n",
        })
        assert model.import_graph["repro.a"] == {"repro.b"}


class TestCallGraph:
    WIRED = {
        "src/repro/core.py": """
            class Engine:
                def __init__(self):
                    self.pump = Pump()

                def run(self):
                    self.step()
                    self.pump.push()

                def step(self):
                    pass


            class Pump:
                def push(self):
                    pass
        """,
        "src/repro/drive.py": """
            from repro.core import Engine


            def drive(engine: Engine):
                engine.run()
        """,
    }

    def test_self_and_component_calls_resolve(self, tmp_path):
        model = build_model(tmp_path, self.WIRED)
        run = model.functions["repro.core.Engine.run"]
        callees = {callee for callee, _ in run.project_calls}
        assert callees == {
            "repro.core.Engine.step", "repro.core.Pump.push"
        }

    def test_annotated_param_method_resolves(self, tmp_path):
        model = build_model(tmp_path, self.WIRED)
        drive = model.functions["repro.drive.drive"]
        assert [c for c, _ in drive.project_calls] == [
            "repro.core.Engine.run"
        ]

    def test_reachable_from_walks_the_graph(self, tmp_path):
        model = build_model(tmp_path, self.WIRED)
        reached = model.reachable_from(["repro.drive.drive"])
        assert "repro.core.Engine.run" in reached
        assert "repro.core.Engine.step" in reached
        assert "repro.core.Pump.push" in reached


class TestHierarchy:
    def test_subclasses_of_transitive(self, tmp_path):
        model = build_model(tmp_path, {
            "src/repro/base.py": "class Root:\n    pass\n",
            "src/repro/mid.py":
                "from repro.base import Root\n"
                "class Mid(Root):\n    pass\n",
            "src/repro/leaf.py":
                "from repro.mid import Mid\n"
                "class Leaf(Mid):\n    pass\n"
                "class Other:\n    pass\n",
        })
        subs = model.subclasses_of(["repro.base.Root"])
        assert subs == {
            "repro.base.Root", "repro.mid.Mid", "repro.leaf.Leaf"
        }

    def test_lookup_method_walks_bases(self, tmp_path):
        model = build_model(tmp_path, {
            "src/repro/base.py":
                "class Root:\n    def ping(self):\n        pass\n",
            "src/repro/leaf.py":
                "from repro.base import Root\n"
                "class Leaf(Root):\n    pass\n",
        })
        assert model.lookup_method("repro.leaf.Leaf", "ping") == \
            "repro.base.Root.ping"


class TestProfiles:
    def test_profile_for_uses_rel_path(self, tmp_path):
        model = build_model(tmp_path, {
            "src/repro/m.py": "",
            "tests/t.py": "",
        })
        assert model.profile_for("tests/t.py").name == "tests"
        assert model.profile_for("src/repro/m.py").name == "src"


def test_source_line_round_trip(tmp_path):
    model = build_model(tmp_path, {
        "src/repro/m.py": "FIRST = 1\nSECOND = 2\n",
    })
    assert model.source_line("src/repro/m.py", 2) == "SECOND = 2"
    assert model.source_line("missing.py", 1) == ""


def test_cycle_in_reexports_terminates(tmp_path):
    model = build_model(tmp_path, {
        "src/repro/a.py": "from repro.b import thing\n",
        "src/repro/b.py": "from repro.a import thing\n",
    })
    assert model.resolve_local("repro.a", "thing") is None
