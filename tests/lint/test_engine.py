"""Engine-level behavior: pragmas, baseline, reporters, parse errors."""

import json

import pytest

from repro.lint import (
    BAD_PRAGMA,
    Baseline,
    BaselineEntry,
    Engine,
    PARSE_ERROR,
    SEVERITY_WARNING,
    USELESS_PRAGMA,
    render_json,
    render_text,
)

VIOLATION = "import random\nx = random.randint(0, 5)\n"


class TestPragmas:
    def test_justified_pragma_suppresses(self, lint):
        findings = lint(
            "import random\n"
            "x = random.randint(0, 5)  "
            "# lint: disable=no-ambient-entropy -- seeding study needs it\n"
        )
        assert findings == []

    def test_unjustified_pragma_keeps_finding_and_reports_pragma(self, lint):
        findings = lint(
            "import random\n"
            "x = random.randint(0, 5)  # lint: disable=no-ambient-entropy\n"
        )
        rules = sorted(f.rule for f in findings)
        assert rules == [BAD_PRAGMA, "no-ambient-entropy"]

    def test_comment_line_pragma_covers_next_line(self, lint):
        findings = lint(
            "import random\n"
            "# lint: disable=no-ambient-entropy -- exercising the pragma\n"
            "x = random.randint(0, 5)\n"
        )
        assert findings == []

    def test_pragma_for_other_rule_does_not_suppress(self, lint):
        findings = lint(
            "import random\n"
            "x = random.randint(0, 5)  "
            "# lint: disable=no-mutable-default -- wrong rule on purpose\n"
        )
        rules = sorted(f.rule for f in findings)
        assert rules == ["no-ambient-entropy", USELESS_PRAGMA]

    def test_disable_all_with_justification(self, lint):
        findings = lint(
            "import random\n"
            "x = random.randint(0, 5)  # lint: disable=all -- kitchen sink\n"
        )
        assert findings == []

    def test_useless_pragma_is_warning(self, lint):
        findings = lint(
            "x = 1  # lint: disable=no-ambient-entropy -- nothing here\n"
        )
        assert [f.rule for f in findings] == [USELESS_PRAGMA]
        assert findings[0].severity == SEVERITY_WARNING

    def test_pragma_inside_string_ignored(self, lint):
        findings = lint(
            's = "# lint: disable=no-ambient-entropy -- not a pragma"\n'
        )
        assert findings == []

    def test_suppressed_findings_counted_in_run(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "import random\n"
            "x = random.randint(0, 5)  "
            "# lint: disable=no-ambient-entropy -- deliberate\n"
        )
        result = Engine(root=tmp_path).run([target])
        assert result.findings == []
        assert len(result.suppressed) == 1
        assert result.exit_code == 0


class TestBaseline:
    def _run(self, tmp_path, baseline=None):
        engine = Engine(root=tmp_path, baseline=baseline)
        return engine.run([tmp_path])

    def test_baselined_findings_do_not_fail(self, tmp_path):
        (tmp_path / "mod.py").write_text(VIOLATION)
        first = self._run(tmp_path)
        assert first.exit_code == 1
        baseline = Baseline.from_findings(first.findings)
        second = self._run(tmp_path, baseline=baseline)
        assert second.exit_code == 0
        assert len(second.baselined) == 1
        assert second.stale_baseline == []

    def test_new_finding_still_fails_with_baseline(self, tmp_path):
        (tmp_path / "mod.py").write_text(VIOLATION)
        baseline = Baseline.from_findings(self._run(tmp_path).findings)
        (tmp_path / "mod.py").write_text(
            VIOLATION + "y = random.random()\n"
        )
        result = self._run(tmp_path, baseline=baseline)
        assert result.exit_code == 1
        assert len(result.findings) == 1
        assert "random.random" in result.findings[0].message

    def test_fixed_finding_reported_stale(self, tmp_path):
        (tmp_path / "mod.py").write_text(VIOLATION)
        baseline = Baseline.from_findings(self._run(tmp_path).findings)
        (tmp_path / "mod.py").write_text("x = 1\n")
        result = self._run(tmp_path, baseline=baseline)
        assert result.exit_code == 0
        assert len(result.stale_baseline) == 1
        assert result.stale_baseline[0].rule == "no-ambient-entropy"
        pruned = baseline.pruned(result.stale_baseline)
        assert pruned.entries == []

    def test_fingerprint_survives_line_shift(self, tmp_path):
        (tmp_path / "mod.py").write_text(VIOLATION)
        baseline = Baseline.from_findings(self._run(tmp_path).findings)
        (tmp_path / "mod.py").write_text(
            "# a new leading comment shifts every line\n\n" + VIOLATION
        )
        result = self._run(tmp_path, baseline=baseline)
        assert result.exit_code == 0
        assert len(result.baselined) == 1

    def test_save_and_load_roundtrip(self, tmp_path):
        entry = BaselineEntry(
            rule="no-ambient-entropy", path="mod.py", fingerprint="ab12",
            count=2,
        )
        path = tmp_path / ".lint-baseline.json"
        Baseline([entry]).save(path)
        loaded = Baseline.load(path)
        assert [e.to_dict() for e in loaded.entries] == [entry.to_dict()]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == []

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestReporters:
    def _result(self, tmp_path):
        (tmp_path / "mod.py").write_text(VIOLATION)
        return Engine(root=tmp_path).run([tmp_path])

    def test_json_schema(self, tmp_path):
        report = json.loads(render_json(self._result(tmp_path)))
        assert report["version"] == 1
        summary = report["summary"]
        for key in (
            "files_scanned", "findings", "errors", "warnings",
            "suppressed", "baselined", "stale_baseline", "by_rule",
        ):
            assert key in summary
        assert summary["errors"] == 1
        assert summary["by_rule"] == {"no-ambient-entropy": 1}
        (finding,) = report["findings"]
        for key in (
            "rule", "severity", "path", "line", "col", "message",
            "fingerprint", "source",
        ):
            assert key in finding
        assert finding["path"] == "mod.py"
        assert finding["line"] == 2

    def test_text_report_mentions_location_and_rule(self, tmp_path):
        text = render_text(self._result(tmp_path))
        assert "mod.py:2:" in text
        assert "[no-ambient-entropy]" in text
        assert "1 error(s)" in text


class TestEngineEdges:
    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        result = Engine(root=tmp_path).run([tmp_path])
        assert [f.rule for f in result.findings] == [PARSE_ERROR]
        assert result.exit_code == 1

    def test_select_and_ignore(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import random\n"
            "x = random.randint(0, 5)\n"
            "def f(y=[]):\n"
            "    return y\n"
        )
        only = Engine(root=tmp_path, select=["no-mutable-default"]).run(
            [tmp_path]
        )
        assert {f.rule for f in only.findings} == {"no-mutable-default"}
        skipped = Engine(root=tmp_path, ignore=["no-mutable-default"]).run(
            [tmp_path]
        )
        assert {f.rule for f in skipped.findings} == {"no-ambient-entropy"}

    def test_unknown_rule_id_rejected(self):
        from repro.lint import create_rules

        with pytest.raises(ValueError):
            create_rules(select=["no-such-rule"])

    def test_unknown_rule_option_rejected(self):
        from repro.lint import create_rules

        with pytest.raises(ValueError):
            create_rules(
                select=["no-ambient-entropy"],
                rule_options={"no-ambient-entropy": {"typo_option": 1}},
            )

    def test_discovery_skips_excluded_dirs(self, tmp_path):
        nested = tmp_path / "corpus"
        nested.mkdir()
        (nested / "bad.py").write_text(VIOLATION)
        (tmp_path / "ok.py").write_text("x = 1\n")
        result = Engine(root=tmp_path).run([tmp_path])
        assert result.files_scanned == 1
        assert result.findings == []


TAINTED_SOURCE = (
    "import time\n"
    "\n"
    "\n"
    "def jitter():\n"
    "    return time.time()  "
    "# lint: disable=no-ambient-entropy -- host helper\n"
)

TAINTED_CALLER = (
    "from repro.util import jitter\n"
    "\n"
    "\n"
    "def backoff(base):\n"
    "    return base + jitter()  "
    "# lint: disable=entropy-taint -- sanctioned while util reads the host clock\n"
)


class TestWholeProgramEngine:
    """Pass-2 plumbing: validation, the parse cache, deferred pragmas."""

    def _tree(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "util.py").write_text(TAINTED_SOURCE)
        (pkg / "proto.py").write_text(TAINTED_CALLER)
        return tmp_path

    def test_engine_rejects_unknown_select_and_ignore(self):
        with pytest.raises(ValueError, match="--select"):
            Engine(select=["entropy-taint", "no-such-rule"])
        with pytest.raises(ValueError, match="--ignore"):
            Engine(ignore=["nope"])
        # Project rule ids are valid in both.
        Engine(select=["entropy-taint"])
        Engine(ignore=["protocol-exhaustive", "node-isolation"])

    def test_project_rules_recorded_on_result(self, tmp_path):
        root = self._tree(tmp_path)
        result = Engine(root=root).run([root])
        assert "entropy-taint" in result.project_rules
        assert "node-isolation" in result.project_rules
        assert "protocol-exhaustive" in result.project_rules
        only = Engine(root=root, select=["no-ambient-entropy"]).run([root])
        assert only.project_rules == []

    def test_parse_cache_hits_and_identical_findings(self, tmp_path):
        root = self._tree(tmp_path)
        first = Engine(root=root).run([root])
        assert first.cache_misses == 2
        second = Engine(root=root).run([root])
        assert second.cache_hits == 2
        assert second.cache_misses == 0
        key = lambda r: [
            (f.rule, f.path, f.line, f.message) for f in r.findings
        ]
        assert key(first) == key(second)
        assert len(first.suppressed) == len(second.suppressed)

    def test_cache_invalidated_by_edit(self, tmp_path):
        root = self._tree(tmp_path)
        Engine(root=root).run([root])
        (root / "src" / "repro" / "util.py").write_text(
            TAINTED_SOURCE + "\n# touched\n"
        )
        result = Engine(root=root).run([root])
        assert result.cache_hits == 1
        assert result.cache_misses == 1

    def test_cross_file_pragma_suppresses_project_finding(self, tmp_path):
        root = self._tree(tmp_path)
        result = Engine(root=root).run([root])
        assert result.findings == []
        suppressed = sorted(f.rule for f in result.suppressed)
        assert suppressed == ["entropy-taint", "no-ambient-entropy"]

    def test_fixed_taint_path_turns_pragma_useless(self, tmp_path):
        """SATELLITE 3: fix the cross-file taint at its *source* and the
        caller's untouched (cache-hit) pragma must surface as
        USELESS_PRAGMA — deferred pragma accounting working across
        files and across cached parses."""
        root = self._tree(tmp_path)
        Engine(root=root).run([root])
        (root / "src" / "repro" / "util.py").write_text(
            "def jitter():\n    return 0.0\n"
        )
        result = Engine(root=root).run([root])
        assert result.cache_hits == 1  # proto.py came from the cache
        assert [
            (f.rule, f.path) for f in result.findings
        ] == [(USELESS_PRAGMA, "src/repro/proto.py")]
        assert result.findings[0].line == 5
        assert result.findings[0].severity == SEVERITY_WARNING
        assert result.exit_code == 0

    def test_json_report_carries_pass2_fields(self, tmp_path):
        root = self._tree(tmp_path)
        report = json.loads(render_json(Engine(root=root).run([root])))
        summary = report["summary"]
        assert "entropy-taint" in summary["project_rules"]
        cache = summary["parse_cache"]
        assert set(cache) == {"hits", "misses"}
        assert cache["hits"] + cache["misses"] == 2


class TestCli:
    def _main(self, argv, capsys):
        from repro.lint.cli import main

        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_list_rules_marks_project_scope(self, capsys):
        code, out, _ = self._main(["--list-rules"], capsys)
        assert code == 0
        assert "entropy-taint [project]" in out
        assert "no-ambient-entropy [file]" in out

    def test_unknown_select_id_is_usage_error(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        code, _, err = self._main(
            ["--root", str(tmp_path), "--select", "no-such-rule",
             str(tmp_path)],
            capsys,
        )
        assert code == 2
        assert "no-such-rule" in err

    def test_select_project_rule_runs_clean_tree(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        code, out, _ = self._main(
            ["--root", str(tmp_path), "--select", "entropy-taint",
             "--format", "json", str(tmp_path)],
            capsys,
        )
        assert code == 0
        report = json.loads(out)
        assert report["summary"]["project_rules"] == ["entropy-taint"]
