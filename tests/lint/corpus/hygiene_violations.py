"""Corpus: mutable defaults and silent exception handlers.

Never imported; scanned by tests/lint/test_corpus.py. Line numbers are
asserted — append, don't reorder.
"""


def collect(into=[]):                    # line 8: mutable list default
    into.append(1)
    return into


def index(table={}):                     # line 13: mutable dict default
    return table


def register(seen=set()):                # line 17: mutable set constructor
    return seen


def dispatch(packet):
    try:
        packet.decode()
    except:                              # line 24: bare except
        return None


def refresh(record):
    try:
        record.touch()
    except Exception:                    # line 31: swallowed exception
        pass


# Compliant shapes must NOT be flagged:
def ok_default(into=None, limit=10, name="x"):
    return into, limit, name


def ok_handler(stats, record):
    try:
        record.touch()
    except Exception:
        stats.errors += 1
