"""Corpus: the wire-surface export list the dispatch check reads."""

from .wire import Orphan, Ping, Pong

__all__ = ["Orphan", "Ping", "Pong"]
