"""Corpus: wire message classes, one of them never dispatched.

Never imported; scanned by tests/lint/test_corpus.py. Line numbers are
asserted — append, don't reorder.
"""


class Ping:
    pass


class Pong:
    pass


class Orphan:                            # line 16: exported, undispatched
    pass
