"""Corpus: resolver stand-in for the protocol-exhaustive surfaces.

Dispatches Ping (directly) and Pong (via a helper reachable from
``handle_message``) but not Orphan; counts one drop cause with a span
emission and one without. Never imported; scanned by
tests/lint/test_corpus.py. Line numbers are asserted — append, don't
reorder.
"""

from repro.message import Ping, Pong

DROP_PREFIX = "drop:"


class InrStats:
    drops_no_route: int = 0              # emitted below; not flagged
    drops_ghost: int = 0                 # line 17: no span emission


class INR:
    def __init__(self):
        self.stats = InrStats()

    def handle_message(self, payload, source):
        if isinstance(payload, Ping):
            return self._drop(source)
        return self._late(payload, source)

    def _late(self, payload, source):
        if isinstance(payload, (Pong,)):
            return source
        return None

    def _drop(self, source):
        self.stats.drops_no_route += 1
        return (source, DROP_PREFIX + "no-route")
