"""Corpus: a resolver module importing against the declared DAG.

Never imported; scanned by tests/lint/test_corpus.py. Line numbers are
asserted — append, don't reorder.
"""

from ..overlay import protocol           # line 7: resolver -> overlay
from repro.client import api             # line 8: resolver -> client
import repro.chaos                       # line 9: resolver -> chaos
import repro                             # line 10: package-root import
from ..frontend import widgets           # line 11: undeclared layer

from ..naming import specifier           # allowed: declared dependency
from . import config                     # allowed: same layer
