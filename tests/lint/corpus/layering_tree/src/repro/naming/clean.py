"""Corpus: a bottom-layer module with no dependencies — zero findings."""

from .avpair import AVPair
from . import errors

PAIR = AVPair
FAMILY = errors
