"""Corpus: first hop — launders the clock through an intermediate.

No entropy source appears in this file, so the per-file rule has
nothing to say; ``entropy-taint`` flags the call because its callee is
a wall-clock source. Never imported; line numbers are asserted.
"""

from repro.hostutil.clock import wall_seconds


def elapsed_since(start):
    return wall_seconds() - start        # line 12: one-hop taint
