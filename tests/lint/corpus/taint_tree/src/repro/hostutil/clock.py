"""Corpus: the laundering source — a pragma-sanctioned clock wrapper.

The wall-clock read below is justified in place, so the per-file
``no-ambient-entropy`` rule is silent on this whole tree; only the
interprocedural ``entropy-taint`` rule can see that callers in other
files inherit the taint. Never imported; scanned by
tests/lint/test_corpus.py. Line numbers are asserted — append, don't
reorder.
"""

import time


def wall_seconds():
    # line 16: sanctioned at the source, tainted for callers
    return time.time()  # lint: disable=no-ambient-entropy -- host profiling helper; callers are policed by entropy-taint
