"""Corpus: second hop — the two-hop wrapper per-file lint cannot see.

This module is two calls away from ``time.time()`` (sched ->
stopwatch -> clock) with no entropy token anywhere in the file; only
call-graph reachability can connect it to the source. Never imported;
line numbers are asserted.
"""

from repro.hostutil.stopwatch import elapsed_since  # lint: disable=layering -- corpus tree sits outside the layer DAG


def overdue(start, budget):
    return elapsed_since(start) > budget  # line 13: two-hop taint
