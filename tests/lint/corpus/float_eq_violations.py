"""Corpus: float equality on simulated time.

Never imported; scanned by tests/lint/test_corpus.py. Line numbers are
asserted — append, don't reorder.
"""


def due(sim, record, deadline):
    if sim.now == deadline:              # line 9: == on simulated time
        return True
    if record.expires_at != deadline:    # line 11: != on simulated time
        return False
    return sim.now() == record.refresh_time + 0.5   # line 13: arithmetic


# Exempt comparisons must NOT be flagged:
import math


def fine(sim, record, approx):
    if record.expires_at == math.inf:
        return True
    if sim.now <= record.deadline:
        return False
    return sim.now == approx(record.deadline)
