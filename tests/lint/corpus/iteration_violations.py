"""Corpus: order-sensitive iteration over sets.

Never imported; scanned by tests/lint/test_corpus.py. Line numbers are
asserted — append, don't reorder.
"""

from typing import Set

HOSTS = {"a", "b", "c"}

for host in HOSTS:                       # line 11: for over a set
    print(host)

ORDERED = [h.upper() for h in HOSTS]     # line 14: listcomp over a set
AS_LIST = list({"x", "y"})               # line 15: list() over a set
JOINED = ",".join(HOSTS)                 # line 16: join over a set


def emit(pending: Set[str]) -> None:
    for item in pending:                 # line 20: annotated set param
        print(item)


def derived() -> None:
    base = set("abc")
    combined = base | {"d"}
    for item in combined:                # line 27: set algebra result
        print(item)


# Order-insensitive consumption must NOT be flagged:
TOTAL = len(HOSTS)
ANY_HIT = any(h == "a" for h in sorted(HOSTS))
SORTED_OK = [h for h in sorted(HOSTS)]
UNIQUE = {h.upper() for h in HOSTS}
