"""Corpus: minimal stand-in for the simulator's Process base class.

Matches the qname the ``node-isolation`` rule roots its subclass
search at (``repro.netsim.process.Process``). Never imported; scanned
by tests/lint/test_corpus.py.
"""


class Process:
    def __init__(self, node):
        self.node = node
        self.table = {}
        self.inbox = []
        self.clock = 0.0

    def send(self, address, port, payload):
        return (address, port, payload)
