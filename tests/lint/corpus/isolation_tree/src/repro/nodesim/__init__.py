"""Corpus package holding the node-isolation fixtures."""
