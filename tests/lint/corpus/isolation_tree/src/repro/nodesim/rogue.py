"""Corpus: every node-isolation violation shape, plus clean controls.

Never imported; scanned by tests/lint/test_corpus.py. Line numbers are
asserted — append, don't reorder.
"""

from repro.netsim.process import Process  # lint: disable=layering -- corpus tree sits outside the layer DAG
from repro.nodesim import registry
from repro.nodesim.registry import LIVE_NODES

_SEEN = set()


class Rogue(Process):
    def poke(self, peer: Process, value):
        peer.table["x"] = value          # line 16: foreign subscript store
        peer.clock = value               # line 17: foreign attribute store
        peer.inbox.append(value)         # line 18: foreign in-place mutation

    def enroll(self, name):
        LIVE_NODES[name] = self          # line 21: from-imported global
        registry.LIVE_NODES[name] = self  # line 22: module-attr global
        _SEEN.add(name)                  # line 23: own-module global

    # Compliant shapes must NOT be flagged:
    def ok(self, address, value):
        local = []
        local.append(value)
        self.table["x"] = value
        self.inbox.append(value)
        return self.send(address, 7, value)

    def ok_read(self, peer: Process):
        return peer.clock, len(LIVE_NODES)
