"""Corpus: module-level mutable state node methods reach into."""

LIVE_NODES = {}
