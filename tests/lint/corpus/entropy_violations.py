"""Corpus: every ambient-entropy pattern the rule must catch.

Never imported; scanned by tests/lint/test_corpus.py. Line numbers are
asserted — append, don't reorder.
"""

import os
import random
import secrets
import time
import uuid
import random as rnd
from datetime import datetime
from random import randint
from time import time as walltime

ROLL = random.randint(0, 5)          # line 17: global RNG
PICK = rnd.choice([1, 2])            # line 18: aliased module, global RNG
FROM = randint(0, 5)                 # line 19: from-import of global RNG
STAMP = time.time()                  # line 20: wall clock
STAMP_NS = time.time_ns()            # line 21: wall clock
ALIASED = walltime()                 # line 22: aliased wall clock
TODAY = datetime.now()               # line 23: wall clock via datetime
NONCE = os.urandom(8)                # line 24: OS entropy
IDENT = uuid.uuid4()                 # line 25: OS entropy
TOKEN = secrets.token_bytes(4)       # line 26: OS entropy

# Sanctioned constructions must NOT be flagged:
RNG = random.Random(7)
DRAW = RNG.random()
TICK = time.perf_counter()
