"""Shared helpers for the ``repro.lint`` test suite."""

import textwrap

import pytest

from repro.lint import Engine


@pytest.fixture
def lint():
    """Lint a source snippet under the strict profile.

    Returns the findings list; pass ``path=`` to simulate a location
    (e.g. ``src/repro/resolver/x.py`` to exercise the layering rule).
    """

    def _lint(source, path="snippet.py", **engine_kwargs):
        engine = Engine(**engine_kwargs)
        return engine.lint_text(textwrap.dedent(source), path=path)

    return _lint


@pytest.fixture
def rule_ids(lint):
    """Like ``lint`` but collapsed to the list of rule ids found."""

    def _rule_ids(source, path="snippet.py", **engine_kwargs):
        return [f.rule for f in lint(source, path=path, **engine_kwargs)]

    return _rule_ids
