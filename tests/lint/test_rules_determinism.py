"""Per-rule unit tests for the determinism rules.

Each rule has at least one failing and one passing case (several
migrated from the original ``tests/test_determinism_lint.py``
meta-tests, which this suite supersedes).
"""

import pytest


class TestAmbientEntropy:
    RULE = "no-ambient-entropy"

    def test_global_random_flagged(self, rule_ids):
        assert self.RULE in rule_ids(
            "import random\nx = random.randint(0, 5)\n"
        )

    def test_seeded_random_allowed(self, rule_ids):
        assert self.RULE not in rule_ids(
            "import random\nrng = random.Random(7)\nx = rng.random()\n"
        )

    def test_wall_clock_flagged(self, rule_ids):
        assert self.RULE in rule_ids("import time\nt = time.time()\n")
        assert self.RULE in rule_ids("import time\nt = time.time_ns()\n")

    def test_perf_counter_allowed(self, rule_ids):
        assert self.RULE not in rule_ids(
            "import time\nt = time.perf_counter()\n"
        )

    def test_from_import_flagged(self, rule_ids):
        assert self.RULE in rule_ids(
            "from random import randint\nx = randint(0, 5)\n"
        )
        assert self.RULE in rule_ids("from time import time\nt = time()\n")

    def test_aliased_module_flagged(self, rule_ids):
        assert self.RULE in rule_ids(
            "import random as rnd\nx = rnd.choice([1, 2])\n"
        )
        assert self.RULE in rule_ids(
            "from time import time as walltime\nt = walltime()\n"
        )

    def test_datetime_now_flagged(self, rule_ids):
        assert self.RULE in rule_ids(
            "from datetime import datetime\nt = datetime.now()\n"
        )
        assert self.RULE in rule_ids(
            "import datetime\nt = datetime.datetime.utcnow()\n"
        )

    def test_os_entropy_flagged(self, rule_ids):
        assert self.RULE in rule_ids("import os\nb = os.urandom(8)\n")
        assert self.RULE in rule_ids("import uuid\ni = uuid.uuid4()\n")
        assert self.RULE in rule_ids(
            "import secrets\nt = secrets.token_hex(4)\n"
        )

    def test_uuid5_is_deterministic_and_allowed(self, rule_ids):
        assert self.RULE not in rule_ids(
            "import uuid\ni = uuid.uuid5(uuid.NAMESPACE_DNS, 'x')\n"
        )

    def test_allow_wall_clock_option(self, lint):
        from repro.lint import create_rules

        rules = create_rules(
            select=["no-ambient-entropy"],
            rule_options={"no-ambient-entropy": {"allow_wall_clock": True}},
        )
        source = "import time\nimport random\n" \
                 "t = time.time()\nx = random.random()\n"
        findings = lint(source, rules=rules)
        messages = [f.message for f in findings]
        assert len(findings) == 1  # randomness still banned
        assert "RNG" in messages[0]

    def test_benchmarks_profile_allows_wall_clock(self, lint):
        source = "import time\nt = time.time()\n"
        assert lint(source, path="benchmarks/bench_x.py") == []
        assert lint(source, path="src/repro/netsim/x.py") != []


class TestUnsortedIteration:
    RULE = "no-unsorted-iteration"

    def test_for_over_set_literal_flagged(self, rule_ids):
        assert self.RULE in rule_ids(
            "for x in {1, 2, 3}:\n    print(x)\n"
        )

    def test_for_over_set_variable_flagged(self, rule_ids):
        assert self.RULE in rule_ids(
            "hosts = set()\nfor h in hosts:\n    print(h)\n"
        )

    def test_for_over_sorted_allowed(self, rule_ids):
        assert self.RULE not in rule_ids(
            "hosts = set()\nfor h in sorted(hosts):\n    print(h)\n"
        )

    def test_annotated_parameter_flagged(self, rule_ids):
        assert self.RULE in rule_ids(
            "from typing import Set\n"
            "def emit(pending: Set[str]):\n"
            "    for p in pending:\n"
            "        print(p)\n"
        )

    def test_annotated_attribute_flagged(self, rule_ids):
        assert self.RULE in rule_ids(
            "from typing import Set\n"
            "class Node:\n"
            "    def __init__(self):\n"
            "        self.records: Set[str] = set()\n"
            "    def walk(self):\n"
            "        return [r for r in self.records]\n"
        )

    def test_set_algebra_flagged(self, rule_ids):
        assert self.RULE in rule_ids(
            "a = set()\nb = a | {1}\nfor x in b:\n    print(x)\n"
        )

    def test_list_conversion_flagged(self, rule_ids):
        assert self.RULE in rule_ids("items = list({1, 2})\n")
        assert self.RULE in rule_ids(
            "names = set()\nline = ','.join(names)\n"
        )

    def test_order_insensitive_folds_allowed(self, rule_ids):
        source = (
            "hosts = {1, 2}\n"
            "n = len(hosts)\n"
            "s = sum(hosts)\n"
            "m = max(hosts)\n"
            "hit = 1 in hosts\n"
            "copy = set(hosts)\n"
            "upper = {h + 1 for h in hosts}\n"
        )
        assert self.RULE not in rule_ids(source)

    def test_plain_list_iteration_allowed(self, rule_ids):
        assert self.RULE not in rule_ids(
            "items = [1, 2]\nfor x in items:\n    print(x)\n"
        )

    def test_dict_views_only_with_option(self, lint):
        from repro.lint import create_rules

        source = "d = {}\nfor k in d.keys():\n    print(k)\n"
        assert self.RULE not in [f.rule for f in lint(source)]
        rules = create_rules(
            select=[self.RULE],
            rule_options={self.RULE: {"flag_dict_views": True}},
        )
        assert self.RULE in [f.rule for f in lint(source, rules=rules)]


class TestFloatTimeEq:
    RULE = "no-float-time-eq"

    def test_equality_on_now_flagged(self, rule_ids):
        assert self.RULE in rule_ids(
            "def f(sim, deadline):\n"
            "    return sim.now == deadline\n"
        )

    def test_inequality_allowed(self, rule_ids):
        assert self.RULE not in rule_ids(
            "def f(sim, deadline):\n"
            "    return sim.now <= deadline\n"
        )

    def test_not_equals_flagged(self, rule_ids):
        assert self.RULE in rule_ids(
            "def f(record, t):\n"
            "    return record.expires_at != t\n"
        )

    def test_tolerance_comparison_allowed(self, rule_ids):
        assert self.RULE not in rule_ids(
            "import math\n"
            "def f(sim, deadline):\n"
            "    return math.isclose(sim.now, deadline)\n"
        )
        assert self.RULE not in rule_ids(
            "def f(sim, deadline, approx):\n"
            "    return sim.now == approx(deadline)\n"
        )

    def test_infinity_sentinel_allowed(self, rule_ids):
        assert self.RULE not in rule_ids(
            "import math\n"
            "def f(record):\n"
            "    return record.expires_at == math.inf\n"
        )
        assert self.RULE not in rule_ids(
            "def f(record):\n"
            "    return record.expires_at == float('inf')\n"
        )

    def test_non_time_equality_allowed(self, rule_ids):
        assert self.RULE not in rule_ids(
            "def f(a, b):\n    return a.count == b.count\n"
        )

    def test_tests_profile_disables_rule(self, lint):
        source = "def f(sim):\n    assert sim.now == 2.5\n"
        assert lint(source, path="tests/netsim/test_x.py") == []
        assert lint(source, path="src/repro/netsim/x.py") != []
