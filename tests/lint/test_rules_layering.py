"""Per-rule unit tests for the layering (declared module DAG) rule."""

from repro.lint import SEVERITY_WARNING
from repro.lint.rules.layering import LAYER_DAG

RULE = "layering"


def _layering(lint, source, path):
    return [f for f in lint(source, path=path) if f.rule == RULE]


class TestLayering:
    def test_upward_absolute_import_flagged(self, lint):
        found = _layering(
            lint,
            "from repro.overlay import protocol\n",
            "src/repro/resolver/bad.py",
        )
        assert len(found) == 1
        assert "resolver may not import overlay" in found[0].message

    def test_upward_relative_import_flagged(self, lint):
        found = _layering(
            lint,
            "from ..client import api\n",
            "src/repro/nametree/bad.py",
        )
        assert len(found) == 1
        assert "nametree may not import client" in found[0].message

    def test_downward_import_allowed(self, lint):
        assert not _layering(
            lint,
            "from ..resolver.ports import INR_PORT\n"
            "from ..naming import AVPair\n"
            "from ..netsim import Node\n",
            "src/repro/overlay/good.py",
        )

    def test_same_layer_import_allowed(self, lint):
        assert not _layering(
            lint,
            "from .cache import PacketCache\nfrom . import config\n",
            "src/repro/resolver/good.py",
        )

    def test_package_root_import_flagged(self, lint):
        found = _layering(
            lint, "import repro\n", "src/repro/naming/bad.py"
        )
        assert len(found) == 1
        assert "package root" in found[0].message

    def test_undeclared_layer_is_warning(self, lint):
        found = _layering(
            lint,
            "from ..frontend import widgets\n",
            "src/repro/resolver/bad.py",
        )
        assert len(found) == 1
        assert found[0].severity == SEVERITY_WARNING

    def test_root_facade_modules_exempt(self, lint):
        assert not _layering(
            lint,
            "from .client import InsClient\nfrom .overlay import X\n",
            "src/repro/__init__.py",
        )

    def test_files_outside_repro_exempt(self, lint):
        assert not _layering(
            lint,
            "from repro.overlay import protocol\n"
            "from repro.naming import AVPair\n",
            "benchmarks/bench_x.py",
        )

    def test_relative_import_from_package_init(self, lint):
        # ``from .tree import X`` inside nametree/__init__.py stays in
        # the nametree layer; ``from ..naming`` reaches one layer down.
        assert not _layering(
            lint,
            "from .tree import NameTree\nfrom ..naming import AVPair\n",
            "src/repro/nametree/__init__.py",
        )

    def test_declared_dag_is_acyclic(self):
        seen = set()

        def visit(pkg, stack):
            assert pkg not in stack, f"cycle through {pkg}"
            if pkg in seen:
                return
            seen.add(pkg)
            for dep in LAYER_DAG[pkg]:
                visit(dep, stack | {pkg})

        for package in LAYER_DAG:
            visit(package, frozenset())

    def test_dag_matches_shipped_tree(self):
        # Every subpackage shipped under src/repro must be declared, so
        # a new layer cannot appear without a deliberate DAG entry.
        from pathlib import Path

        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        shipped = {
            child.name
            for child in src.iterdir()
            if child.is_dir() and (child / "__init__.py").exists()
        }
        assert shipped == set(LAYER_DAG)
