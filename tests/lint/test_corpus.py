"""Synthetic violation corpus: every rule fires at the asserted spot.

The corpus files under ``tests/lint/corpus/`` are never imported (the
directory is in the engine's default exclusions, so blanket scans skip
it); linting them with an explicit root exercises every rule end to
end, with exact rule ids, paths, and line numbers.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import Engine, SEVERITY_ERROR, SEVERITY_WARNING

CORPUS = Path(__file__).resolve().parent / "corpus"
REPO = Path(__file__).resolve().parents[2]

UPWARD = "layering_tree/src/repro/resolver/upward.py"
CLEAN = "layering_tree/src/repro/naming/clean.py"
TAINT_ONE_HOP = "taint_tree/src/repro/hostutil/stopwatch.py"
TAINT_TWO_HOP = "taint_tree/src/repro/dtncore/sched.py"
ROGUE = "isolation_tree/src/repro/nodesim/rogue.py"

#: (rule, path, line) for every finding the corpus must produce.
EXPECTED = {
    ("no-ambient-entropy", "entropy_violations.py", line)
    for line in range(17, 27)
} | {
    ("no-unsorted-iteration", "iteration_violations.py", line)
    for line in (11, 14, 15, 16, 20, 27)
} | {
    ("no-mutable-default", "hygiene_violations.py", line)
    for line in (8, 13, 17)
} | {
    ("no-silent-except", "hygiene_violations.py", line)
    for line in (24, 31)
} | {
    ("no-float-time-eq", "float_eq_violations.py", line)
    for line in (9, 11, 13)
} | {
    ("layering", UPWARD, line)
    for line in (7, 8, 9, 10, 11)
} | {
    ("entropy-taint", TAINT_ONE_HOP, 12),
    ("entropy-taint", TAINT_TWO_HOP, 13),
} | {
    ("node-isolation", ROGUE, line)
    for line in (16, 17, 18, 21, 22, 23)
} | {
    ("protocol-exhaustive", "protocol_tree/src/repro/message/wire.py", 16),
    ("protocol-exhaustive", "protocol_tree/src/repro/resolver/inr.py", 17),
}


@pytest.fixture(scope="module")
def corpus_result():
    # Rooting the engine at the corpus dir gives every file the strict
    # profile (the "tests" profile would disable no-float-time-eq).
    return Engine(root=CORPUS).run([CORPUS])


def test_every_expected_finding_and_nothing_else(corpus_result):
    actual = {(f.rule, f.path, f.line) for f in corpus_result.findings}
    assert actual == EXPECTED


def test_undeclared_layer_is_the_only_warning(corpus_result):
    warnings = [
        f for f in corpus_result.findings
        if f.severity == SEVERITY_WARNING
    ]
    assert [(f.rule, f.path, f.line) for f in warnings] == [
        ("layering", UPWARD, 11)
    ]
    for finding in corpus_result.findings:
        if (finding.rule, finding.path, finding.line) != (
            "layering", UPWARD, 11
        ):
            assert finding.severity == SEVERITY_ERROR


def test_clean_bottom_layer_module_has_no_findings(corpus_result):
    assert not [f for f in corpus_result.findings if f.path == CLEAN]
    # ... and it was actually scanned, not skipped by the walker.
    discovered = [
        p.resolve().relative_to(CORPUS).as_posix()
        for p in Engine(root=CORPUS).discover([CORPUS])
    ]
    assert CLEAN in discovered


def test_corpus_fails_the_build(corpus_result):
    assert corpus_result.exit_code == 1


def test_per_file_rule_provably_misses_the_two_hop_wrapper():
    """The acceptance case for ``entropy-taint``: the taint tree's
    wall-clock read is pragma-sanctioned at its source, so the per-file
    ``no-ambient-entropy`` rule reports *nothing* anywhere in the tree —
    while the call-graph rule pins both laundering call sites, including
    the two-hop wrapper in a different package."""
    tree = CORPUS / "taint_tree"
    per_file = Engine(root=CORPUS, select=["no-ambient-entropy"]).run([tree])
    assert [
        f for f in per_file.findings if f.rule == "no-ambient-entropy"
    ] == []
    taint = Engine(root=CORPUS, select=["entropy-taint"]).run([tree])
    flagged = {
        (f.path, f.line)
        for f in taint.findings if f.rule == "entropy-taint"
    }
    assert flagged == {(TAINT_ONE_HOP, 12), (TAINT_TWO_HOP, 13)}
    for finding in taint.findings:
        if finding.rule == "entropy-taint":
            assert "wall-clock" in finding.message


def test_taint_chain_names_the_laundering_path(corpus_result):
    (two_hop,) = [
        f for f in corpus_result.findings
        if f.rule == "entropy-taint" and f.path == TAINT_TWO_HOP
    ]
    for step in ("elapsed_since", "wall_seconds", "time.time()"):
        assert step in two_hop.message


def test_cli_reports_corpus_with_nonzero_exit():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.lint",
            "--root", str(CORPUS), "--format", "json", str(CORPUS),
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO),
    )
    assert proc.returncode == 1, proc.stderr
    report = json.loads(proc.stdout)
    assert report["summary"]["errors"] == len(EXPECTED) - 1  # one warning
    reported = {(f["rule"], f["path"], f["line"]) for f in report["findings"]}
    assert reported == EXPECTED
