"""Tier-1 blanket scan: the shipped tree passes its own lint.

This replaces the old ``tests/test_determinism_lint.py`` ad-hoc AST
scan. The whole rule pack runs over src, tests, benchmarks, and
examples with the per-directory profiles and the checked-in baseline —
the same configuration ``python -m repro.lint`` uses, so pytest and CI
cannot drift apart.
"""

from pathlib import Path

from repro.lint import Baseline, DEFAULT_PROFILES, Engine, render_text
from repro.lint.baseline import DEFAULT_BASELINE_NAME
from repro.lint.cli import DEFAULT_PATHS

REPO = Path(__file__).resolve().parents[2]


def _run():
    baseline = Baseline.load(REPO / DEFAULT_BASELINE_NAME)
    engine = Engine(profiles=DEFAULT_PROFILES, baseline=baseline, root=REPO)
    roots = [REPO / name for name in DEFAULT_PATHS if (REPO / name).is_dir()]
    return engine.run(roots)


def test_shipped_tree_is_lint_clean():
    result = _run()
    assert result.errors == [], "\n" + render_text(result)
    assert result.warnings == [], "\n" + render_text(result)


def test_baseline_has_no_stale_entries():
    result = _run()
    assert result.stale_baseline == [], [
        entry.to_dict() for entry in result.stale_baseline
    ]


def test_blanket_scan_actually_covers_the_tree():
    result = _run()
    # The repo ships ~200 Python files; a collapsing count means the
    # walker or the profile wiring broke, not that the tree shrank.
    assert result.files_scanned > 150
