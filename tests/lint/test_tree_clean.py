"""Tier-1 blanket scan: the shipped tree passes its own lint.

This replaces the old ``tests/test_determinism_lint.py`` ad-hoc AST
scan. The whole rule pack — per-file *and* project rules — runs over
src, tests, benchmarks, and examples with the per-directory profiles
and the checked-in baseline: the same configuration
``python -m repro.lint`` uses, so pytest and CI cannot drift apart.
"""

import pytest

from pathlib import Path

from repro.lint import Baseline, DEFAULT_PROFILES, Engine, render_text
from repro.lint.baseline import DEFAULT_BASELINE_NAME
from repro.lint.cli import DEFAULT_PATHS

REPO = Path(__file__).resolve().parents[2]


def _run():
    baseline = Baseline.load(REPO / DEFAULT_BASELINE_NAME)
    engine = Engine(profiles=DEFAULT_PROFILES, baseline=baseline, root=REPO)
    roots = [REPO / name for name in DEFAULT_PATHS if (REPO / name).is_dir()]
    return engine.run(roots)


@pytest.fixture(scope="module")
def tree_result():
    return _run()


def test_shipped_tree_is_lint_clean(tree_result):
    assert tree_result.errors == [], "\n" + render_text(tree_result)
    assert tree_result.warnings == [], "\n" + render_text(tree_result)


def test_baseline_has_no_stale_entries(tree_result):
    assert tree_result.stale_baseline == [], [
        entry.to_dict() for entry in tree_result.stale_baseline
    ]


def test_blanket_scan_actually_covers_the_tree(tree_result):
    # The repo ships ~200 Python files; a collapsing count means the
    # walker or the profile wiring broke, not that the tree shrank.
    assert tree_result.files_scanned > 150


def test_project_rules_ran_in_the_blanket_scan(tree_result):
    # Pass 2 must actually have executed — a clean tree proves nothing
    # if the whole-program rules were silently skipped.
    assert set(tree_result.project_rules) >= {
        "entropy-taint", "node-isolation", "protocol-exhaustive"
    }


def test_rescan_is_served_from_the_parse_cache(tree_result):
    # A second scan of the unchanged tree must not re-parse anything,
    # and the cached contexts must reproduce the same (clean) verdict.
    again = _run()
    assert again.cache_hits == again.files_scanned
    assert again.cache_misses == 0
    assert again.errors == [] and again.warnings == []
