"""Rule-level tests for protocol-exhaustive over synthetic trees.

The fixtures reuse the rule's default qnames (``repro.message``,
``repro.resolver.inr.INR.handle_message``, ``repro.resolver.inr.
InrStats``) so no option overrides are needed — mirroring how the rule
runs against the real tree.
"""

import textwrap

import pytest

from repro.lint import Engine


def run_tree(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return Engine(root=tmp_path, select=["protocol-exhaustive"]).run(
        [tmp_path]
    )


def findings(result):
    return [f for f in result.findings if f.rule == "protocol-exhaustive"]


WIRE = {
    "src/repro/message/__init__.py": """
        from .wire import Handled, Header, Orphan

        __all__ = ["Handled", "Header", "Orphan"]
    """,
    "src/repro/message/wire.py": """
        class Handled:
            pass


        class Header:
            pass


        class Orphan:
            pass
    """,
}

DISPATCH = {
    "src/repro/resolver/inr.py": """
        from repro.message import Handled

        DROP_PREFIX = "drop:"


        class InrStats:
            drops_no_route: int = 0


        class INR:
            def handle_message(self, payload, sender):
                if isinstance(payload, Handled):
                    return payload
                self._drop("no-route")

            def _drop(self, cause):
                return DROP_PREFIX + cause
    """,
}


class TestDispatchSurface:
    def test_undispatched_export_flagged_at_class_def(self, tmp_path):
        result = run_tree(tmp_path, {**WIRE, **DISPATCH})
        flagged = findings(result)
        assert [(f.path, f.line) for f in flagged] == [
            ("src/repro/message/wire.py", 10)
        ]
        assert "Orphan" in flagged[0].message
        assert "no isinstance dispatch arm" in flagged[0].message
        # Handled is dispatched; Header is non_payload wire format.
        assert all("Handled" not in f.message for f in flagged)

    def test_tuple_isinstance_and_helper_reachability(self, tmp_path):
        files = dict(WIRE)
        files["src/repro/resolver/inr.py"] = """
            from repro.message import Handled, Orphan


            class INR:
                def handle_message(self, payload, sender):
                    return self._late(payload)

                def _late(self, payload):
                    if isinstance(payload, (Handled, Orphan)):
                        return payload
        """
        assert findings(run_tree(tmp_path, files)) == []

    def test_unreachable_arm_does_not_count(self, tmp_path):
        files = dict(WIRE)
        files["src/repro/resolver/inr.py"] = """
            from repro.message import Handled, Orphan


            class INR:
                def handle_message(self, payload, sender):
                    if isinstance(payload, Handled):
                        return payload

                def never_called(self, payload):
                    if isinstance(payload, Orphan):
                        return payload
        """
        flagged = findings(run_tree(tmp_path, files))
        assert [f.line for f in flagged] == [10]
        assert "Orphan" in flagged[0].message

    def test_silent_without_message_package_or_dispatcher(self, tmp_path):
        # Only the dispatcher: no export surface to check.
        assert findings(run_tree(tmp_path / "a", dict(DISPATCH))) == []
        # Only the messages: no dispatcher in scope — stay quiet
        # rather than flagging every export of a half-scanned tree.
        assert findings(run_tree(tmp_path / "b", dict(WIRE))) == []


class TestDropSurface:
    def test_counter_without_emission_flagged(self, tmp_path):
        files = dict(WIRE)
        files["src/repro/resolver/inr.py"] = """
            from repro.message import Handled, Orphan

            DROP_PREFIX = "drop:"


            class InrStats:
                drops_no_route: int = 0
                drops_ghost: int = 0


            class INR:
                def handle_message(self, payload, sender):
                    if isinstance(payload, (Handled, Orphan)):
                        return payload
                    return DROP_PREFIX + "no-route"
        """
        flagged = findings(run_tree(tmp_path, files))
        assert [(f.path, f.line) for f in flagged] == [
            ("src/repro/resolver/inr.py", 9)
        ]
        assert "drops_ghost" in flagged[0].message
        assert "'drop:ghost'" in flagged[0].message

    def test_literal_status_in_another_module_counts(self, tmp_path):
        files = dict(WIRE)
        files["src/repro/resolver/inr.py"] = """
            from repro.message import Handled, Orphan


            class InrStats:
                drops_ghost: int = 0


            class INR:
                def handle_message(self, payload, sender):
                    if isinstance(payload, (Handled, Orphan)):
                        return payload
        """
        files["src/repro/obs_helper.py"] = """
            def status():
                return "drop:ghost"
        """
        assert findings(run_tree(tmp_path, files)) == []

    def test_doc_surface_flags_only_unmentioned_causes(self, tmp_path):
        files = dict(WIRE)
        files["src/repro/resolver/inr.py"] = """
            from repro.message import Handled, Orphan

            DROP_PREFIX = "drop:"


            class InrStats:
                drops_no_route: int = 0
                drops_ghost: int = 0


            class INR:
                def handle_message(self, payload, sender):
                    if isinstance(payload, (Handled, Orphan)):
                        return payload
                    return DROP_PREFIX + "no-route", DROP_PREFIX + "ghost"
        """
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "PROTOCOL.md").write_text(
            "Packets die with `drop:no-route` when no route exists.\n"
        )
        flagged = findings(run_tree(tmp_path, files))
        assert [(f.path, f.line) for f in flagged] == [
            ("src/repro/resolver/inr.py", 9)
        ]
        assert "docs/PROTOCOL.md" in flagged[0].message
        assert "'ghost'" in flagged[0].message

    def test_absent_doc_skips_the_doc_surface(self, tmp_path):
        # Same tree as above but no docs/PROTOCOL.md: the span surface
        # is satisfied, so nothing at all is flagged.
        files = dict(WIRE)
        files["src/repro/resolver/inr.py"] = """
            from repro.message import Handled, Orphan

            DROP_PREFIX = "drop:"


            class InrStats:
                drops_ghost: int = 0


            class INR:
                def handle_message(self, payload, sender):
                    if isinstance(payload, (Handled, Orphan)):
                        return payload
                    return DROP_PREFIX + "ghost"
        """
        assert findings(run_tree(tmp_path, files)) == []
