"""Tests for the Service class: advertising, metrics, renaming."""

import pytest

from repro.experiments import InsDomain
from repro.naming import WildcardValueError

from ..conftest import parse


class TestAdvertising:
    def test_advertises_on_attach(self):
        domain = InsDomain(seed=60)
        inr = domain.add_inr()
        service = domain.add_service("[service=x[id=1]]", resolver=inr)
        domain.run(0.5)
        assert inr.name_count() == 1
        assert service.advertisements_sent == 1

    def test_periodic_refreshes(self):
        domain = InsDomain(seed=61)
        inr = domain.add_inr()
        service = domain.add_service("[service=x[id=1]]", resolver=inr,
                                     refresh_interval=2.0)
        domain.run(10.5)
        assert service.advertisements_sent >= 5

    def test_wildcard_name_rejected_at_construction(self):
        domain = InsDomain(seed=62)
        inr = domain.add_inr()
        with pytest.raises(WildcardValueError):
            domain.add_service("[service=*]", resolver=inr)

    def test_announcer_id_is_stable_across_refreshes(self):
        domain = InsDomain(seed=63)
        inr = domain.add_inr()
        service = domain.add_service("[service=x[id=1]]", resolver=inr,
                                     refresh_interval=1.0)
        domain.run(5.0)
        assert inr.name_count() == 1  # refreshes, not duplicates

    def test_two_instances_on_one_node_coexist(self):
        """AnnouncerIDs differentiate same-node announcers (Section 2.2)."""
        domain = InsDomain(seed=64)
        inr = domain.add_inr()
        domain.add_service("[service=x[id=a]]", address="shared-host",
                           resolver=inr)
        domain.add_service("[service=x[id=b]]", address="shared-host",
                           resolver=inr)
        domain.run(1.0)
        assert inr.name_count() == 2


class TestMetrics:
    def test_set_metric_announces_immediately(self):
        domain = InsDomain(seed=65)
        inr = domain.add_inr()
        service = domain.add_service("[service=x[id=1]]", resolver=inr,
                                     metric=5.0)
        domain.run(0.5)
        service.set_metric(1.25)
        domain.run(0.5)
        record = next(iter(inr.trees["default"].lookup(parse("[service=x]"))))
        assert record.anycast_metric == 1.25

    def test_set_metric_can_defer(self):
        domain = InsDomain(seed=66)
        inr = domain.add_inr()
        service = domain.add_service("[service=x[id=1]]", resolver=inr,
                                     metric=5.0, refresh_interval=4.0)
        domain.run(0.5)
        service.set_metric(1.25, announce_now=False)
        domain.run(0.5)
        record = next(iter(inr.trees["default"].lookup(parse("[service=x]"))))
        assert record.anycast_metric == 5.0  # old value until next refresh
        domain.run(5.0)
        assert record.anycast_metric == 1.25


class TestRename:
    def test_rename_announces_new_name(self):
        domain = InsDomain(seed=67)
        inr = domain.add_inr()
        service = domain.add_service("[service=x[id=1]][room=510]", resolver=inr)
        domain.run(0.5)
        service.rename(parse("[service=x[id=1]][room=520]"))
        domain.run(0.5)
        tree = inr.trees["default"]
        assert not tree.lookup(parse("[room=510]"))
        assert len(tree.lookup(parse("[room=520]"))) == 1

    def test_rename_rejects_wildcards(self):
        domain = InsDomain(seed=68)
        inr = domain.add_inr()
        service = domain.add_service("[service=x[id=1]]", resolver=inr)
        with pytest.raises(WildcardValueError):
            service.rename(parse("[service=*]"))


class TestReply:
    def test_reply_to_inverts_names(self):
        domain = InsDomain(seed=69)
        inr = domain.add_inr()
        server = domain.add_service("[service=server[id=s]]", resolver=inr)
        caller = domain.add_service("[service=caller[id=c]]", resolver=inr)
        received = []
        caller.on_message(lambda m, s: received.append(m))
        server.on_message(lambda m, s: server.reply_to(m, b"pong"))
        domain.run(1.0)
        caller.send_anycast(parse("[service=server]"), b"ping",
                            source=caller.name)
        domain.run(1.0)
        assert [m.data for m in received] == [b"pong"]
        assert received[0].destination == caller.name

    def test_reply_to_anonymous_request_is_dropped(self):
        domain = InsDomain(seed=70)
        inr = domain.add_inr()
        server = domain.add_service("[service=server[id=s]]", resolver=inr)
        server.on_message(lambda m, s: server.reply_to(m, b"pong"))
        client = domain.add_client(resolver=inr)
        domain.run(1.0)
        client.send_anycast(parse("[service=server]"), b"ping")  # no source
        domain.run(1.0)  # must not raise or loop
