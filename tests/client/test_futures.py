"""Tests for the Reply future."""

import pytest

from repro.client import DeadlineExceeded, Reply, RequestError, RequestTimeout


class TestReply:
    def test_unresolved_value_raises(self):
        reply = Reply()
        assert not reply.done
        with pytest.raises(RuntimeError):
            reply.value

    def test_value_or_default(self):
        reply = Reply()
        assert reply.value_or("fallback") == "fallback"
        reply.resolve(42)
        assert reply.value_or("fallback") == 42

    def test_resolve_delivers(self):
        reply = Reply()
        reply.resolve("result")
        assert reply.done
        assert reply.value == "result"

    def test_resolution_is_single_assignment(self):
        """Duplicate datagrams must not overwrite the first answer."""
        reply = Reply()
        reply.resolve("first")
        reply.resolve("second")
        assert reply.value == "first"

    def test_callbacks_run_on_resolution(self):
        reply = Reply()
        seen = []
        reply.then(seen.append)
        reply.then(seen.append)
        reply.resolve("x")
        assert seen == ["x", "x"]

    def test_late_callback_runs_immediately(self):
        reply = Reply()
        reply.resolve("x")
        seen = []
        reply.then(seen.append)
        assert seen == ["x"]

    def test_callbacks_fire_once(self):
        reply = Reply()
        seen = []
        reply.then(seen.append)
        reply.resolve(1)
        reply.resolve(2)
        assert seen == [1]

    def test_then_chains(self):
        reply = Reply()
        assert reply.then(lambda v: None) is reply


class TestReplyFailure:
    def test_fail_settles_without_success(self):
        reply = Reply()
        error = RequestTimeout("gone")
        reply.fail(error)
        assert reply.failed
        assert reply.settled
        assert not reply.done
        assert reply.error is error

    def test_value_raises_the_stored_error(self):
        reply = Reply()
        reply.fail(DeadlineExceeded("too late"))
        with pytest.raises(DeadlineExceeded):
            reply.value

    def test_value_or_default_when_failed(self):
        reply = Reply()
        reply.fail(RequestTimeout("gone"))
        assert reply.value_or("fallback") == "fallback"

    def test_on_error_fires_exactly_once(self):
        reply = Reply()
        seen = []
        reply.on_error(seen.append)
        reply.fail(RequestTimeout("first"))
        reply.fail(RequestTimeout("second"))
        assert len(seen) == 1
        assert str(seen[0]) == "first"

    def test_on_error_after_failure_fires_immediately(self):
        reply = Reply()
        reply.fail(RequestTimeout("gone"))
        seen = []
        reply.on_error(seen.append)
        assert len(seen) == 1

    def test_late_duplicate_response_after_failure_is_ignored(self):
        """A response straggling in after the client gave up must not
        reanimate the request."""
        reply = Reply()
        successes = []
        reply.then(successes.append)
        reply.fail(RequestTimeout("gone"))
        reply.resolve("stale answer")
        assert not reply.done
        assert reply.failed
        assert successes == []
        with pytest.raises(RequestError):
            reply.value

    def test_fail_after_resolution_is_ignored(self):
        reply = Reply()
        errors = []
        reply.on_error(errors.append)
        reply.resolve("answer")
        reply.fail(RequestTimeout("straggler timeout"))
        assert reply.done
        assert not reply.failed
        assert reply.value == "answer"
        assert errors == []

    def test_then_after_failure_never_fires(self):
        reply = Reply()
        reply.fail(RequestTimeout("gone"))
        seen = []
        reply.then(seen.append)
        reply.resolve("x")
        assert seen == []

    def test_deadline_defaults_to_none(self):
        assert Reply().deadline is None
