"""Tests for the Reply future."""

import pytest

from repro.client import Reply


class TestReply:
    def test_unresolved_value_raises(self):
        reply = Reply()
        assert not reply.done
        with pytest.raises(RuntimeError):
            reply.value

    def test_value_or_default(self):
        reply = Reply()
        assert reply.value_or("fallback") == "fallback"
        reply.resolve(42)
        assert reply.value_or("fallback") == 42

    def test_resolve_delivers(self):
        reply = Reply()
        reply.resolve("result")
        assert reply.done
        assert reply.value == "result"

    def test_resolution_is_single_assignment(self):
        """Duplicate datagrams must not overwrite the first answer."""
        reply = Reply()
        reply.resolve("first")
        reply.resolve("second")
        assert reply.value == "first"

    def test_callbacks_run_on_resolution(self):
        reply = Reply()
        seen = []
        reply.then(seen.append)
        reply.then(seen.append)
        reply.resolve("x")
        assert seen == ["x", "x"]

    def test_late_callback_runs_immediately(self):
        reply = Reply()
        reply.resolve("x")
        seen = []
        reply.then(seen.append)
        assert seen == ["x"]

    def test_callbacks_fire_once(self):
        reply = Reply()
        seen = []
        reply.then(seen.append)
        reply.resolve(1)
        reply.resolve(2)
        assert seen == [1]

    def test_then_chains(self):
        reply = Reply()
        assert reply.then(lambda v: None) is reply
