"""Tests for mobility: node movement and continued communication."""

import pytest

from repro.client import MobilityManager
from repro.experiments import InsDomain
from repro.resolver import InrConfig

from ..conftest import parse


@pytest.fixture
def mobile_setup():
    domain = InsDomain(
        seed=80, config=InrConfig(refresh_interval=3.0, record_lifetime=9.0)
    )
    inr = domain.add_inr()
    service = domain.add_service("[service=cam[id=m]]", resolver=inr,
                                 refresh_interval=3.0, lifetime=9.0)
    client = domain.add_client(resolver=inr)
    inbox = []
    service.on_message(lambda m, s: inbox.append(m.data))
    domain.run(1.0)
    return domain, inr, service, client, inbox


class TestNodeMobility:
    def test_migrate_changes_address(self, mobile_setup):
        domain, inr, service, client, inbox = mobile_setup
        manager = MobilityManager(service.node)
        old = service.address
        manager.migrate("roaming-1")
        assert service.address == "roaming-1"
        assert manager.moves == 1
        assert not domain.network.has_node(old)

    def test_migrate_to_same_address_is_noop(self, mobile_setup):
        domain, inr, service, client, inbox = mobile_setup
        manager = MobilityManager(service.node)
        manager.migrate(service.address)
        assert manager.moves == 0

    def test_service_reachable_after_move(self, mobile_setup):
        """The immediate re-advertisement updates the name-to-location
        mapping; anycast continues without client involvement."""
        domain, inr, service, client, inbox = mobile_setup
        MobilityManager(service.node).migrate("roaming-1")
        domain.run(1.0)
        client.send_anycast(parse("[service=cam]"), b"after-move")
        domain.run(1.0)
        assert inbox == [b"after-move"]

    def test_early_binding_reflects_new_address(self, mobile_setup):
        domain, inr, service, client, inbox = mobile_setup
        MobilityManager(service.node).migrate("roaming-2")
        domain.run(1.0)
        reply = client.resolve_early(parse("[service=cam]"))
        domain.run(1.0)
        [(endpoint, _metric)] = reply.value
        assert endpoint.host == "roaming-2"

    def test_repeated_moves(self, mobile_setup):
        domain, inr, service, client, inbox = mobile_setup
        manager = MobilityManager(service.node)
        for hop in range(3):
            manager.migrate(f"roam-{hop}")
            domain.run(1.0)
            client.send_anycast(parse("[service=cam]"), f"m{hop}".encode())
            domain.run(1.0)
        assert inbox == [b"m0", b"m1", b"m2"]

    def test_stale_address_expires_without_move_notifications(self):
        """Even with NO immediate re-advertisement the periodic refresh
        replaces the stale endpoint within one refresh interval."""
        domain = InsDomain(
            seed=81, config=InrConfig(refresh_interval=3.0, record_lifetime=9.0)
        )
        inr = domain.add_inr()
        service = domain.add_service("[service=cam[id=m]]", resolver=inr,
                                     refresh_interval=3.0, lifetime=9.0)
        domain.run(1.0)
        # move without notifying (simulates a missed movement detection)
        domain.network.rename_node(service.address, "silent-move")
        domain.run(4.0)  # one refresh cycle passes
        record = next(iter(inr.trees["default"].lookup(parse("[service=cam]"))))
        assert record.endpoints[0].host == "silent-move"
