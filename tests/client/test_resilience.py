"""Tests for the client request-resilience layer.

Retry/backoff under deterministic netsim packet loss, failure of every
attempt, deadlines, failover away from a silent resolver, pushback
handling, and the two attachment-machinery fixes (ping-token purge,
reselect restore).
"""

import pytest

from repro.client import (
    DeadlineExceeded,
    RequestTimeout,
    RetryPolicy,
    Reply,
)
from repro.experiments import InsDomain
from repro.resolver.protocol import Pushback

from ..conftest import parse

NAME = parse("[service=printer]")

FAST = RetryPolicy(
    request_timeout=0.3,
    backoff_factor=2.0,
    backoff_max=1.0,
    max_attempts=3,
    deadline=5.0,
    failover_threshold=3,
)


def printer_domain(seed, retry_policy=FAST, n_inrs=1):
    domain = InsDomain(seed=seed)
    inrs = [domain.add_inr() for _ in range(n_inrs)]
    domain.add_service(NAME, resolver=inrs[0])
    client = domain.add_client(resolver=inrs[0], retry_policy=retry_policy)
    domain.run(1.0)
    return domain, inrs, client


class TestRetry:
    def test_lossless_request_uses_one_attempt(self):
        domain, _inrs, client = printer_domain(seed=700)
        reply = client.resolve_early(NAME)
        domain.run(1.0)
        assert reply.done
        assert client.stats.attempts_sent == 1
        assert client.stats.retries == 0

    def test_retries_through_packet_loss(self):
        """On a very lossy link the request eventually lands anyway —
        the whole point of retransmission."""
        domain, inrs, client = printer_domain(
            seed=701,
            retry_policy=RetryPolicy(
                request_timeout=0.3, backoff_max=1.0, max_attempts=6,
                deadline=6.0, failover_threshold=1000,
            ),
        )
        domain.network.configure_link(client.address, inrs[0].address,
                                      loss_rate=0.4)
        succeeded = 0
        retried = 0
        for _ in range(10):
            reply = client.resolve_early(NAME)
            domain.run(6.0)
            if reply.done:
                succeeded += 1
        retried = client.stats.retries
        assert succeeded >= 8
        assert retried > 0
        assert client.pending_requests == 0

    def test_retry_is_deterministic(self):
        """Same seed, same loss pattern, same retry counts."""
        outcomes = []
        for _ in range(2):
            domain, inrs, client = printer_domain(seed=702)
            domain.network.configure_link(client.address, inrs[0].address,
                                          loss_rate=0.5)
            replies = [client.resolve_early(NAME) for _ in range(5)]
            domain.run(10.0)
            outcomes.append(
                (tuple(r.done for r in replies),
                 client.stats.attempts_sent, client.stats.retries)
            )
        assert outcomes[0] == outcomes[1]

    def test_all_attempts_lost_fails_with_timeout(self):
        domain, inrs, client = printer_domain(seed=703)
        domain.network.link(client.address, inrs[0].address).up = False
        errors = []
        reply = client.resolve_early(NAME)
        reply.on_error(errors.append)
        domain.run(10.0)
        assert reply.failed
        assert isinstance(reply.error, RequestTimeout)
        assert len(errors) == 1
        assert client.stats.requests_failed == 1
        assert client.stats.attempts_sent == FAST.max_attempts
        assert client.pending_requests == 0

    def test_deadline_caps_the_whole_request(self):
        """With attempts to spare, the deadline still wins."""
        policy = RetryPolicy(request_timeout=0.4, backoff_max=0.4,
                             max_attempts=100, deadline=2.0)
        domain, inrs, client = printer_domain(seed=704, retry_policy=policy)
        domain.network.link(client.address, inrs[0].address).up = False
        reply = client.resolve_early(NAME)
        issued = domain.now
        domain.run(10.0)
        assert reply.failed
        assert isinstance(reply.error, DeadlineExceeded)
        assert client.stats.deadline_exceeded == 1
        assert reply.deadline == pytest.approx(issued + policy.deadline)

    def test_disabled_policy_is_fire_and_forget(self):
        domain, inrs, client = printer_domain(
            seed=705, retry_policy=RetryPolicy.disabled()
        )
        domain.network.link(client.address, inrs[0].address).up = False
        reply = client.resolve_early(NAME)
        domain.run(20.0)
        assert not reply.settled  # hangs forever: the pre-resilience mode
        assert client.stats.attempts_sent == 1


class TestFailover:
    def test_consecutive_timeouts_fail_over_to_another_inr(self):
        """A silently crashed resolver is abandoned: the client
        reattaches through the DSR, excluding the suspect, and later
        requests succeed at the new resolver."""
        domain = InsDomain(seed=710)
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        domain.add_service(NAME, resolver=a)
        client = domain.add_client(
            resolver=b,
            retry_policy=RetryPolicy(
                request_timeout=0.3, backoff_max=1.0, max_attempts=8,
                deadline=8.0, failover_threshold=2,
            ),
        )
        domain.run(3.0)  # let the advertisement propagate a->b

        domain.crash_inr(b)
        reply = client.resolve_early(NAME)
        domain.run(10.0)
        assert client.stats.failovers >= 1
        assert client.resolver == "inr-a"
        # The in-flight request survived the failover via re-attempts.
        assert reply.done
        late = client.resolve_early(NAME)
        domain.run(2.0)
        assert late.done

    def test_pushback_defers_retry_without_counting_failure(self):
        domain, inrs, client = printer_domain(seed=711)
        reply = client.resolve_early(NAME)
        pending_id = next(iter(client._pending))
        client._consecutive_failures = 2
        client.handle_message(
            Pushback(request_id=pending_id, responder=inrs[0].address,
                     retry_after=0.8),
            inrs[0].address,
        )
        assert client.stats.pushbacks_received == 1
        assert client._consecutive_failures == 0
        assert not reply.settled
        domain.run(3.0)  # the deferred re-attempt still completes it
        assert reply.done

    def test_resolve_best_propagates_failure(self):
        domain, inrs, client = printer_domain(seed=712)
        domain.network.link(client.address, inrs[0].address).up = False
        reply = client.resolve_best(NAME)
        domain.run(10.0)
        assert reply.failed
        assert isinstance(reply.error, RequestTimeout)


class TestAttachmentFixes:
    def test_ping_tokens_purged_when_selection_round_completes(self):
        """Unanswered INR-pings must not pin table entries forever
        (the unbounded _ping_sent growth bug)."""
        domain = InsDomain(seed=720)
        domain.add_inr(address="inr-live")
        dead = domain.add_inr(address="inr-dead")
        dead.crash()
        client = domain.add_client()
        domain.run(3.0)
        assert client.attached.done
        assert client.resolver == "inr-live"
        # The dead INR's ping went unanswered; the round still closed
        # and dropped its token.
        assert len(client._ping_sent) == 0

    def test_reselect_timeout_restores_previous_attachment(self):
        """A reselection round that dies on a lost datagram must not
        leave the client detached while its old resolver still works."""
        domain = InsDomain(seed=721)
        inr = domain.add_inr()
        client = domain.add_client(reselect_interval=5.0, retry_policy=FAST)
        domain.run(2.0)
        assert client.resolver == inr.address
        previous_attached = client.attached
        # Cut the client off from the DSR: the next reselect's list
        # request can never be answered.
        domain.network.link(client.address, "dsr-host").up = False
        domain.run(10.0)
        assert client.attached.done
        assert client.resolver == inr.address
        assert client.attached is previous_attached
        # And the restored attachment still serves requests.
        domain.add_service(NAME, resolver=inr)
        domain.run(1.0)
        reply = client.resolve_early(NAME)
        domain.run(2.0)
        assert reply.done
