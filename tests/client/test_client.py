"""Tests for the client API: attachment, queries, sends."""

import pytest

from repro.experiments import InsDomain
from repro.naming import NameSpecifier
from repro.netsim import Network, Simulator
from repro.client import InsClient

from ..conftest import parse


class TestConstruction:
    def test_requires_resolver_or_dsr(self):
        sim = Simulator()
        network = Network(sim)
        node = network.add_node("host")
        with pytest.raises(ValueError):
            InsClient(node, 7000)


class TestAttachment:
    def test_explicit_resolver_attaches_immediately(self):
        domain = InsDomain(seed=50)
        inr = domain.add_inr()
        client = domain.add_client(resolver=inr)
        assert client.attached.done
        assert client.resolver == inr.address

    def test_dsr_attachment_picks_nearest_inr(self):
        domain = InsDomain(seed=51)
        far = domain.add_inr(address="inr-far")
        near = domain.add_inr(address="inr-near")
        domain.network.configure_link("client-host", "inr-far", latency=0.05)
        domain.network.configure_link("client-host", "inr-near", latency=0.001)
        client = domain.add_client(address="client-host")
        domain.run(2.0)
        assert client.resolver == "inr-near"

    def test_attachment_waits_for_first_inr(self):
        """A client started before any INR keeps retrying."""
        domain = InsDomain(seed=52)
        client = domain.add_client(address="early-bird")
        domain.run(3.0)
        assert not client.attached.done
        domain.add_inr()
        domain.run(3.0)
        assert client.attached.done

    def test_reattach_after_resolver_death(self):
        domain = InsDomain(seed=53)
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        client = domain.add_client(resolver=b)
        b.crash()
        client.reattach()
        domain.run(2.0)
        assert client.resolver == "inr-a"

    def test_periodic_reselection_tracks_new_inrs(self):
        domain = InsDomain(seed=54)
        far = domain.add_inr(address="inr-far")
        domain.network.configure_link("client-host", "inr-far", latency=0.05)
        client = domain.add_client(address="client-host",
                                   reselect_interval=5.0)
        domain.run(2.0)
        assert client.resolver == "inr-far"
        domain.network.configure_link("client-host", "inr-near", latency=0.001)
        domain.add_inr(address="inr-near")
        domain.run(10.0)
        assert client.resolver == "inr-near"


class TestOperationsRequireAttachment:
    def test_unattached_operations_raise(self):
        domain = InsDomain(seed=55)
        client = domain.add_client()  # no INR exists yet
        with pytest.raises(RuntimeError):
            client.resolve_early(parse("[a=b]"))
        with pytest.raises(RuntimeError):
            client.send_anycast(parse("[a=b]"), b"")


class TestMessaging:
    @pytest.fixture
    def wired(self):
        domain = InsDomain(seed=56)
        inr = domain.add_inr()
        service = domain.add_service("[service=echo[id=1]]", resolver=inr)
        client = domain.add_client(resolver=inr)
        inbox = []
        service.on_message(lambda m, s: inbox.append(m))
        domain.run(1.0)
        return domain, client, service, inbox

    def test_anycast_reaches_service(self, wired):
        domain, client, service, inbox = wired
        client.send_anycast(parse("[service=echo]"), b"hi")
        domain.run(1.0)
        assert [m.data for m in inbox] == [b"hi"]

    def test_multicast_flag_set(self, wired):
        from repro.message import Delivery

        domain, client, service, inbox = wired
        client.send_multicast(parse("[service=echo]"), b"hi")
        domain.run(1.0)
        assert inbox[0].delivery is Delivery.MULTICAST

    def test_source_name_defaults_to_empty(self, wired):
        domain, client, service, inbox = wired
        client.send_anycast(parse("[service=echo]"), b"hi")
        domain.run(1.0)
        assert inbox[0].source.is_empty

    def test_messages_without_handler_are_discarded(self):
        domain = InsDomain(seed=57)
        inr = domain.add_inr()
        service = domain.add_service("[service=mute[id=1]]", resolver=inr)
        client = domain.add_client(resolver=inr)
        domain.run(1.0)
        client.send_anycast(parse("[service=mute]"), b"x")
        domain.run(1.0)  # must not raise


class TestResolveBest:
    def test_best_is_least_metric(self):
        domain = InsDomain(seed=58)
        inr = domain.add_inr()
        domain.add_service("[service=b[id=slow]]", resolver=inr, metric=9.0)
        best_service = domain.add_service("[service=b[id=fast]]",
                                          resolver=inr, metric=1.0)
        client = domain.add_client(resolver=inr)
        domain.run(1.0)
        reply = client.resolve_best(parse("[service=b]"))
        domain.run(1.0)
        endpoint, metric = reply.value
        assert metric == 1.0
        assert endpoint.host == best_service.address

    def test_no_match_resolves_to_none(self):
        domain = InsDomain(seed=59)
        inr = domain.add_inr()
        client = domain.add_client(resolver=inr)
        domain.run(1.0)
        reply = client.resolve_best(parse("[service=missing]"))
        domain.run(1.0)
        assert reply.done
        assert reply.value is None
