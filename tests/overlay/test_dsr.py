"""Tests for the Domain Space Resolver."""

import pytest

from repro.netsim import Network, Process, Simulator
from repro.overlay import (
    DomainSpaceResolver,
    DsrClaimCandidate,
    DsrClaimResponse,
    DsrDeregister,
    DsrHeartbeat,
    DsrListRequest,
    DsrListResponse,
    DsrRegisterActive,
    DsrRegisterCandidate,
    DsrVspaceRequest,
    DsrVspaceResponse,
)
from repro.resolver.ports import DSR_PORT


class Probe(Process):
    def __init__(self, node, port):
        super().__init__(node, port)
        self.responses = []

    def handle_message(self, payload, source):
        self.responses.append(payload)


@pytest.fixture
def setup():
    sim = Simulator(seed=0)
    network = Network(sim)
    dsr_node = network.add_node("dsr")
    dsr = DomainSpaceResolver(dsr_node)
    dsr.start()
    probe_node = network.add_node("probe")
    probe = Probe(probe_node, 7000)
    return sim, network, dsr, probe


def tell(network, payload):
    network.send("probe", "dsr", DSR_PORT, payload, 28)


class TestRegistration:
    def test_active_list_preserves_activation_order(self, setup):
        sim, network, dsr, probe = setup
        for name in ("inr-c", "inr-a", "inr-b"):
            tell(network, DsrRegisterActive(name, ("default",)))
        sim.run_for(1.0)
        assert dsr.active_inrs == ("inr-c", "inr-a", "inr-b")

    def test_reregistration_keeps_position(self, setup):
        sim, network, dsr, probe = setup
        tell(network, DsrRegisterActive("inr-a", ("default",)))
        tell(network, DsrRegisterActive("inr-b", ("default",)))
        tell(network, DsrRegisterActive("inr-a", ("default",)))
        sim.run_for(1.0)
        assert dsr.active_inrs == ("inr-a", "inr-b")

    def test_candidate_promotion_removes_from_candidates(self, setup):
        sim, network, dsr, probe = setup
        tell(network, DsrRegisterCandidate("node-x"))
        sim.run_for(1.0)
        assert dsr.candidates == ("node-x",)
        tell(network, DsrRegisterActive("node-x", ("default",)))
        sim.run_for(1.0)
        assert dsr.candidates == ()
        assert "node-x" in dsr.active_inrs

    def test_active_node_not_added_as_candidate(self, setup):
        sim, network, dsr, probe = setup
        tell(network, DsrRegisterActive("inr-a", ("default",)))
        tell(network, DsrRegisterCandidate("inr-a"))
        sim.run_for(1.0)
        assert dsr.candidates == ()

    def test_deregistration(self, setup):
        sim, network, dsr, probe = setup
        tell(network, DsrRegisterActive("inr-a", ("default",)))
        tell(network, DsrDeregister("inr-a"))
        sim.run_for(1.0)
        assert dsr.active_inrs == ()

    def test_vspace_map_tracks_registrations(self, setup):
        sim, network, dsr, probe = setup
        tell(network, DsrRegisterActive("inr-a", ("cameras", "printers")))
        tell(network, DsrRegisterActive("inr-b", ("cameras",)))
        sim.run_for(1.0)
        assert dsr.resolvers_for("cameras") == ("inr-a", "inr-b")
        assert dsr.resolvers_for("printers") == ("inr-a",)
        assert dsr.resolvers_for("unknown") == ()

    def test_vspace_change_on_heartbeat(self, setup):
        """Delegation shrinks an INR's vspace set; the heartbeat must
        replace the old mapping, not accrete."""
        sim, network, dsr, probe = setup
        tell(network, DsrRegisterActive("inr-a", ("cameras", "printers")))
        tell(network, DsrHeartbeat("inr-a", ("cameras",)))
        sim.run_for(1.0)
        assert dsr.resolvers_for("printers") == ()
        assert dsr.resolvers_for("cameras") == ("inr-a",)


class TestSoftState:
    def test_silent_active_expires(self, setup):
        sim, network, dsr, probe = setup
        tell(network, DsrRegisterActive("inr-a", ("default",)))
        sim.run_for(100.0)  # lifetime is 45 s, sweep every 5 s
        assert dsr.active_inrs == ()
        assert dsr.resolvers_for("default") == ()

    def test_heartbeats_keep_registration_alive(self, setup):
        sim, network, dsr, probe = setup
        tell(network, DsrRegisterActive("inr-a", ("default",)))
        for i in range(1, 12):
            sim.schedule(i * 10.0,
                         lambda: tell(network, DsrHeartbeat("inr-a", ("default",))))
        sim.run_for(110.0)
        assert dsr.active_inrs == ("inr-a",)


class TestQueries:
    def test_list_request(self, setup):
        sim, network, dsr, probe = setup
        tell(network, DsrRegisterActive("inr-a", ("default",)))
        tell(network, DsrRegisterCandidate("spare"))
        tell(network, DsrListRequest(reply_to="probe", reply_port=7000))
        sim.run_for(1.0)
        [response] = [r for r in probe.responses if isinstance(r, DsrListResponse)]
        assert response.active == ("inr-a",)
        assert response.candidates == ("spare",)

    def test_vspace_request(self, setup):
        sim, network, dsr, probe = setup
        tell(network, DsrRegisterActive("inr-a", ("cameras",)))
        tell(network, DsrVspaceRequest(vspace="cameras", reply_to="probe",
                                       reply_port=7000))
        sim.run_for(1.0)
        [response] = [r for r in probe.responses if isinstance(r, DsrVspaceResponse)]
        assert response.resolvers == ("inr-a",)

    def test_claim_grants_each_candidate_once(self, setup):
        sim, network, dsr, probe = setup
        tell(network, DsrRegisterCandidate("spare-1"))
        for _ in range(2):
            tell(network, DsrClaimCandidate(requester="probe", reply_to="probe",
                                            reply_port=7000))
        sim.run_for(1.0)
        grants = [r.candidate for r in probe.responses
                  if isinstance(r, DsrClaimResponse)]
        assert grants == ["spare-1", ""]
        assert dsr.candidates == ()
