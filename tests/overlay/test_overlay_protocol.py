"""Tests for DSR protocol message types."""

from repro.overlay import (
    DsrClaimCandidate,
    DsrClaimResponse,
    DsrDeregister,
    DsrHeartbeat,
    DsrListRequest,
    DsrListResponse,
    DsrRegisterActive,
    DsrRegisterCandidate,
    DsrVspaceRequest,
    DsrVspaceResponse,
)


class TestWireSizes:
    def test_register_scales_with_vspaces(self):
        small = DsrRegisterActive("inr-a", ("default",))
        large = DsrRegisterActive("inr-a", ("a", "b", "c", "d"))
        assert large.wire_size() > small.wire_size()

    def test_list_response_scales_with_entries(self):
        empty = DsrListResponse(request_id=1, active=(), candidates=())
        full = DsrListResponse(
            request_id=1, active=("a", "b", "c"), candidates=("d",)
        )
        assert full.wire_size() == empty.wire_size() + 4 * 16

    def test_every_message_has_positive_size(self):
        messages = [
            DsrRegisterActive("x", ("v",)),
            DsrRegisterCandidate("x"),
            DsrDeregister("x"),
            DsrHeartbeat("x", ("v",)),
            DsrListRequest(reply_to="x", reply_port=1),
            DsrListResponse(request_id=1, active=(), candidates=()),
            DsrVspaceRequest(vspace="v", reply_to="x", reply_port=1),
            DsrVspaceResponse(request_id=1, vspace="v", resolvers=()),
            DsrClaimCandidate(requester="x", reply_to="x", reply_port=1),
            DsrClaimResponse(request_id=1, candidate=""),
        ]
        for message in messages:
            assert message.wire_size() > 0


class TestRequestIds:
    def test_fresh_ids_per_request(self):
        a = DsrListRequest(reply_to="x", reply_port=1)
        b = DsrListRequest(reply_to="x", reply_port=1)
        assert a.request_id != b.request_id

    def test_vspace_and_claim_share_sequence(self):
        a = DsrVspaceRequest(vspace="v", reply_to="x", reply_port=1)
        b = DsrClaimCandidate(requester="x", reply_to="x", reply_port=1)
        assert a.request_id != b.request_id
