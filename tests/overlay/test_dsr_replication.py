"""Tests for DSR replication (Section 2.4: "may be replicated")."""

import pytest

from repro.experiments import DSR_HOST, InsDomain


@pytest.fixture
def replicated():
    domain = InsDomain(seed=800)
    replica = domain.add_dsr_replica(address="dsr-replica")
    return domain, replica


class TestReplication:
    def test_registrations_mirror_to_replica(self, replicated):
        domain, replica = replicated
        domain.add_inr(address="inr-a")
        domain.run(1.0)
        assert replica.active_inrs == ("inr-a",)
        assert domain.dsr.active_inrs == ("inr-a",)

    def test_vspace_map_mirrors(self, replicated):
        domain, replica = replicated
        domain.add_inr(address="inr-a", vspaces=("cams",))
        domain.run(1.0)
        assert replica.resolvers_for("cams") == ("inr-a",)

    def test_candidates_mirror(self, replicated):
        domain, replica = replicated
        domain.add_candidate("spare-1")
        domain.run(1.0)
        assert replica.candidates == ("spare-1",)

    def test_deregistration_mirrors(self, replicated):
        domain, replica = replicated
        inr = domain.add_inr(address="inr-a")
        inr.terminate()
        domain.run(1.0)
        assert replica.active_inrs == ()

    def test_heartbeats_keep_replica_state_alive(self, replicated):
        domain, replica = replicated
        domain.add_inr(address="inr-a")
        domain.run(120.0)  # several registration lifetimes
        assert replica.active_inrs == ("inr-a",)

    def test_replica_soft_state_expires_like_primary(self, replicated):
        domain, replica = replicated
        inr = domain.add_inr(address="inr-a")
        inr.crash()
        domain.run(120.0)
        assert domain.dsr.active_inrs == ()
        assert replica.active_inrs == ()

    def test_inr_can_join_via_the_replica(self, replicated):
        """The replica is a full DSR: joins, pings and registrations
        against it work, and the registration flows back to the primary
        (the replica mirrors its own writes)."""
        domain, replica = replicated
        domain.add_inr(address="inr-a")
        # Point a second INR at the replica instead of the primary.
        from repro.resolver import INR

        node = domain.network.add_node("inr-b")
        inr_b = INR(node, dsr_address="dsr-replica", config=domain.config,
                    costs=domain.costs)
        domain.inrs.append(inr_b)
        inr_b.start()
        domain.run(2.0)
        assert inr_b.active
        assert "inr-b" in replica.active_inrs
        assert "inr-b" in domain.dsr.active_inrs  # mirrored back
        # the overlay spans INRs registered at different replicas
        assert "inr-a" in inr_b.neighbors or len(inr_b.neighbors) == 1

    def test_domain_survives_primary_dsr_loss(self, replicated):
        """INRs pointed at the replica keep bootstrapping the domain
        after the primary DSR dies — the fault-tolerance the paper
        wanted from replication."""
        domain, replica = replicated
        domain.add_inr(address="inr-a")
        domain.run(1.0)
        domain.dsr.stop()  # the well-known primary is gone
        from repro.resolver import INR

        node = domain.network.add_node("inr-late")
        late = INR(node, dsr_address="dsr-replica", config=domain.config,
                   costs=domain.costs)
        domain.inrs.append(late)
        late.start()
        domain.run(15.0)
        assert late.active
        assert "inr-late" in replica.active_inrs

    def test_claim_taken_mirrors(self, replicated):
        domain, replica = replicated
        inr = domain.add_inr(address="inr-a")
        domain.add_candidate("spare-1")
        domain.run(1.0)
        assert replica.candidates == ("spare-1",)
        from repro.overlay import DsrClaimCandidate
        from repro.resolver.ports import DSR_PORT

        domain.network.send(
            "inr-a", DSR_HOST, DSR_PORT,
            DsrClaimCandidate(requester="inr-a", reply_to="inr-a",
                              reply_port=5678),
            28,
        )
        domain.run(1.0)
        assert domain.dsr.candidates == ()
        assert replica.candidates == ()
