"""Tests for overlay self-configuration and relaxation (Section 2.4)."""

import pytest

from repro.experiments import InsDomain
from repro.experiments.fig14 import build_chain_domain
from repro.resolver import InrConfig


def overlay_edges(domain):
    edges = set()
    for inr in domain.inrs:
        for neighbor in inr.neighbors:
            edges.add(frozenset((inr.address, neighbor.address)))
    return edges


def is_tree(domain):
    active = [inr for inr in domain.inrs if inr.active and not inr._terminated]
    edges = overlay_edges(domain)
    if len(edges) != len(active) - 1:
        return False
    parent = {inr.address: inr.address for inr in active}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for edge in edges:
        x, y = tuple(edge)
        parent[find(x)] = find(y)
    return len({find(inr.address) for inr in active}) == 1


class TestSelfConfiguration:
    @pytest.mark.parametrize("count", [2, 4, 8])
    def test_joins_always_yield_a_tree(self, count):
        domain = InsDomain(seed=count)
        for _ in range(count):
            domain.add_inr()
        assert is_tree(domain)

    def test_join_choice_respects_latency(self):
        """INR-pings drive peering: the joiner picks the closest active."""
        domain = build_chain_domain(5)
        for index, inr in enumerate(domain.inrs[1:], start=1):
            assert inr.neighbors.parent.address == f"chain-{index}"

    def test_neighbor_relationship_is_mutual(self):
        domain = InsDomain(seed=2)
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        assert "inr-b" in a.neighbors
        assert "inr-a" in b.neighbors

    def test_pings_measure_rtt(self):
        domain = InsDomain(seed=3)
        a = domain.add_inr(address="inr-a")
        domain.network.configure_link("inr-a", "inr-b", latency=0.015)
        b = domain.add_inr(address="inr-b")
        measured = b.neighbors.rtt_to("inr-a")
        # 2 x 15 ms of latency plus processing; generously bounded.
        assert 0.03 <= measured <= 0.05


class TestRelaxation:
    def test_parent_switch_after_link_degradation(self):
        config = InrConfig(enable_relaxation=True, relaxation_interval=5.0,
                           refresh_interval=50.0)
        domain = InsDomain(seed=7, config=config)
        a = domain.add_inr(address="inr-a")
        domain.network.configure_link("inr-a", "inr-b", latency=0.002)
        b = domain.add_inr(address="inr-b")
        domain.network.configure_link("inr-a", "inr-c", latency=0.002)
        domain.network.configure_link("inr-b", "inr-c", latency=0.004)
        c = domain.add_inr(address="inr-c")
        assert c.neighbors.parent.address == "inr-a"
        # inr-a becomes distant; inr-b is now far cheaper.
        domain.network.configure_link("inr-a", "inr-c", latency=0.1)
        domain.network.configure_link("inr-b", "inr-c", latency=0.001)
        domain.run(120.0)
        assert c.neighbors.parent.address == "inr-b"
        assert is_tree(domain)

    def test_no_switch_without_meaningful_improvement(self):
        """Hysteresis: tiny differences must not flap the tree."""
        config = InrConfig(enable_relaxation=True, relaxation_interval=5.0,
                           refresh_interval=50.0)
        domain = InsDomain(seed=8, config=config)
        a = domain.add_inr(address="inr-a")
        domain.network.configure_link("inr-a", "inr-b", latency=0.002)
        b = domain.add_inr(address="inr-b")
        domain.network.configure_link("inr-a", "inr-c", latency=0.0020)
        domain.network.configure_link("inr-b", "inr-c", latency=0.0019)
        c = domain.add_inr(address="inr-c")
        parent_before = c.neighbors.parent.address
        domain.run(120.0)
        assert c.neighbors.parent.address == parent_before

    def test_relaxation_only_probes_earlier_inrs(self):
        """Acyclicity: a node never adopts a later-ordered parent, so
        the overlay remains a tree through arbitrary relaxation."""
        config = InrConfig(enable_relaxation=True, relaxation_interval=3.0,
                           refresh_interval=50.0)
        domain = InsDomain(seed=9, config=config)
        for _ in range(6):
            domain.add_inr()
        domain.run(200.0)
        assert is_tree(domain)
        order = {inr.address: index for index, inr in enumerate(domain.inrs)}
        for inr in domain.inrs:
            parent = inr.neighbors.parent
            if parent is not None:
                assert order[parent.address] < order[inr.address]
