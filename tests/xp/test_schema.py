"""Artifact data contracts: every committed BENCH_* file must parse."""

import copy
import json
from pathlib import Path

import pytest

from repro.xp import SchemaError, validate_artifact, validate_results_dir
from repro.xp.schema import ARTIFACT_SCHEMAS

RESULTS_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "results"


class TestCommittedArtifacts:
    def test_every_committed_artifact_validates(self):
        validated = validate_results_dir(RESULTS_DIR)
        # The committed evaluation must at least cover the matrix, the
        # perf trajectory, and the three chaos artifacts.
        families = set(validated.values())
        for required in (
            "xp-matrix",
            "fig12-lookup",
            "availability-chaos",
            "dtn-chaos",
            "delegation-chaos",
        ):
            assert required in families, f"missing committed {required}"

    def test_every_declared_family_is_versioned(self):
        for family, (version, check) in ARTIFACT_SCHEMAS.items():
            assert isinstance(version, int) and version >= 1, family
            assert callable(check), family

    def test_committed_matrix_covers_every_toggle(self):
        from repro.xp import TOGGLES

        path = RESULTS_DIR / "BENCH_matrix.json"
        payload = json.loads(path.read_text())
        ranked = {row["component"] for row in payload["importance_ranking"]}
        assert ranked == set(TOGGLES)
        assert len(ranked) >= 8


def matrix_payload() -> dict:
    return json.loads((RESULTS_DIR / "BENCH_matrix.json").read_text())


class TestValidationFailures:
    def test_unknown_family_is_an_error(self, tmp_path):
        path = tmp_path / "BENCH_new.json"
        path.write_text(json.dumps({"benchmark": "mystery", "v": 1}))
        with pytest.raises(SchemaError, match="unknown benchmark family"):
            validate_artifact(path)

    def test_wrong_schema_version_is_an_error(self, tmp_path):
        payload = matrix_payload()
        payload["schema_version"] = 99
        path = tmp_path / "BENCH_matrix.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(SchemaError, match="schema_version"):
            validate_artifact(path)

    def test_missing_required_field_is_an_error(self, tmp_path):
        payload = matrix_payload()
        del payload["importance_ranking"]
        path = tmp_path / "BENCH_matrix.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(SchemaError, match="importance_ranking"):
            validate_artifact(path)

    def test_malformed_run_id_is_an_error(self, tmp_path):
        payload = copy.deepcopy(matrix_payload())
        payload["suite"][0]["run_id"] = "not-a-run-id"
        path = tmp_path / "BENCH_matrix.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(SchemaError, match="run_id|run ID"):
            validate_artifact(path)

    def test_metrics_snapshot_requires_quantiles(self, tmp_path):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.histogram("latency").observe(0.05)
        payload = registry.snapshot()
        path = tmp_path / "BENCH_fresh_metrics.json"
        path.write_text(json.dumps(payload))
        assert validate_artifact(path) == "metrics-snapshot"
        series = next(iter(payload["histograms"]["latency"].values()))
        del series["quantiles"]
        path.write_text(json.dumps(payload))
        with pytest.raises(SchemaError, match="quantiles"):
            validate_artifact(path)

    def test_validate_results_dir_raises_on_any_bad_file(self, tmp_path):
        good = matrix_payload()
        (tmp_path / "BENCH_matrix.json").write_text(json.dumps(good))
        bad = dict(good)
        bad["schema_version"] = 99
        (tmp_path / "BENCH_other.json").write_text(json.dumps(bad))
        with pytest.raises(SchemaError):
            validate_results_dir(tmp_path)
