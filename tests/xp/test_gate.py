"""repro-bench-gate: flattening, rule semantics, CLI exit codes."""

import copy
import json

import pytest

from repro.xp import MetricRule, compare_artifacts, render_gate_report
from repro.xp.gate import EXACT_RULE, flatten, main, parse_rule


def matrix_payload() -> dict:
    """A minimal but schema-valid xp-matrix artifact."""
    return {
        "benchmark": "xp-matrix",
        "schema_version": 1,
        "engine": {"toggles": {"packet_cache": "INR packet cache"}},
        "suite": [
            {
                "name": "cache",
                "workload": "packet-cache",
                "seed": 0,
                "run_id": "xp-0123456789abcdef",
                "params": {"requests": 10},
                "toggles": {"packet_cache": True},
                "baseline": {
                    "metrics": {"origin_served": 2.0, "requests": 10.0}
                },
                "ablations": {
                    "packet_cache": {
                        "run_id": "xp-fedcba9876543210",
                        "metrics": {"origin_served": 10.0, "requests": 10.0},
                        "deltas": {
                            "origin_served": {
                                "baseline": 2.0,
                                "ablated": 10.0,
                                "delta": 8.0,
                                "relative": 0.8,
                            }
                        },
                        "primary": {
                            "metric": "origin_served",
                            "direction": "lower",
                            "importance": 0.8,
                        },
                    }
                },
            }
        ],
        "importance_ranking": [
            {
                "component": "packet_cache",
                "importance": 0.8,
                "workload": "packet-cache",
                "spec": "cache",
                "metric": "origin_served",
                "direction": "lower",
                "baseline": 2.0,
                "ablated": 10.0,
            }
        ],
    }


class TestFlatten:
    def test_numeric_leaves_only_with_list_indices(self):
        flat = flatten(
            {
                "a": {"b": 1, "note": "text", "done": True},
                "rows": [{"x": 2.5}, {"x": 3.0}],
            }
        )
        assert flat == {"a.b": 1.0, "rows[0].x": 2.5, "rows[1].x": 3.0}

    def test_generated_at_is_never_compared(self):
        assert flatten({"generated_at": 12345, "v": 1}) == {"v": 1.0}


class TestRuleSemantics:
    def test_identical_payloads_pass_the_exact_gate(self):
        payload = matrix_payload()
        report = compare_artifacts(payload, copy.deepcopy(payload), family="xp-matrix")
        assert report.ok
        assert not report.regressions
        assert all(r.status == "ok" for r in report.rows)

    def test_any_drift_fails_the_exact_gate(self):
        current = matrix_payload()
        current["suite"][0]["baseline"]["metrics"]["origin_served"] = 3.0
        report = compare_artifacts(current, matrix_payload(), family="xp-matrix")
        assert not report.ok
        paths = [r.path for r in report.regressions]
        assert "suite[0].baseline.metrics.origin_served" in paths

    def test_missing_gated_path_is_a_regression(self):
        current = matrix_payload()
        del current["suite"][0]["baseline"]["metrics"]["origin_served"]
        report = compare_artifacts(current, matrix_payload(), family="xp-matrix")
        assert not report.ok
        missing = [r for r in report.rows if r.status == "missing"]
        assert missing and missing[0].current is None

    def test_new_paths_are_reported_but_do_not_fail(self):
        current = matrix_payload()
        current["suite"][0]["baseline"]["metrics"]["extra"] = 1.0
        report = compare_artifacts(current, matrix_payload(), family="xp-matrix")
        assert report.ok
        assert [r.path for r in report.rows if r.status == "new"] == [
            "suite[0].baseline.metrics.extra"
        ]

    def test_higher_is_better_only_fails_on_harmful_drift(self):
        rule = MetricRule("rate", tolerance=0.1, direction="higher")
        worse = compare_artifacts({"rate": 0.5}, {"rate": 1.0}, rules=[rule])
        better = compare_artifacts({"rate": 2.0}, {"rate": 1.0}, rules=[rule])
        assert not worse.ok and worse.rows[0].status == "regressed"
        assert better.ok and better.rows[0].status == "improved"

    def test_lower_is_better_mirrors_higher(self):
        rule = MetricRule("latency", tolerance=0.1, direction="lower")
        worse = compare_artifacts({"latency": 2.0}, {"latency": 1.0}, rules=[rule])
        better = compare_artifacts({"latency": 0.5}, {"latency": 1.0}, rules=[rule])
        assert not worse.ok
        assert better.ok and better.rows[0].status == "improved"

    def test_tolerance_bounds_the_relative_change(self):
        rule = MetricRule("*", tolerance=0.25, direction="both")
        inside = compare_artifacts({"v": 110.0}, {"v": 100.0}, rules=[rule])
        outside = compare_artifacts({"v": 150.0}, {"v": 100.0}, rules=[rule])
        assert inside.ok
        assert not outside.ok

    def test_info_never_fails_even_when_missing(self):
        rule = MetricRule("*", direction="info")
        report = compare_artifacts({}, {"v": 1.0}, rules=[rule])
        assert report.ok
        assert all(r.status == "info" for r in report.rows)

    def test_bracketed_index_patterns_are_literal(self):
        # fnmatch alone would read [1] as a character class; list-index
        # paths must be addressable both exactly and with a wildcard.
        exact = MetricRule("curve[1].us", tolerance=0.5, direction="lower")
        current = {"curve": [{"us": 9.0}, {"us": 9.0}]}
        baseline = {"curve": [{"us": 1.0}, {"us": 1.0}]}
        report = compare_artifacts(
            current, baseline, rules=[exact],
            default_rule=MetricRule("*", direction="info"),
        )
        by_path = {r.path: r.status for r in report.rows}
        assert by_path["curve[1].us"] == "regressed"
        assert by_path["curve[0].us"] == "info"
        wild = MetricRule("curve[*].us", tolerance=0.0, direction="both")
        report = compare_artifacts(
            current, baseline, rules=[wild],
            default_rule=MetricRule("*", direction="info"),
        )
        assert all(r.status == "regressed" for r in report.rows)

    def test_first_matching_rule_wins(self):
        rules = [
            MetricRule("v", direction="info"),
            MetricRule("*", tolerance=0.0, direction="both"),
        ]
        report = compare_artifacts({"v": 9.0, "w": 9.0}, {"v": 1.0, "w": 1.0}, rules=rules)
        by_path = {r.path: r.status for r in report.rows}
        assert by_path == {"v": "info", "w": "regressed"}

    def test_wall_clock_family_defaults_to_informational(self):
        report = compare_artifacts(
            {"benchmark": "fig12-lookup", "curve": [{"mean_lookup_us": 90.0}]},
            {"benchmark": "fig12-lookup", "curve": [{"mean_lookup_us": 50.0}]},
            family="fig12-lookup",
        )
        assert report.ok

    def test_unknown_family_defaults_to_exact(self):
        report = compare_artifacts({"v": 2.0}, {"v": 1.0}, family="whatever")
        assert not report.ok
        assert report.rows[0].rule == EXACT_RULE

    def test_render_mentions_verdict_and_offending_path(self):
        current = matrix_payload()
        current["suite"][0]["baseline"]["metrics"]["origin_served"] = 3.0
        report = compare_artifacts(current, matrix_payload(), family="xp-matrix")
        text = render_gate_report(report)
        assert "FAIL" in text
        assert "suite[0].baseline.metrics.origin_served" in text
        assert "PASS" in render_gate_report(
            compare_artifacts(matrix_payload(), matrix_payload(), family="xp-matrix")
        )


class TestParseRule:
    def test_full_form(self):
        rule = parse_rule("curve[4].mean_lookup_us=0.2:lower")
        assert rule == MetricRule("curve[4].mean_lookup_us", 0.2, "lower")

    def test_direction_defaults_to_both(self):
        assert parse_rule("*=0.1").direction == "both"

    @pytest.mark.parametrize("text", ["nope", "=0.1", "p=abc", "p=0.1:sideways"])
    def test_malformed_rules_rejected(self, text):
        with pytest.raises(ValueError):
            parse_rule(text)


class TestCli:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_identical_artifacts_exit_zero(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", matrix_payload())
        cur = self.write(tmp_path, "cur.json", matrix_payload())
        assert main([cur, base]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_regression_exits_one_with_delta_report(self, tmp_path, capsys):
        current = matrix_payload()
        current["suite"][0]["baseline"]["metrics"]["origin_served"] = 3.0
        base = self.write(tmp_path, "base.json", matrix_payload())
        cur = self.write(tmp_path, "cur.json", current)
        assert main([cur, base]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "origin_served" in out

    def test_schema_violation_exits_two(self, tmp_path, capsys):
        broken = matrix_payload()
        del broken["importance_ranking"]
        base = self.write(tmp_path, "base.json", matrix_payload())
        cur = self.write(tmp_path, "cur.json", broken)
        assert main([cur, base]) == 2

    def test_family_mismatch_exits_two(self, tmp_path):
        base = self.write(
            tmp_path,
            "base.json",
            {"benchmark": "a", "v": 1.0},
        )
        cur = self.write(tmp_path, "cur.json", {"benchmark": "b", "v": 1.0})
        assert main(["--no-schema-check", cur, base]) == 2

    def test_missing_file_exits_two(self, tmp_path):
        base = self.write(tmp_path, "base.json", matrix_payload())
        assert main([str(tmp_path / "nope.json"), base]) == 2

    def test_bad_rule_exits_two(self, tmp_path):
        base = self.write(tmp_path, "base.json", matrix_payload())
        assert main(["--metric", "nonsense", base, base]) == 2

    def test_metric_rule_can_waive_a_drift(self, tmp_path):
        current = matrix_payload()
        current["suite"][0]["baseline"]["metrics"]["origin_served"] = 3.0
        base = self.write(tmp_path, "base.json", matrix_payload())
        cur = self.write(tmp_path, "cur.json", current)
        assert main([cur, base]) == 1
        assert (
            main(["--metric", "*origin_served*=1.0:both", cur, base]) == 0
        )
