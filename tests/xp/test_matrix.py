"""End-to-end engine runs: determinism, schema, importance semantics."""

import filecmp

import pytest

from repro.xp import (
    ExperimentSpec,
    build_matrix_report,
    run_spec,
    run_suite,
    validate_artifact,
    write_bench_matrix_json,
)
from repro.xp.report import importance, metric_deltas, table_filename
from repro.xp.runner import SpecError


def small_suite():
    """The two fastest workloads — enough to exercise the whole path."""
    return [
        ExperimentSpec(
            name="cache",
            workload="packet-cache",
            seed=0,
            params={"requests": 10},
        ),
        ExperimentSpec(name="updates", workload="update-overload", seed=0),
    ]


class TestDeterminism:
    def test_same_seed_matrix_is_byte_identical(self, tmp_path):
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        for path in (first, second):
            runs = run_suite(small_suite(), timing=False)
            write_bench_matrix_json(path, build_matrix_report(runs))
        assert filecmp.cmp(first, second, shallow=False)

    def test_matrix_payload_schema_validates(self, tmp_path):
        runs = run_suite(small_suite(), timing=False)
        path = tmp_path / "BENCH_matrix.json"
        payload = write_bench_matrix_json(path, build_matrix_report(runs))
        assert validate_artifact(path, payload) == "xp-matrix"

    def test_generated_at_is_stamped_outside_the_run(self, tmp_path):
        runs = run_suite(small_suite(), timing=False)
        payload = build_matrix_report(runs)
        path = tmp_path / "m.json"
        stamped = write_bench_matrix_json(path, payload, generated_at="2026-01-01")
        assert stamped["generated_at"] == "2026-01-01"
        bare = write_bench_matrix_json(path, payload, generated_at=None)
        assert "generated_at" not in bare

    def test_without_timing_no_wall_clock_fields_leak(self):
        runs = run_suite(small_suite(), timing=False)
        payload = build_matrix_report(runs)
        for entry in payload["suite"]:
            assert "timings" not in entry["baseline"]
            for section in entry["ablations"].values():
                assert "timings" not in section


class TestMatrixContents:
    def test_every_ablation_carries_run_id_deltas_and_primary(self):
        runs = run_suite(small_suite(), timing=False)
        payload = build_matrix_report(runs)
        for entry in payload["suite"]:
            assert entry["run_id"].startswith("xp-")
            for toggle, section in entry["ablations"].items():
                assert section["run_id"].startswith("xp-")
                assert section["run_id"] != entry["run_id"]
                assert section["deltas"]
                assert section["primary"]["metric"] in section["metrics"]

    def test_packet_cache_ablation_hurts_and_ranks(self):
        payload = build_matrix_report(run_suite(small_suite(), timing=False))
        ranked = {
            row["component"]: row for row in payload["importance_ranking"]
        }
        # Removing the cache sends repeated requests back to the origin:
        # origin_served is "lower is better", so importance is positive.
        assert ranked["packet_cache"]["importance"] > 0
        assert ranked["load_balancing"]["importance"] > 0

    def test_duplicate_run_ids_rejected(self):
        spec = small_suite()[0]
        with pytest.raises(SpecError, match="duplicate"):
            run_suite([spec, spec], timing=False)

    def test_ablations_restriction_limits_the_arms(self):
        spec = ExperimentSpec(
            name="cache-only",
            workload="packet-cache",
            seed=0,
            params={"requests": 10},
            ablations=("packet_cache",),
        )
        run = run_spec(spec, timing=False)
        assert set(run.ablations) == {"packet_cache"}

    def test_ablations_restriction_must_name_workload_toggles(self):
        spec = ExperimentSpec(
            name="bad",
            workload="packet-cache",
            seed=0,
            ablations=("custody",),
        )
        with pytest.raises(SpecError, match="does not honor"):
            run_spec(spec, timing=False)


class TestImportanceFunction:
    def test_sign_convention_higher_is_better(self):
        # Metric collapsed when ablated -> the component helps: positive.
        assert importance(1.0, 0.2, "higher") == pytest.approx(0.8)
        # Metric improved when ablated -> component is overhead: negative.
        assert importance(0.5, 1.0, "higher") == pytest.approx(-0.5)

    def test_sign_convention_lower_is_better(self):
        assert importance(2.0, 10.0, "lower") == pytest.approx(0.8)
        assert importance(10.0, 2.0, "lower") == pytest.approx(-0.8)

    def test_bounded_and_zero_safe(self):
        assert importance(0.0, 0.0, "higher") == 0.0
        assert -1.0 <= importance(0.0, 123.0, "higher") <= 1.0

    def test_metric_deltas_cover_shared_keys_only(self):
        deltas = metric_deltas({"a": 1.0, "b": 2.0}, {"a": 3.0, "c": 4.0})
        assert set(deltas) == {"a"}
        assert deltas["a"]["delta"] == 2.0
        assert deltas["a"]["relative"] == pytest.approx(2.0 / 3.0)


class TestTableNaming:
    def test_trailing_parenthetical_stripped_interior_kept(self):
        assert (
            table_filename("Ablation: spawn on lookup overload (rate 900/s)")
            == "ablation__spawn_on_lookup_overload.txt"
        )
        assert (
            table_filename(
                "Ablation: lookup memo (cached vs uncached, repeated queries)"
            )
            == "ablation__lookup_memo.txt"
        )
