"""ExperimentSpec: validation, canonical form, run-ID stability."""

import pytest

from repro.xp import ExperimentSpec, TOGGLES
from repro.xp.spec import SpecError


class TestValidation:
    def test_rejects_unknown_toggle(self):
        with pytest.raises(SpecError, match="unknown toggle"):
            ExperimentSpec(name="x", workload="lookup", toggles={"warp": True})

    def test_rejects_non_bool_toggle_value(self):
        with pytest.raises(SpecError, match="must be a bool"):
            ExperimentSpec(
                name="x", workload="lookup", toggles={"lookup_memo": 1}
            )

    def test_rejects_bool_seed(self):
        with pytest.raises(SpecError, match="seed must be an int"):
            ExperimentSpec(name="x", workload="lookup", seed=True)

    def test_rejects_empty_name_and_workload(self):
        with pytest.raises(SpecError):
            ExperimentSpec(name="", workload="lookup")
        with pytest.raises(SpecError):
            ExperimentSpec(name="x", workload="")

    def test_rejects_unknown_ablation_restriction(self):
        with pytest.raises(SpecError, match="unknown ablation"):
            ExperimentSpec(name="x", workload="lookup", ablations=("nope",))

    def test_every_toggle_has_a_description(self):
        assert len(TOGGLES) >= 8
        for toggle, description in TOGGLES.items():
            assert toggle and description


class TestRunIds:
    def test_run_id_is_stable_across_sessions(self):
        # Golden value: the canonicalization (and therefore every run
        # ID ever written into an artifact) must not drift silently.
        # If this changes deliberately, bump spec.SPEC_VERSION and
        # regenerate BENCH_matrix.json.
        spec = ExperimentSpec(
            name="golden",
            workload="lookup",
            seed=3,
            toggles={"lookup_memo": True},
            params={"names": 100},
        )
        assert spec.run_id() == "xp-8cbf3bee3fa7978e"
        assert spec.run_id(ablate="lookup_memo") == "xp-bd7c1018fe19ba4e"

    def test_equal_specs_share_an_id(self):
        a = ExperimentSpec(
            name="s", workload="lookup", seed=1,
            toggles={"lookup_memo": True, "subtree_index": False},
            params={"b": 2, "a": 1},
        )
        b = ExperimentSpec(
            name="s", workload="lookup", seed=1,
            toggles={"subtree_index": False, "lookup_memo": True},
            params={"a": 1, "b": 2},
        )
        assert a.run_id() == b.run_id()
        assert a.canonical_json() == b.canonical_json()

    @pytest.mark.parametrize(
        "other",
        [
            dict(seed=2),
            dict(name="t"),
            dict(workload="routing"),
            dict(params={"names": 200}),
            dict(toggles={"lookup_memo": False}),
            dict(ablations=("lookup_memo",)),
        ],
    )
    def test_any_field_change_changes_the_id(self, other):
        base = dict(
            name="s", workload="lookup", seed=1, params={"names": 100}
        )
        changed = dict(base)
        changed.update(other)
        assert (
            ExperimentSpec(**base).run_id()
            != ExperimentSpec(**changed).run_id()
        )

    def test_ablated_ids_differ_from_baseline_and_each_other(self):
        spec = ExperimentSpec(name="s", workload="lookup")
        ids = {
            spec.run_id(),
            spec.run_id("lookup_memo"),
            spec.run_id("subtree_index"),
        }
        assert len(ids) == 3
        for value in sorted(ids):
            assert value.startswith("xp-") and len(value) == 19

    def test_ablating_a_pinned_toggle_flips_it_in_the_canonical_form(self):
        spec = ExperimentSpec(
            name="s", workload="lookup", toggles={"lookup_memo": True}
        )
        assert spec.effective_toggles("lookup_memo") == {"lookup_memo": False}

    def test_ablate_rejects_unknown_toggle(self):
        spec = ExperimentSpec(name="s", workload="lookup")
        with pytest.raises(SpecError, match="cannot ablate"):
            spec.run_id("warp")


class TestImmutability:
    def test_spec_is_frozen(self):
        spec = ExperimentSpec(name="s", workload="lookup")
        with pytest.raises(Exception):
            spec.seed = 9

    def test_mappings_are_copied_in(self):
        toggles = {"lookup_memo": True}
        spec = ExperimentSpec(name="s", workload="lookup", toggles=toggles)
        toggles["lookup_memo"] = False
        assert spec.toggles["lookup_memo"] is True
