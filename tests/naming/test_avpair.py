"""Unit tests for attribute-value pairs."""

import pytest

from repro.naming import (
    AVPair,
    DuplicateAttributeError,
    InvalidTokenError,
    make_pair,
    validate_token,
)


class TestTokenValidation:
    def test_accepts_plain_tokens(self):
        assert validate_token("camera", "attribute") == "camera"

    def test_accepts_punctuation(self):
        assert validate_token("640x480", "value") == "640x480"
        assert validate_token("oval-office", "value") == "oval-office"
        assert validate_token("a_b.c:d", "value") == "a_b.c:d"

    @pytest.mark.parametrize("bad", ["", "a b", "a[b", "a]b", "a=b", "\t", "a\nb"])
    def test_rejects_reserved_and_whitespace(self, bad):
        with pytest.raises(InvalidTokenError):
            validate_token(bad, "attribute")

    def test_error_names_the_kind(self):
        with pytest.raises(InvalidTokenError, match="value"):
            validate_token("x=y", "value")


class TestConstruction:
    def test_basic_pair(self):
        pair = AVPair("city", "washington")
        assert pair.attribute == "city"
        assert pair.value == "washington"
        assert pair.is_leaf
        assert pair.children == ()

    def test_rejects_bad_attribute(self):
        with pytest.raises(InvalidTokenError):
            AVPair("ci ty", "washington")

    def test_rejects_bad_value(self):
        with pytest.raises(InvalidTokenError):
            AVPair("city", "wash[ington")

    def test_add_child_returns_child(self):
        parent = AVPair("service", "camera")
        child = parent.add("entity", "transmitter")
        assert child.attribute == "entity"
        assert parent.children == (child,)
        assert not parent.is_leaf

    def test_sibling_attributes_must_be_orthogonal(self):
        parent = AVPair("service", "camera")
        parent.add("entity", "transmitter")
        with pytest.raises(DuplicateAttributeError):
            parent.add("entity", "receiver")

    def test_same_attribute_allowed_at_different_levels(self):
        # country=us -> state=virginia vs country=canada -> province=...
        # but also room can nest under room-like chains.
        parent = AVPair("area", "north")
        child = parent.add("area2", "x")
        child.add("area", "south")  # no clash across levels
        assert parent.child("area2").child("area").value == "south"

    def test_make_pair_with_children(self):
        pair = make_pair(
            "service", "camera", AVPair("entity", "transmitter"), AVPair("id", "a")
        )
        assert {c.attribute for c in pair.children} == {"entity", "id"}


class TestInspection:
    def test_child_lookup(self):
        pair = make_pair("a", "b", AVPair("c", "d"))
        assert pair.child("c").value == "d"
        assert pair.child("missing") is None

    def test_walk_is_preorder(self):
        root = AVPair("a", "1")
        child = root.add("b", "2")
        child.add("c", "3")
        root.add("d", "4")
        walked = [(p.attribute, p.value) for p in root.walk()]
        assert walked == [("a", "1"), ("b", "2"), ("c", "3"), ("d", "4")]

    def test_depth_counts_av_pair_levels(self):
        root = AVPair("a", "1")
        assert root.depth() == 1
        child = root.add("b", "2")
        assert root.depth() == 2
        child.add("c", "3")
        assert root.depth() == 3

    def test_count(self):
        root = AVPair("a", "1")
        root.add("b", "2").add("c", "3")
        root.add("d", "4")
        assert root.count() == 4


class TestEquality:
    def test_structural_equality(self):
        a = make_pair("x", "1", AVPair("y", "2"))
        b = make_pair("x", "1", AVPair("y", "2"))
        assert a == b
        assert hash(a) == hash(b)

    def test_sibling_order_is_irrelevant(self):
        a = make_pair("x", "1", AVPair("y", "2"), AVPair("z", "3"))
        b = make_pair("x", "1", AVPair("z", "3"), AVPair("y", "2"))
        assert a == b

    def test_value_difference_breaks_equality(self):
        assert AVPair("x", "1") != AVPair("x", "2")

    def test_structure_difference_breaks_equality(self):
        assert make_pair("x", "1", AVPair("y", "2")) != AVPair("x", "1")

    def test_not_equal_to_other_types(self):
        assert AVPair("x", "1") != "x=1"

    def test_copy_is_deep_and_equal(self):
        original = make_pair("x", "1", make_pair("y", "2", AVPair("z", "3")))
        duplicate = original.copy()
        assert duplicate == original
        duplicate.child("y").add("w", "4")
        assert duplicate != original
