"""Property-based tests for the name language (hypothesis)."""

import string

from hypothesis import given, settings, strategies as st

from repro.naming import AVPair, NameSpecifier

TOKEN_ALPHABET = string.ascii_lowercase + string.digits + "-_."

tokens = st.text(alphabet=TOKEN_ALPHABET, min_size=1, max_size=8)


@st.composite
def av_pairs(draw, depth=0):
    """A random AVPair with bounded depth and sibling count."""
    pair = AVPair(draw(tokens), draw(tokens))
    if depth < 3:
        child_count = draw(st.integers(min_value=0, max_value=2 if depth < 2 else 1))
        used = set()
        for _ in range(child_count):
            child = draw(av_pairs(depth=depth + 1))
            if child.attribute in used:
                continue
            used.add(child.attribute)
            pair.add_child(child)
    return pair


@st.composite
def name_specifiers(draw):
    """A random non-empty NameSpecifier."""
    name = NameSpecifier()
    used = set()
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        pair = draw(av_pairs())
        if pair.attribute in used:
            continue
        used.add(pair.attribute)
        name.add_pair(pair)
    return name


@given(name_specifiers())
@settings(max_examples=150, deadline=None)
def test_wire_round_trip(name):
    """parse(to_wire(n)) == n for every generated name."""
    assert NameSpecifier.parse(name.to_wire()) == name


@given(name_specifiers())
@settings(max_examples=100, deadline=None)
def test_pretty_wire_round_trip(name):
    assert NameSpecifier.parse(name.to_wire(pretty=True)) == name


@given(name_specifiers())
@settings(max_examples=100, deadline=None)
def test_copy_equals_original(name):
    assert name.copy() == name
    assert hash(name.copy()) == hash(name)


@given(name_specifiers())
@settings(max_examples=100, deadline=None)
def test_count_matches_walk(name):
    assert name.count() == sum(1 for _ in name.walk())


@given(name_specifiers())
@settings(max_examples=100, deadline=None)
def test_depth_bounds(name):
    depth = name.depth()
    assert 1 <= depth <= 4  # the generator bounds nesting at 4 levels
    assert depth <= name.count()


@given(name_specifiers())
@settings(max_examples=100, deadline=None)
def test_wire_size_consistent_with_serialization(name):
    assert name.wire_size() == len(name.to_wire().encode("utf-8"))


@given(name_specifiers(), name_specifiers())
@settings(max_examples=100, deadline=None)
def test_equality_iff_canonical_keys_match(a, b):
    assert (a == b) == (a.canonical_key() == b.canonical_key())


@given(name_specifiers())
@settings(max_examples=50, deadline=None)
def test_concrete_names_survive_require_concrete(name):
    # The generator never emits '*' or range tokens (alphabet excludes
    # them), so every generated name must be accepted as concrete.
    assert name.is_concrete()
    name.require_concrete()
