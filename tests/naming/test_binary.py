"""Tests for the compact binary name encoding (footnote 2)."""

import pytest

from hypothesis import given, settings

from repro.naming import NameSpecifier
from repro.naming.binary import (
    BinaryNameError,
    TokenRegistry,
    compression_ratio,
    decode_name,
    encode_name,
)

from ..conftest import OVAL_OFFICE_CAMERA, parse
from .test_naming_properties import name_specifiers


class TestRoundTrip:
    @pytest.mark.parametrize("wire", [
        "[a=b]",
        "[a=b[c=d]]",
        "[a=b][c=d]",
        "[service=camera[entity=transmitter][id=a]][room=510]",
        OVAL_OFFICE_CAMERA,
    ])
    def test_encode_decode_identity(self, wire):
        name = parse(wire)
        assert decode_name(encode_name(name)) == name

    def test_empty_name(self):
        name = NameSpecifier()
        assert decode_name(encode_name(name)).is_empty

    @given(name_specifiers())
    @settings(max_examples=150, deadline=None)
    def test_round_trip_property(self, name):
        assert decode_name(encode_name(name)) == name


class TestCompactness:
    def test_repeated_tokens_interned_once(self):
        """Self-contained mode wins when tokens repeat within a name:
        each distinct token is spelled once."""
        repetitive = parse(
            "[service=camera[camera=camera[entity=camera]]]"
        )
        assert compression_ratio(repetitive) < 1.0

    def test_registry_mode_shrinks_realistic_names(self):
        """Footnote 2's fixed integers: with a shared registry the
        Figure 3 name drops from 156 string bytes to a few dozen."""
        registry = TokenRegistry()
        name = parse(OVAL_OFFICE_CAMERA)
        assert compression_ratio(name, registry) < 0.35

    def test_registry_round_trip(self):
        sender = TokenRegistry()
        name = parse(OVAL_OFFICE_CAMERA)
        encoded = encode_name(name, sender)
        # the receiver holds an identically-synchronized registry
        receiver = TokenRegistry().preload(
            sender.token(i) for i in range(len(sender))
        )
        assert decode_name(encoded, receiver) == name

    def test_registry_mode_requires_the_registry(self):
        registry = TokenRegistry()
        encoded = encode_name(parse("[a=b]"), registry)
        with pytest.raises(BinaryNameError):
            decode_name(encoded)  # no registry on the receiving side

    def test_unknown_registry_index_rejected(self):
        sender = TokenRegistry()
        encoded = encode_name(parse("[a=b]"), sender)
        empty = TokenRegistry()  # desynchronized receiver
        with pytest.raises(BinaryNameError):
            decode_name(encoded, empty)

    def test_tiny_names_may_not_shrink(self):
        # the token table header costs a few bytes; that is fine
        assert compression_ratio(parse("[a=b]")) < 3.0


class TestMalformedInput:
    def test_truncated_varint(self):
        with pytest.raises(BinaryNameError):
            decode_name(b"\xff")

    def test_truncated_token_table(self):
        with pytest.raises(BinaryNameError):
            decode_name(b"\x01\x01\x10ab")

    def test_out_of_range_token_index(self):
        good = bytearray(encode_name(parse("[a=b]")))
        # patch the attribute index to something absurd
        # layout: count=2, ('a','b'), ENTER idx idx LEAVE END
        good[-4] = 0x55
        with pytest.raises(BinaryNameError):
            decode_name(bytes(good))

    def test_unbalanced_nesting(self):
        # self-contained mode, empty table, then a LEAVE with no ENTER
        with pytest.raises(BinaryNameError):
            decode_name(bytes([0x01, 0x00, 0x02, 0x00]))

    def test_unknown_mode_byte(self):
        with pytest.raises(BinaryNameError):
            decode_name(bytes([0x7F, 0x00]))

    def test_missing_terminator(self):
        encoded = encode_name(parse("[a=b]"))
        with pytest.raises(BinaryNameError):
            decode_name(encoded[:-1])

    def test_trailing_garbage(self):
        encoded = encode_name(parse("[a=b]"))
        with pytest.raises(BinaryNameError):
            decode_name(encoded + b"junk")

    @given(name_specifiers())
    @settings(max_examples=60, deadline=None)
    def test_bit_flips_never_crash_uncontrolled(self, name):
        import random

        encoded = bytearray(encode_name(name))
        rng = random.Random(len(encoded))
        position = rng.randrange(len(encoded))
        encoded[position] ^= 0xFF
        try:
            decode_name(bytes(encoded))
        except (BinaryNameError, Exception) as error:
            # controlled error types only
            from repro.naming import NamingError

            assert isinstance(error, (NamingError, ValueError))
