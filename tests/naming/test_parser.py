"""Tests for the wire-format parser (Figure 3 syntax)."""

import pytest

from repro.naming import NameSpecifier, NameSyntaxError, parse_name_specifier

from ..conftest import OVAL_OFFICE_CAMERA


class TestBasicParsing:
    def test_single_pair(self):
        name = parse_name_specifier("[city=washington]")
        assert name.roots[0].attribute == "city"
        assert name.roots[0].value == "washington"

    def test_nested_pairs(self):
        name = parse_name_specifier("[a=b[c=d[e=f]]]")
        assert name.root("a").child("c").child("e").value == "f"

    def test_orthogonal_roots(self):
        name = parse_name_specifier("[a=b][c=d][e=f]")
        assert [p.attribute for p in name.roots] == ["a", "c", "e"]

    def test_orthogonal_children(self):
        name = parse_name_specifier("[service=camera[data-type=picture][resolution=640x480]]")
        camera = name.root("service")
        assert camera.child("data-type").value == "picture"
        assert camera.child("resolution").value == "640x480"

    def test_empty_input_is_the_empty_name(self):
        name = parse_name_specifier("")
        assert name.is_empty

    def test_whitespace_only_is_empty(self):
        assert parse_name_specifier("  \n\t ").is_empty


class TestWhitespaceTolerance:
    """Arbitrary whitespace is permitted anywhere except inside tokens."""

    def test_spaces_around_equals(self):
        name = parse_name_specifier("[ city = washington ]")
        assert name.root("city").value == "washington"

    def test_newlines_and_tabs(self):
        name = parse_name_specifier("[a\n=\tb\n[c =d]\n]")
        assert name.root("a").child("c").value == "d"

    def test_papers_figure_3_example(self):
        name = parse_name_specifier(OVAL_OFFICE_CAMERA)
        assert name.count() == 9
        assert name.depth() == 4
        west_wing = name.root("city").child("building").child("wing")
        assert west_wing.value == "west"
        assert west_wing.child("room").value == "oval-office"
        assert name.root("accessibility").value == "public"


class TestWildcardsAndOmission:
    def test_wildcard_value(self):
        name = parse_name_specifier("[room=*]")
        assert name.root("room").value == "*"

    def test_attribute_only_group_becomes_wildcard(self):
        # Floorplan sends [service=locator[entity=server]][location]
        name = parse_name_specifier("[service=locator[entity=server]][location]")
        assert name.root("location").value == "*"

    def test_range_operator_values_parse_as_plain_tokens(self):
        name = parse_name_specifier("[room=<20]")
        assert name.root("room").value == "<20"


class TestRoundTrip:
    @pytest.mark.parametrize(
        "wire",
        [
            "[a=b]",
            "[a=b[c=d]]",
            "[a=b][c=d]",
            "[service=camera[entity=transmitter][id=a]][room=510]",
            "[x=*]",
        ],
    )
    def test_parse_serialize_identity(self, wire):
        assert NameSpecifier.parse(wire).to_wire() == wire

    def test_figure_3_round_trips_through_compact_form(self):
        once = NameSpecifier.parse(OVAL_OFFICE_CAMERA)
        again = NameSpecifier.parse(once.to_wire())
        assert once == again

    def test_pretty_form_reparses_identically(self):
        name = NameSpecifier.parse(OVAL_OFFICE_CAMERA)
        assert NameSpecifier.parse(name.to_wire(pretty=True)) == name


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "[",
            "[a",
            "[a=",
            "[a=b",
            "[a=b]]",
            "a=b]",
            "[=b]",
            "[a=b] trailing",
            "[a==b]",
            "[[a=b]]",
            "[a=b[]]",
        ],
    )
    def test_malformed_inputs_raise(self, bad):
        with pytest.raises(NameSyntaxError):
            parse_name_specifier(bad)

    def test_error_carries_position(self):
        try:
            parse_name_specifier("[a=b] junk")
        except NameSyntaxError as error:
            assert error.position > 0
        else:
            pytest.fail("expected NameSyntaxError")

    def test_duplicate_sibling_attribute_rejected(self):
        from repro.naming import DuplicateAttributeError

        with pytest.raises(DuplicateAttributeError):
            parse_name_specifier("[a=b][a=c]")


class TestDepthBound:
    """Adversarially deep names must be rejected, not crash the
    recursive parser (a resolver feeds wire input straight in)."""

    def test_maximum_depth_accepted(self):
        from repro.naming import MAX_NAME_DEPTH

        deep = "[a=b" * MAX_NAME_DEPTH + "]" * MAX_NAME_DEPTH
        name = parse_name_specifier(deep)
        assert name.depth() == MAX_NAME_DEPTH

    def test_beyond_maximum_depth_rejected(self):
        from repro.naming import MAX_NAME_DEPTH

        over = MAX_NAME_DEPTH + 1
        deep = "[a=b" * over + "]" * over
        with pytest.raises(NameSyntaxError, match="deeper"):
            parse_name_specifier(deep)

    def test_ridiculous_depth_rejected_quickly(self):
        bomb = "[a=b" * 100_000 + "]" * 100_000
        with pytest.raises(NameSyntaxError):
            parse_name_specifier(bomb)

    def test_deep_packet_cannot_crash_a_resolver(self):
        """End to end: the depth bomb arrives as a data packet and is
        dropped as malformed, with the resolver still serving."""
        from repro.experiments import InsDomain
        from repro.message import HEADER_SIZE, InsMessage
        from repro.naming import NameSpecifier
        from repro.resolver import DataPacket
        from repro.resolver.ports import INR_PORT

        domain = InsDomain(seed=888)
        inr = domain.add_inr(address="inr-a")
        domain.add_service("[service=ok[id=1]]", resolver=inr)
        client = domain.add_client(resolver=inr)
        domain.run(1.0)
        # Forge a packet whose destination name is a nesting bomb.
        bomb_text = "[a=b" * 5000 + "]" * 5000
        template = InsMessage(destination=NameSpecifier.parse("[a=b]"))
        raw = bytearray(template.encode())
        forged = raw[:HEADER_SIZE] + bomb_text.encode()
        # patch the header offsets: src empty, dst = bomb, no data
        import struct

        struct.pack_into("!III", forged, 4, HEADER_SIZE, HEADER_SIZE,
                         HEADER_SIZE + len(bomb_text))
        dropped_before = inr.stats.packets_dropped
        domain.network.send(client.address, "inr-a", INR_PORT,
                            DataPacket(raw=bytes(forged)), len(forged))
        domain.run(1.0)
        assert inr.stats.packets_dropped == dropped_before + 1
        reply = client.resolve_early(parse_name_specifier("[service=ok]"))
        domain.run(1.0)
        assert len(reply.value) == 1
