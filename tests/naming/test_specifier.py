"""Tests for NameSpecifier construction, inspection and vspaces."""

import pytest

from repro.naming import (
    AVPair,
    DEFAULT_VSPACE,
    DuplicateAttributeError,
    NameSpecifier,
    WildcardValueError,
)


class TestConstruction:
    def test_add_builds_roots_in_order(self):
        name = NameSpecifier()
        name.add("a", "1")
        name.add("b", "2")
        assert [p.attribute for p in name.roots] == ["a", "b"]

    def test_duplicate_top_level_attribute_rejected(self):
        name = NameSpecifier()
        name.add("a", "1")
        with pytest.raises(DuplicateAttributeError):
            name.add("a", "2")

    def test_from_dict_flat(self):
        name = NameSpecifier.from_dict({"room": "510", "floor": "5"})
        assert name.root("room").value == "510"
        assert name.root("floor").value == "5"

    def test_from_dict_nested(self):
        name = NameSpecifier.from_dict(
            {"service": ("camera", {"entity": "transmitter", "id": "a"}), "room": "510"}
        )
        assert name.to_wire() == "[service=camera[entity=transmitter][id=a]][room=510]"

    def test_from_dict_deeply_nested(self):
        name = NameSpecifier.from_dict(
            {"city": ("washington", {"building": ("whitehouse", {"wing": "west"})})}
        )
        assert name.root("city").child("building").child("wing").value == "west"


class TestInspection:
    def test_count_and_depth_empty(self):
        empty = NameSpecifier()
        assert empty.count() == 0
        assert empty.depth() == 0
        assert empty.is_empty

    def test_walk_covers_all_pairs(self):
        name = NameSpecifier.parse("[a=1[b=2]][c=3]")
        assert {(p.attribute, p.value) for p in name.walk()} == {
            ("a", "1"),
            ("b", "2"),
            ("c", "3"),
        }

    def test_wire_size_is_utf8_bytes(self):
        name = NameSpecifier.parse("[a=b]")
        assert name.wire_size() == len("[a=b]")


class TestConcreteness:
    def test_concrete_name(self):
        assert NameSpecifier.parse("[a=b[c=d]]").is_concrete()

    def test_wildcard_is_not_concrete(self):
        assert not NameSpecifier.parse("[a=*]").is_concrete()

    def test_range_is_not_concrete(self):
        assert not NameSpecifier.parse("[a=<5]").is_concrete()

    def test_nested_wildcard_detected(self):
        assert not NameSpecifier.parse("[a=b[c=*]]").is_concrete()

    def test_require_concrete_raises_with_attribute_in_message(self):
        with pytest.raises(WildcardValueError, match="room"):
            NameSpecifier.parse("[a=b][room=*]").require_concrete()

    def test_require_concrete_returns_self(self):
        name = NameSpecifier.parse("[a=b]")
        assert name.require_concrete() is name


class TestVspaces:
    def test_default_when_undeclared(self):
        assert NameSpecifier.parse("[a=b]").vspaces() == (DEFAULT_VSPACE,)

    def test_single_declared_vspace(self):
        name = NameSpecifier.parse("[service=camera][vspace=camera-ne43]")
        assert name.vspaces() == ("camera-ne43",)

    def test_multiple_vspaces_via_children(self):
        name = NameSpecifier.parse("[vspace=camera-ne43[extra=building-ne43]]")
        assert set(name.vspaces()) == {"camera-ne43", "building-ne43"}

    def test_empty_name_is_default_vspace(self):
        assert NameSpecifier().vspaces() == (DEFAULT_VSPACE,)


class TestEqualityAndCopy:
    def test_equality_ignores_root_order(self):
        a = NameSpecifier.parse("[a=1][b=2]")
        b = NameSpecifier.parse("[b=2][a=1]")
        assert a == b
        assert hash(a) == hash(b)

    def test_equality_is_structural(self):
        assert NameSpecifier.parse("[a=1[b=2]]") != NameSpecifier.parse("[a=1]")

    def test_copy_is_independent(self):
        original = NameSpecifier.parse("[a=1[b=2]]")
        duplicate = original.copy()
        assert duplicate == original
        duplicate.root("a").add("c", "3")
        assert duplicate != original

    def test_cached_canonical_key_tracks_mutation(self):
        """canonical_key() is cached; any structural mutation — even a
        deeply nested add_child — must invalidate the cache."""
        name = NameSpecifier.parse("[a=1[b=2]]")
        before = name.canonical_key()
        assert name.canonical_key() is before  # cached object reused
        name.root("a").child("b").add("c", "3")
        after = name.canonical_key()
        assert after != before
        assert after == NameSpecifier.parse("[a=1[b=2[c=3]]]").canonical_key()

    def test_cached_canonical_key_tracks_add_pair(self):
        name = NameSpecifier.parse("[a=1]")
        before = name.canonical_key()
        name.add("b", "2")
        assert name.canonical_key() != before
        assert name == NameSpecifier.parse("[a=1][b=2]")

    def test_str_and_repr(self):
        name = NameSpecifier.parse("[a=b]")
        assert str(name) == "[a=b]"
        assert "[a=b]" in repr(name)
