"""Fuzz-style regression tests for the binary wire codec.

The contract under test: ``decode_name`` raises ``BinaryNameError`` (a
``WireFormatError``, a ``NamingError``) for *every* undecodable buffer —
truncations, mutations, bad indexes, bad UTF-8, unbalanced nesting,
trailing bytes — and never leaks a raw ``IndexError``,
``UnicodeDecodeError`` or similar. Before the zero-copy rewrite,
truncated varints escaped as ``IndexError`` and trailing garbage after
a nested name's terminator could be silently accepted; these tests pin
the fixed behavior.
"""

import random

import pytest

from hypothesis import given, settings

from repro.naming import NamingError, WireFormatError
from repro.naming.binary import (
    BinaryNameError,
    TokenRegistry,
    compression_ratio,
    decode_name,
    encode_name,
)
from repro.naming.specifier import NameSpecifier

from ..conftest import OVAL_OFFICE_CAMERA, parse
from .test_naming_properties import name_specifiers

_MODE_SELF = 0x01
_MODE_REGISTRY = 0x02


def _frame(wire: str) -> bytes:
    return encode_name(parse(wire))


class TestErrorTaxonomy:
    def test_binary_error_is_wire_format_error(self):
        assert issubclass(BinaryNameError, WireFormatError)
        assert issubclass(WireFormatError, NamingError)

    def test_wire_format_error_exported_from_package(self):
        import repro.naming as naming

        assert naming.WireFormatError is WireFormatError


class TestTruncation:
    """Every strict prefix of a valid frame is cleanly rejected."""

    @pytest.mark.parametrize("wire", ["[a=b]", "[a=b[c=d][e=f]]", OVAL_OFFICE_CAMERA])
    def test_every_prefix_raises_binary_error(self, wire):
        frame = _frame(wire)
        for cut in range(len(frame)):
            with pytest.raises(BinaryNameError):
                decode_name(frame[:cut])

    def test_every_registry_prefix_raises_binary_error(self):
        registry = TokenRegistry()
        frame = encode_name(parse(OVAL_OFFICE_CAMERA), registry)
        for cut in range(len(frame)):
            with pytest.raises(BinaryNameError):
                decode_name(frame[:cut], registry)

    def test_empty_buffer(self):
        with pytest.raises(BinaryNameError):
            decode_name(b"")


class TestMalformedFrames:
    def test_trailing_bytes_after_terminator(self):
        frame = _frame("[a=b]")
        with pytest.raises(BinaryNameError, match="trailing"):
            decode_name(frame + b"\x00")
        with pytest.raises(BinaryNameError):
            decode_name(frame + frame)

    def test_unknown_mode_byte(self):
        with pytest.raises(BinaryNameError, match="mode"):
            decode_name(bytes([0x7F, 0x00]))

    def test_unknown_opcode(self):
        # Valid empty token table, then an opcode outside {0,1,2}.
        with pytest.raises(BinaryNameError, match="opcode"):
            decode_name(bytes([_MODE_SELF, 0x00, 0x09]))

    def test_runaway_varint(self):
        # Six continuation bytes exceed the 35-bit shift guard.
        runaway = bytes([_MODE_SELF]) + b"\xff\xff\xff\xff\xff\xff\x01"
        with pytest.raises(BinaryNameError, match="varint"):
            decode_name(runaway)

    def test_token_table_count_beyond_message(self):
        # Claims 200 tokens in a 3-byte remainder.
        with pytest.raises(BinaryNameError, match="table"):
            decode_name(bytes([_MODE_SELF, 200, 0x01, 0x61, 0x00]))

    def test_token_index_out_of_range(self):
        # One token ("a"), then ENTER referencing token 7.
        frame = bytes([_MODE_SELF, 1, 1, 0x61, 0x01, 0x00, 0x07, 0x02, 0x00])
        with pytest.raises(BinaryNameError, match="out of range"):
            decode_name(frame)

    def test_registry_index_out_of_range(self):
        registry = TokenRegistry().preload(["a", "b"])
        frame = bytes([_MODE_REGISTRY, 0x01, 0x00, 0x05, 0x02, 0x00])
        with pytest.raises(BinaryNameError):
            decode_name(frame, registry)

    def test_registry_frame_without_registry(self):
        registry = TokenRegistry()
        frame = encode_name(parse("[a=b]"), registry)
        with pytest.raises(BinaryNameError, match="registry"):
            decode_name(frame)

    def test_bad_utf8_token_bytes(self):
        # One token of length 2 holding an invalid UTF-8 sequence.
        frame = bytes([_MODE_SELF, 1, 2, 0xC3, 0x28, 0x00])
        with pytest.raises(BinaryNameError, match="token bytes"):
            decode_name(frame)

    def test_reserved_characters_in_token(self):
        # Tokens "a" and "x=y": the value smuggles a reserved character,
        # so the frame encodes an illegal name.
        bad = b"x=y"
        frame = (
            bytes([_MODE_SELF, 2, 1, 0x61, len(bad)])
            + bad
            + bytes([0x01, 0x00, 0x01, 0x02, 0x00])
        )
        with pytest.raises(BinaryNameError, match="illegal name"):
            decode_name(frame)

    def test_duplicate_sibling_attribute(self):
        # ENTER a=b, LEAVE, ENTER a=b again at the same level.
        frame = bytes(
            [_MODE_SELF, 2, 1, 0x61, 1, 0x62,
             0x01, 0x00, 0x01, 0x02,
             0x01, 0x00, 0x01, 0x02,
             0x00]
        )
        with pytest.raises(BinaryNameError, match="illegal name"):
            decode_name(frame)

    def test_leave_without_enter(self):
        frame = bytes([_MODE_SELF, 0, 0x02, 0x00])
        with pytest.raises(BinaryNameError, match="nesting"):
            decode_name(frame)

    def test_enter_without_leave_at_end(self):
        frame = bytes([_MODE_SELF, 1, 1, 0x61, 0x01, 0x00, 0x00, 0x00])
        with pytest.raises(BinaryNameError, match="nesting"):
            decode_name(frame)


class TestMutationFuzz:
    """Seeded byte-flip fuzz: decode either succeeds or raises
    BinaryNameError — no other exception type ever escapes."""

    @pytest.mark.parametrize("wire", ["[a=b[c=d][e=f]][g=h]", OVAL_OFFICE_CAMERA])
    def test_single_byte_mutations(self, wire):
        frame = bytearray(_frame(wire))
        rng = random.Random(1234)
        for _ in range(400):
            index = rng.randrange(len(frame))
            original = frame[index]
            frame[index] = rng.randrange(256)
            try:
                decode_name(bytes(frame))
            except BinaryNameError:  # lint: disable=no-silent-except -- the fuzz contract under test: this is the only permitted escape
                pass
            finally:
                frame[index] = original

    def test_random_garbage(self):
        rng = random.Random(99)
        for _ in range(400):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(40)))
            try:
                decode_name(blob)
            except BinaryNameError:  # lint: disable=no-silent-except -- the fuzz contract under test: this is the only permitted escape
                pass


class TestRoundTripProperties:
    @given(name_specifiers())
    @settings(max_examples=150, deadline=None)
    def test_self_contained_round_trip(self, name):
        frame = encode_name(name)
        assert decode_name(frame) == name
        # Re-encoding the decoded name is byte-identical: the token
        # table order is the deterministic first-seen walk order.
        assert encode_name(decode_name(frame)) == frame

    @given(name_specifiers())
    @settings(max_examples=150, deadline=None)
    def test_registry_round_trip(self, name):
        sender, receiver = TokenRegistry(), TokenRegistry()
        frame = encode_name(name, sender)
        # The receiver's registry learns the same token<->index mapping
        # from the same announcement stream (here: the name itself).
        receiver.preload(sender._by_index)
        assert decode_name(frame, receiver) == name
        assert encode_name(name, sender) == frame  # stable once interned

    def test_memoryview_input(self):
        frame = _frame(OVAL_OFFICE_CAMERA)
        padded = b"\xaa" + frame + b"\xbb"
        assert decode_name(memoryview(padded)[1:-1]) == parse(OVAL_OFFICE_CAMERA)


class TestCompressionRatioRegression:
    def test_empty_name_defined_as_one(self):
        """Regression: the empty name has zero string bytes; the ratio
        used to divide by zero."""
        assert compression_ratio(NameSpecifier()) == 1.0
        assert compression_ratio(NameSpecifier(), TokenRegistry()) == 1.0
