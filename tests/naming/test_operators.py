"""Tests for value matchers: exact, wild-card and range operators."""

import pytest

from repro.naming import (
    LiteralMatcher,
    RangeMatcher,
    WildcardMatcher,
    classify_value,
    is_operator_value,
    is_wildcard,
    parse_number,
)


class TestClassification:
    def test_plain_value_is_literal(self):
        matcher = classify_value("washington")
        assert isinstance(matcher, LiteralMatcher)
        assert not matcher.is_multi

    def test_star_is_wildcard(self):
        matcher = classify_value("*")
        assert isinstance(matcher, WildcardMatcher)
        assert matcher.is_multi

    @pytest.mark.parametrize("value,op,bound", [
        ("<20", "<", "20"),
        (">5", ">", "5"),
        ("<=7.5", "<=", "7.5"),
        (">=-3", ">=", "-3"),
    ])
    def test_range_operators(self, value, op, bound):
        matcher = classify_value(value)
        assert isinstance(matcher, RangeMatcher)
        assert matcher.operator == op
        assert matcher.bound == bound
        assert matcher.is_multi

    def test_longest_operator_wins(self):
        assert classify_value("<=9").operator == "<="
        assert classify_value("<9").operator == "<"

    def test_is_operator_value(self):
        assert is_operator_value("*")
        assert is_operator_value("<10")
        assert not is_operator_value("plain")
        # '*' only counts when it IS the whole token (values are opaque)
        assert not is_operator_value("a*b")

    def test_is_wildcard(self):
        assert is_wildcard("*")
        assert not is_wildcard("**")


class TestLiteralMatching:
    def test_matches_exactly(self):
        assert LiteralMatcher("x").matches("x")
        assert not LiteralMatcher("x").matches("X")


class TestWildcardMatching:
    def test_matches_everything(self):
        matcher = WildcardMatcher()
        assert matcher.matches("anything")
        assert matcher.matches("")


class TestRangeMatching:
    def test_numeric_comparisons(self):
        assert RangeMatcher("<", "20").matches("12")
        assert not RangeMatcher("<", "20").matches("20")
        assert RangeMatcher("<=", "20").matches("20")
        assert RangeMatcher(">", "20").matches("21")
        assert RangeMatcher(">=", "20").matches("20")

    def test_numeric_not_lexicographic_for_numbers(self):
        # Lexicographically "9" > "12"; numerically 9 < 12.
        assert RangeMatcher("<", "12").matches("9")

    def test_float_bounds(self):
        assert RangeMatcher(">=", "2.5").matches("2.75")
        assert not RangeMatcher(">=", "2.5").matches("2.25")

    def test_lexicographic_fallback_for_strings(self):
        assert RangeMatcher("<", "m").matches("apple")
        assert not RangeMatcher("<", "m").matches("zebra")

    def test_numeric_bound_never_selects_non_numbers(self):
        # room >= 12 must not select "annex"
        assert not RangeMatcher("<", "20").matches("1abc")
        assert not RangeMatcher(">=", "12").matches("annex")

    def test_rejects_empty_bound(self):
        with pytest.raises(ValueError):
            RangeMatcher("<", "")

    def test_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            RangeMatcher("==", "5")


class TestParseNumber:
    def test_integers(self):
        assert parse_number("42") == 42
        assert parse_number("-7") == -7

    def test_floats(self):
        assert parse_number("2.5") == 2.5

    def test_non_numeric(self):
        assert parse_number("abc") is None
        assert parse_number("") is None
