"""Tests for spans, the tracer, and span-tree well-formedness."""

from repro.obs import (
    DROP_PREFIX,
    NO_PARENT,
    STATUS_OK,
    STATUS_OPEN,
    TraceContext,
    Tracer,
    trace_tree_errors,
    well_formed_traces,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestTracer:
    def test_root_span_starts_a_fresh_trace(self):
        tracer = Tracer(FakeClock())
        a = tracer.start_span("client.request")
        b = tracer.start_span("client.request")
        assert a.is_root and b.is_root
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_child_inherits_trace_and_parents_on_the_span(self):
        tracer = Tracer(FakeClock())
        root = tracer.start_span("client.request")
        child = tracer.start_span("inr.hop", parent=root.context)
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == root.span_id
        assert not child.is_root

    def test_context_reparents_for_the_next_hop(self):
        # The wire context a hop emits names *itself* as the parent, so
        # the next hop's span nests under this one.
        tracer = Tracer(FakeClock())
        root = tracer.start_span("client.request")
        hop1 = tracer.start_span("inr.hop", parent=root.context)
        hop2 = tracer.start_span("inr.hop", parent=hop1.context)
        assert hop2.parent_span_id == hop1.span_id
        assert hop2.trace_id == root.trace_id

    def test_end_span_is_idempotent_first_close_wins(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        span = tracer.start_span("inr.hop")
        clock.now = 1.0
        tracer.end_span(span, "forwarded")
        clock.now = 2.0
        tracer.end_span(span, DROP_PREFIX + "hop-limit")
        assert span.status == "forwarded"
        assert span.end == 1.0

    def test_span_lifecycle_and_duration(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        span = tracer.start_span("s")
        assert span.status == STATUS_OPEN
        assert span.duration == 0.0
        clock.now = 0.5
        tracer.end_span(span)
        assert span.status == STATUS_OK
        assert span.duration == 0.5

    def test_drop_status_exposes_the_cause(self):
        tracer = Tracer(FakeClock())
        span = tracer.start_span("inr.hop")
        tracer.end_span(span, DROP_PREFIX + "no-route")
        assert span.is_drop
        assert span.drop_cause == "no-route"

    def test_annotations_are_timestamped(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        span = tracer.start_span("client.request")
        clock.now = 0.25
        tracer.annotate(span, "attempt 2 -> inr-2")
        assert span.events == [(0.25, "attempt 2 -> inr-2")]

    def test_same_seed_same_operations_same_ids(self):
        def run():
            tracer = Tracer(FakeClock())
            root = tracer.start_span("r")
            tracer.start_span("c", parent=root.context)
            return [(s.trace_id, s.span_id, s.parent_span_id)
                    for s in tracer.spans]

        assert run() == run()


class TestWellFormedness:
    def _tree(self, tracer):
        root = tracer.start_span("client.request")
        hop = tracer.start_span("inr.hop", parent=root.context)
        tracer.end_span(hop)
        tracer.end_span(root)
        return root, hop

    def test_complete_tree_has_no_errors(self):
        tracer = Tracer(FakeClock())
        self._tree(tracer)
        assert trace_tree_errors(tracer.spans) == []
        assert well_formed_traces(tracer.spans) == {}

    def test_duplicated_packet_yields_sibling_spans_not_a_defect(self):
        # A duplicated datagram is processed twice: two hop spans with
        # the same parent. That is the true causal history, not an error.
        tracer = Tracer(FakeClock())
        root = tracer.start_span("client.request")
        for _ in range(2):
            tracer.end_span(tracer.start_span("inr.hop", parent=root.context))
        tracer.end_span(root)
        assert trace_tree_errors(tracer.spans) == []

    def test_reordered_spans_still_form_the_tree(self):
        # Reordering delays packets, so a child may start (and be listed)
        # after a sibling that was sent later; tree shape is id-based,
        # not order-based.
        clock = FakeClock()
        tracer = Tracer(clock)
        root = tracer.start_span("client.request")
        clock.now = 2.0  # the held-back packet processed late
        late = tracer.start_span("inr.hop", parent=root.context)
        tracer.end_span(late)
        assert trace_tree_errors(tracer.spans) == []

    def test_missing_parent_detected(self):
        tracer = Tracer(FakeClock())
        orphan = tracer.start_span(
            "inr.hop", parent=TraceContext(trace_id=9, span_id=99,
                                           parent_span_id=NO_PARENT)
        )
        errors = trace_tree_errors([orphan])
        assert any("unknown parent" in error for error in errors)

    def test_multiple_roots_detected(self):
        tracer = Tracer(FakeClock())
        a = tracer.start_span("r1")
        b = tracer.start_span("r2")
        errors = trace_tree_errors([a, b])
        assert any("exactly one root" in error for error in errors)

    def test_empty_trace_detected(self):
        assert trace_tree_errors([]) == ["trace has no spans"]
