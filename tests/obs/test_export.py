"""Tests for the span/metric exporters."""

import json

from repro.obs import (
    DROP_PREFIX,
    MetricsRegistry,
    Tracer,
    render_timeline,
    spans_to_jsonl,
    summarize_spans,
    to_chrome_trace,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_trace():
    """One finished two-hop trace plus one dropped single-hop trace."""
    clock = FakeClock()
    tracer = Tracer(clock)
    root = tracer.start_span("client.request", node="client-1")
    clock.now = 0.001
    hop = tracer.start_span("inr.hop", node="inr-1", parent=root.context)
    clock.now = 0.002
    tracer.end_span(hop, "forwarded")
    clock.now = 0.003
    tracer.end_span(root)
    dropped_root = tracer.start_span("client.request", node="client-2")
    drop = tracer.start_span("inr.hop", node="inr-1",
                             parent=dropped_root.context)
    tracer.end_span(drop, DROP_PREFIX + "no-route")
    tracer.end_span(dropped_root, "timeout")
    return tracer


class TestJsonl:
    def test_one_sorted_object_per_line_in_start_order(self):
        tracer = make_trace()
        lines = spans_to_jsonl(tracer.spans).splitlines()
        assert len(lines) == 4
        decoded = [json.loads(line) for line in lines]
        starts = [(d["start"], d["span_id"]) for d in decoded]
        assert starts == sorted(starts)
        for d in decoded:
            assert list(d) == sorted(d)

    def test_byte_identical_across_identical_traces(self):
        assert spans_to_jsonl(make_trace().spans) == \
            spans_to_jsonl(make_trace().spans)


class TestTimeline:
    def test_children_indent_under_parents(self):
        tracer = make_trace()
        text = render_timeline(tracer.spans, trace_id=1)
        lines = text.splitlines()
        assert lines[0].startswith("trace 1")
        request = next(line for line in lines if "client.request" in line)
        hop = next(line for line in lines if "inr.hop" in line)
        assert len(hop) - len(hop.lstrip()) > \
            len(request) - len(request.lstrip())

    def test_drop_status_is_visible(self):
        tracer = make_trace()
        assert "drop:no-route" in render_timeline(tracer.spans)


class TestChromeTrace:
    def test_schema_and_node_rows(self):
        tracer = make_trace()
        trace = to_chrome_trace(tracer.spans)
        events = trace["traceEvents"]
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {"client-1", "client-2", "inr-1"}
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 4
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "span_id" in event["args"]

    def test_microsecond_timestamps(self):
        tracer = make_trace()
        complete = [e for e in to_chrome_trace(tracer.spans)["traceEvents"]
                    if e["ph"] == "X" and e["name"] == "inr.hop"
                    and e["args"]["status"] == "forwarded"]
        assert complete[0]["ts"] == 1000.0  # 0.001 s
        assert complete[0]["dur"] == 1000.0

    def test_unfinished_span_flagged_not_dropped(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        tracer.start_span("stuck", node="inr-1")
        events = [e for e in to_chrome_trace(tracer.spans)["traceEvents"]
                  if e["ph"] == "X"]
        assert events[0]["args"]["unfinished"] is True


class TestSummarize:
    def test_counts_percentiles_and_drop_attribution(self):
        tracer = make_trace()
        summary = summarize_spans(tracer.spans)
        assert summary["spans"] == 4
        assert summary["traces"] == 2
        assert summary["max_spans_per_trace"] == 2
        assert summary["by_name"]["inr.hop"]["count"] == 2
        assert summary["drop_attribution"] == {"no-route": 1}

    def test_empty_input(self):
        summary = summarize_spans([])
        assert summary["spans"] == 0
        assert summary["traces"] == 0
        assert summary["drop_attribution"] == {}


class TestMetricsJson:
    def test_registry_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("inr.packets_routed").inc(5.0, inr="inr-1")
        decoded = json.loads(registry.to_json())
        assert decoded["counters"]["inr.packets_routed"]["inr=inr-1"] == 5.0
