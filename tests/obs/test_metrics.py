"""Tests for the unified metrics registry."""

import math

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_counts,
)


class TestCounter:
    def test_counts_per_label_set(self):
        counter = Counter("requests")
        counter.inc(inr="inr-1")
        counter.inc(2.0, inr="inr-1")
        counter.inc(inr="inr-2")
        assert counter.value(inr="inr-1") == 3.0
        assert counter.value(inr="inr-2") == 1.0
        assert counter.total() == 4.0

    def test_label_order_is_canonical(self):
        counter = Counter("c")
        counter.inc(b="2", a="1")
        assert counter.value(a="1", b="2") == 1.0
        assert counter.snapshot() == {"a=1,b=2": 1.0}

    def test_decrease_rejected(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").inc(-1.0)

    def test_unlabelled_series(self):
        counter = Counter("c")
        counter.inc()
        assert counter.snapshot() == {"": 1.0}


class TestGauge:
    def test_set_overwrites_add_accumulates(self):
        gauge = Gauge("names")
        gauge.set(5.0, vspace="default")
        gauge.set(7.0, vspace="default")
        gauge.add(1.0, vspace="default")
        assert gauge.value(vspace="default") == 8.0


class TestHistogram:
    def test_buckets_and_count_and_sum(self):
        histogram = Histogram("latency", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        snap = histogram.snapshot()[""]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(5.555)
        assert snap["buckets"]["+Inf"] == 1

    def test_percentile_reports_bucket_bound(self):
        histogram = Histogram("latency", buckets=(0.01, 0.1, 1.0))
        for _ in range(99):
            histogram.observe(0.005)
        histogram.observe(0.5)
        assert histogram.percentile(0.50) == 0.01
        assert histogram.percentile(1.00) == 1.0

    def test_percentile_of_empty_series_is_nan(self):
        assert math.isnan(Histogram("h").percentile(0.5))

    def test_snapshot_carries_deterministic_quantiles(self):
        histogram = Histogram("latency", buckets=(0.01, 0.1, 1.0))
        for _ in range(95):
            histogram.observe(0.005)
        for _ in range(4):
            histogram.observe(0.05)
        histogram.observe(0.5)
        snap = histogram.snapshot()[""]
        assert snap["quantiles"] == {"p50": 0.01, "p95": 0.01, "p99": 0.1}
        # Same statistic percentile() reports — one schema, two views.
        for name, q in Histogram.QUANTILES:
            assert snap["quantiles"][name] == histogram.percentile(q)

    def test_snapshot_quantiles_respect_labels(self):
        histogram = Histogram("latency", buckets=(0.01, 1.0))
        histogram.observe(0.005, inr="a")
        histogram.observe(0.5, inr="b")
        snap = histogram.snapshot()
        assert snap["inr=a"]["quantiles"]["p99"] == 0.01
        assert snap["inr=b"]["quantiles"]["p99"] == 1.0

    def test_no_buckets_rejected(self):
        with pytest.raises(ValueError, match="bucket"):
            Histogram("h", buckets=())


class TestRegistry:
    def test_families_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_ingest_maps_snapshot_fields_to_labelled_counters(self):
        registry = MetricsRegistry()
        registry.ingest(
            "inr",
            {
                "packets_forwarded": 3,
                "drops_by_cause": {"no-route": 2, "hop-limit": 1},
                "terminated": True,  # bool: configuration, not a count
                "address": "inr-1",  # non-numeric: skipped
            },
            inr="inr-1",
        )
        snap = registry.snapshot()
        assert snap["counters"]["inr.packets_forwarded"] == {"inr=inr-1": 3.0}
        assert snap["counters"]["inr.drops_by_cause"] == {
            "cause=hop-limit,inr=inr-1": 1.0,
            "cause=no-route,inr=inr-1": 2.0,
        }
        assert "inr.terminated" not in snap["counters"]

    def test_snapshot_groups_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(0.5)
        snap = registry.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}

    def test_to_json_is_deterministic(self):
        def build() -> MetricsRegistry:
            registry = MetricsRegistry()
            # Deliberately unordered operations; the snapshot must not
            # depend on insertion order.
            registry.counter("b").inc(2.0, z="1", a="2")
            registry.counter("a").inc(1.0)
            registry.gauge("g").set(3.0, node="n2")
            registry.gauge("g").set(1.0, node="n1")
            return registry

        assert build().to_json() == build().to_json()


class TestMergeCounts:
    def test_sums_numeric_fields_across_snapshots(self):
        totals = merge_counts(
            [
                {"retries": 2, "failovers": 1, "resolver": "inr-1"},
                {"retries": 3, "failovers": 0, "resolver": "inr-2"},
            ]
        )
        assert totals["retries"] == 5.0
        assert totals["failovers"] == 1.0
        assert "resolver" not in totals

    def test_nested_mappings_sum_per_inner_key(self):
        totals = merge_counts(
            [
                {"drops_by_cause": {"no-route": 1}},
                {"drops_by_cause": {"no-route": 2, "hop-limit": 1}},
            ]
        )
        assert totals["drops_by_cause.no-route"] == 3.0
        assert totals["drops_by_cause.hop-limit"] == 1.0

    def test_bools_are_not_counts(self):
        assert merge_counts([{"terminated": True}]) == {}
