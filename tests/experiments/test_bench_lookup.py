"""Smoke tests for the BENCH_lookup.json emission path.

The real numbers come from ``benchmarks/bench_fig12_lookup_performance``
(not run in tier 1); these tests run tiny versions of the same
experiments so the ablation and the JSON schema cannot rot unnoticed.
"""

import json

from repro.experiments.fig12 import (
    run_lookup_experiment,
    run_memo_ablation,
    run_update_ingestion_bench,
    write_bench_lookup_json,
)


class TestMemoAblation:
    def test_small_ablation_counters(self):
        result = run_memo_ablation(
            names_in_tree=300,
            distinct_queries=8,
            lookups=400,
            refresh_every=50,
        )
        # Each distinct query misses exactly once; refreshes never
        # invalidate; everything else hits.
        assert result.memo_misses == 8
        assert result.memo_hits == 400 - 8
        assert result.memo_invalidations == 0
        assert result.refreshes_during_cached_run == 8
        assert result.uncached_lookups_per_second > 0
        assert result.cached_lookups_per_second > 0

    def test_memoized_curve_still_runs(self):
        rows = run_lookup_experiment(
            name_counts=(100,), lookups_per_point=50, memoize=True
        )
        assert rows[0].lookups_per_second > 0


class TestBenchLookupJson:
    def test_emission_schema(self, tmp_path):
        curve = run_lookup_experiment(name_counts=(100,), lookups_per_point=50)
        ablation = run_memo_ablation(
            names_in_tree=200, distinct_queries=4, lookups=100
        )
        path = tmp_path / "BENCH_lookup.json"
        payload = write_bench_lookup_json(path, curve, ablation)
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert on_disk["benchmark"] == "fig12-lookup"
        assert on_disk["schema_version"] == 2
        assert on_disk["update_ingestion"] is None
        assert on_disk["curve"][0]["names_in_tree"] == 100
        assert on_disk["curve"][0]["lookups_per_second"] > 0
        ab = on_disk["memo_ablation"]
        assert ab["memo_hits"] > 0
        assert set(ab) == {
            "names_in_tree",
            "distinct_queries",
            "lookups",
            "uncached_lookups_per_second",
            "cached_lookups_per_second",
            "speedup",
            "memo_hits",
            "memo_misses",
            "refreshes_during_cached_run",
            "memo_invalidations",
        }

    def test_emission_without_ablation(self, tmp_path):
        curve = run_lookup_experiment(name_counts=(100,), lookups_per_point=50)
        path = tmp_path / "BENCH_lookup.json"
        payload = write_bench_lookup_json(path, curve)
        assert payload["memo_ablation"] is None
        assert payload["update_ingestion"] is None
        assert json.loads(path.read_text()) == payload

    def test_emission_with_ingestion(self, tmp_path):
        curve = run_lookup_experiment(name_counts=(100,), lookups_per_point=50)
        ingestion = run_update_ingestion_bench(
            names_in_tree=150, refresh_rounds=2
        )
        path = tmp_path / "BENCH_lookup.json"
        payload = write_bench_lookup_json(path, curve, ingestion=ingestion)
        block = payload["update_ingestion"]
        assert block["names_in_tree"] == 150
        assert block["updates_applied"] == 300
        assert block["legacy_updates_per_second"] > 0
        assert block["batched_updates_per_second"] > 0
        assert block["speedup"] == ingestion.speedup
        assert json.loads(path.read_text()) == payload
