"""Tests for the uniform workload generator (Section 5.1 parameters)."""

import random

import pytest

from repro.experiments import UniformWorkload
from repro.nametree import NameTree


def make(seed=0, **kwargs):
    defaults = dict(depth=3, attribute_range=3, value_range=3,
                    attributes_per_level=2)
    defaults.update(kwargs)
    return UniformWorkload(rng=random.Random(seed), **defaults)


class TestGeneration:
    def test_names_have_requested_depth(self):
        workload = make(depth=3)
        for _ in range(20):
            assert workload.random_name().depth() == 3

    def test_names_have_requested_breadth(self):
        workload = make(attributes_per_level=2)
        for _ in range(20):
            name = workload.random_name()
            assert len(name.roots) == 2
            for root in name.roots:
                assert len(root.children) == 2

    def test_av_pair_count_matches_geometry(self):
        """n_a attributes per level, d levels -> sum n_a^i pairs."""
        workload = make(depth=3, attributes_per_level=2)
        assert workload.random_name().count() == 2 + 4 + 8

    def test_attribute_range_respected(self):
        workload = make(attribute_range=3)
        for _ in range(20):
            for pair in workload.random_name().walk():
                assert pair.attribute in {"a0", "a1", "a2"}

    def test_token_padding_widens_names(self):
        narrow = make().average_wire_size(50)
        wide = make(token_pad=3).average_wire_size(50)
        assert wide > narrow

    def test_determinism_by_seed(self):
        a = [make(seed=5).random_name().to_wire() for _ in range(1)]
        b = [make(seed=5).random_name().to_wire() for _ in range(1)]
        assert a == b

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            make(attributes_per_level=9, attribute_range=3)
        with pytest.raises(ValueError):
            make(depth=0)


class TestDistinctNames:
    def test_requested_count_all_distinct(self):
        names = make().distinct_names(200)
        assert len(names) == 200
        assert len({n.canonical_key() for n in names}) == 200

    def test_impossible_count_raises(self):
        tiny = make(depth=1, attribute_range=2, value_range=1,
                    attributes_per_level=2)
        # only one possible name exists in this namespace
        with pytest.raises(ValueError):
            tiny.distinct_names(5, max_attempts_factor=10)


class TestQueriesAndTrees:
    def test_wildcard_probability_zero_yields_concrete(self):
        workload = make()
        assert workload.random_query(0.0).is_concrete()

    def test_wildcard_probability_one_stars_all_leaves(self):
        workload = make()
        query = workload.random_query(1.0)
        for pair in query.walk():
            if pair.is_leaf:
                assert pair.value == "*"

    def test_populate_tree(self):
        workload = make()
        tree = NameTree()
        records = workload.populate_tree(tree, 50)
        assert len(tree) == 50
        assert len(records) == 50

    def test_vspace_attached_when_configured(self):
        workload = make(vspace="cameras")
        assert workload.random_name().vspaces() == ("cameras",)
