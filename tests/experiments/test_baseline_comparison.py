"""Tests for the INS-vs-DNS mobility comparison experiment."""

import math

import pytest

from repro.experiments.baseline_dns import run_mobility_comparison


@pytest.fixture(scope="module")
def rows():
    return run_mobility_comparison(seed=0)


class TestMobilityComparison:
    def test_three_systems_compared(self, rows):
        assert [row.system.split(" ")[0] for row in rows] == ["INS", "DNS", "DNS"]

    def test_ins_is_essentially_lossless(self, rows):
        ins = rows[0]
        assert ins.delivered >= ins.requests_sent - 2
        assert ins.outage_seconds < 2.0

    def test_dns_with_fix_suffers_ttl_outage(self, rows):
        fixed = rows[1]
        assert fixed.delivered < fixed.requests_sent
        # outage is bounded by the record TTL (60 s) but substantial
        assert 10.0 < fixed.outage_seconds <= 65.0

    def test_stale_dns_never_recovers(self, rows):
        stale = rows[2]
        assert math.isinf(stale.outage_seconds)
        # it delivered only the pre-move traffic
        assert stale.delivered < rows[0].delivered / 2

    def test_identical_workloads(self, rows):
        sent = {row.requests_sent for row in rows}
        assert len(sent) == 1
