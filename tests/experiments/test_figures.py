"""Scaled-down shape checks for every figure experiment (Section 5).

The full-size sweeps live in benchmarks/; these verify, quickly, that
each experiment reproduces the paper's qualitative result.
"""

import pytest

from repro.experiments.fig08 import run_saturation_experiment, saturation_point
from repro.experiments.fig09 import run_partition_experiment
from repro.experiments.fig12 import run_lookup_experiment
from repro.experiments.fig13 import run_size_experiment
from repro.experiments.fig14 import run_discovery_experiment, slope_ms_per_hop
from repro.experiments.fig15 import run_routing_experiment
from repro.resolver import CostModel


class TestFig08Shape:
    def test_cpu_saturates_before_bandwidth(self):
        rows = run_saturation_experiment(
            name_counts=(5000, 10000, 15000, 20000), measure_intervals=1
        )
        by_names = {row.total_names: row for row in rows}
        # CPU crosses 100% somewhere in 10k-15k names...
        assert by_names[10000].cpu_percent < 100 <= by_names[15000].cpu_percent
        # ...while bandwidth never reaches the 1 Mbps link capacity.
        assert all(row.bandwidth_percent < 100 for row in rows)
        # and CPU leads bandwidth at every point (the CPU-bound claim).
        assert all(row.cpu_percent > row.bandwidth_percent for row in rows)

    def test_both_scale_linearly_with_names(self):
        rows = run_saturation_experiment(name_counts=(2500, 5000, 10000),
                                         measure_intervals=1)
        assert rows[1].cpu_percent == pytest.approx(2 * rows[0].cpu_percent, rel=0.05)
        assert rows[2].cpu_percent == pytest.approx(4 * rows[0].cpu_percent, rel=0.05)

    def test_saturation_point_helper(self):
        rows = run_saturation_experiment(name_counts=(1000, 20000),
                                         measure_intervals=1)
        assert saturation_point(rows) == 20000
        assert saturation_point(rows[:1]) == -1


class TestFig09Shape:
    def test_two_machines_halve_processing_time(self):
        rows = run_partition_experiment(name_counts=(1000, 2000))
        for row in rows:
            assert row.two_vspaces_two_machines_ms == pytest.approx(
                row.one_vspace_one_machine_ms / 2, rel=0.1
            )

    def test_two_vspaces_on_one_machine_do_not_help(self):
        rows = run_partition_experiment(name_counts=(1000,))
        row = rows[0]
        assert row.two_vspaces_one_machine_ms == pytest.approx(
            row.one_vspace_one_machine_ms, rel=0.1
        )

    def test_time_grows_linearly_with_names(self):
        rows = run_partition_experiment(name_counts=(1000, 3000))
        assert rows[1].one_vspace_one_machine_ms == pytest.approx(
            3 * rows[0].one_vspace_one_machine_ms, rel=0.1
        )


class TestFig12Shape:
    def test_throughput_decays_mildly(self):
        rows = run_lookup_experiment(name_counts=(200, 2000), lookups_per_point=200)
        small, large = rows[0], rows[1]
        assert large.lookups_per_second < small.lookups_per_second
        # mild decay, not collapse: within 5x across a 10x size range
        assert large.lookups_per_second > small.lookups_per_second / 5

    def test_rates_are_high(self):
        """The implementation should sustain at least hundreds of
        lookups per second even on modest hardware."""
        rows = run_lookup_experiment(name_counts=(1000,), lookups_per_point=200)
        assert rows[0].lookups_per_second > 300


class TestFig13Shape:
    def test_memory_grows_linearly_after_vocabulary_fills(self):
        # Structural (node) growth tails off after the first few
        # thousand names; past that, additions are records + pointers
        # and growth is linear (the paper's Figure 13 shape).
        # Hash-container capacity doubling makes the instantaneous
        # slope lumpy (Java showed the same), so we bound the ratio of
        # successive slopes rather than demanding exact linearity.
        rows = run_size_experiment(name_counts=(4000, 8000, 12000))
        per_name_1 = (rows[1].tree_bytes - rows[0].tree_bytes) / 4000
        per_name_2 = (rows[2].tree_bytes - rows[1].tree_bytes) / 4000
        assert 1 / 3 <= per_name_2 / per_name_1 <= 3
        assert rows[0].tree_bytes < rows[1].tree_bytes < rows[2].tree_bytes

    def test_early_growth_steeper_than_late(self):
        rows = run_size_experiment(name_counts=(500, 1000, 8000, 12000))
        early = (rows[1].tree_bytes - rows[0].tree_bytes) / 500
        late = (rows[3].tree_bytes - rows[2].tree_bytes) / 4000
        assert early > late

    def test_megabyte_scale(self):
        rows = run_size_experiment(name_counts=(2000,))
        assert 0.1 < rows[0].tree_megabytes < 20


class TestFig14Shape:
    def test_discovery_time_linear_in_hops(self):
        rows = run_discovery_experiment(max_hops=5)
        slope = slope_ms_per_hop(rows)
        assert slope < 10.0  # the paper's bound
        # near-perfect linearity: residuals small relative to the slope
        for row in rows:
            predicted = rows[0].discovery_ms + slope * (row.hops - 1)
            assert row.discovery_ms == pytest.approx(predicted, rel=0.15)

    def test_absolute_times_are_tens_of_ms(self):
        rows = run_discovery_experiment(max_hops=5)
        assert rows[-1].discovery_ms < 100.0


class TestFig15Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_routing_experiment(name_counts=(250, 2500))

    def test_local_case_grows_with_names(self, rows):
        assert rows[1].local_ms > 2 * rows[0].local_ms

    def test_local_per_packet_matches_paper_range(self, rows):
        assert rows[0].local_ms / 100 == pytest.approx(3.1, rel=0.15)

    def test_remote_case_flat(self, rows):
        assert rows[1].remote_same_vspace_ms == pytest.approx(
            rows[0].remote_same_vspace_ms, rel=0.05
        )

    def test_remote_per_packet_near_9_8ms(self, rows):
        assert rows[0].remote_same_vspace_ms / 100 == pytest.approx(9.8, rel=0.1)

    def test_cross_vspace_constant_near_381ms(self, rows):
        for row in rows:
            assert row.remote_other_vspace_ms == pytest.approx(381, rel=0.1)

    def test_artifact_ablation_flattens_local_case(self):
        rows = run_routing_experiment(
            name_counts=(250, 2500),
            costs=CostModel(model_delivery_artifact=False),
        )
        assert rows[1].local_ms == pytest.approx(rows[0].local_ms, rel=0.05)
