"""Tests for the domain time-series sampler."""

import pytest

from repro.experiments import InsDomain
from repro.experiments.metrics import DomainSampler
from repro.resolver import ResolutionRequest
from repro.resolver.ports import INR_PORT

from ..conftest import parse


class TestSampler:
    def test_samples_accumulate_over_time(self):
        domain = InsDomain(seed=900)
        inr = domain.add_inr(address="inr-a")
        sampler = DomainSampler(domain, interval=1.0).start()
        domain.run(5.5)
        series = sampler.series("inr-a")
        assert len(series) == 5
        times = [s.time for s in series]
        assert times == sorted(times)

    def test_utilization_reflects_load(self):
        domain = InsDomain(seed=901)
        inr = domain.add_inr(address="inr-a")
        domain.add_service("[service=m[id=1]]", resolver=inr)
        client = domain.add_client(resolver=inr)
        domain.settle()
        sampler = DomainSampler(domain, interval=1.0).start()
        domain.run(2.0)  # quiet baseline
        # 400 lookups/s at 1.5 ms each ~ 60% utilization
        query = parse("[service=m]")
        for i in range(800):
            domain.sim.schedule(
                2.0 + i / 400.0,
                lambda: client.send(
                    inr.address, INR_PORT,
                    ResolutionRequest(name=query, reply_to=client.address,
                                      reply_port=client.port),
                ),
            )
        domain.run(4.0)
        quiet = sampler.series("inr-a")[0].cpu_utilization
        peak = sampler.peak_utilization("inr-a")
        assert quiet < 0.05
        assert 0.3 < peak < 1.0

    def test_name_counts_sampled(self):
        domain = InsDomain(seed=902)
        inr = domain.add_inr(address="inr-a")
        sampler = DomainSampler(domain, interval=1.0).start()
        domain.run(2.0)
        domain.add_service("[service=m[id=1]]", resolver=inr)
        domain.run(2.5)
        series = sampler.series("inr-a")
        assert series[0].names == 0
        assert series[-1].names == 1

    def test_terminated_inrs_drop_out(self):
        domain = InsDomain(seed=903)
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        sampler = DomainSampler(domain, interval=1.0).start()
        domain.run(2.0)
        b.terminate()
        domain.run(3.0)
        late = [s for s in sampler.samples if s.time > domain.now - 2.0]
        assert all(s.address != "inr-b" for s in late)

    def test_stop_halts_sampling(self):
        domain = InsDomain(seed=904)
        domain.add_inr()
        sampler = DomainSampler(domain, interval=1.0).start()
        domain.run(2.5)
        count = len(sampler.samples)
        sampler.stop()
        domain.run(5.0)
        assert len(sampler.samples) == count

    def test_timeline_groups_by_time(self):
        domain = InsDomain(seed=905)
        domain.add_inr(address="inr-a")
        domain.add_inr(address="inr-b")
        sampler = DomainSampler(domain, interval=1.0).start()
        domain.run(3.5)
        timeline = sampler.timeline()
        assert len(timeline) == 3
        for _time, utilizations in timeline:
            assert set(utilizations) == {"inr-a", "inr-b"}

    def test_invalid_interval_rejected(self):
        domain = InsDomain(seed=906)
        with pytest.raises(ValueError):
            DomainSampler(domain, interval=0.0)

    def test_double_start_rejected(self):
        domain = InsDomain(seed=907)
        sampler = DomainSampler(domain).start()
        with pytest.raises(RuntimeError):
            sampler.start()
