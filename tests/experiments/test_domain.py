"""Tests for the InsDomain experiment harness itself."""

import pytest

from repro.experiments import DSR_HOST, InsDomain
from repro.resolver import INR


class TestWiring:
    def test_domain_starts_with_a_dsr(self):
        domain = InsDomain(seed=500)
        assert domain.network.has_node(DSR_HOST)
        assert domain.dsr.active_inrs == ()

    def test_auto_addresses_are_unique(self):
        domain = InsDomain(seed=501)
        a = domain.add_inr()
        b = domain.add_inr()
        assert a.address != b.address

    def test_explicit_addresses_respected(self):
        domain = InsDomain(seed=502)
        inr = domain.add_inr(address="my-inr")
        assert inr.address == "my-inr"

    def test_services_and_clients_tracked(self):
        domain = InsDomain(seed=503)
        inr = domain.add_inr()
        domain.add_service("[service=x[id=1]]", resolver=inr)
        domain.add_client(resolver=inr)
        assert len(domain.services) == 1
        assert len(domain.clients) == 1

    def test_resolver_reference_accepts_inr_or_address(self):
        domain = InsDomain(seed=504)
        inr = domain.add_inr()
        by_object = domain.add_client(resolver=inr)
        by_address = domain.add_client(resolver=inr.address)
        assert by_object.resolver == by_address.resolver == inr.address

    def test_colocating_apps_on_one_node(self):
        domain = InsDomain(seed=505)
        inr = domain.add_inr()
        first = domain.add_service("[service=x[id=1]]", address="shared",
                                   resolver=inr)
        second = domain.add_service("[service=x[id=2]]", address="shared",
                                    resolver=inr)
        assert first.node is second.node
        assert first.port != second.port

    def test_candidate_registration(self):
        domain = InsDomain(seed=506)
        address = domain.add_candidate()
        assert domain.dsr.candidates == (address,)

    def test_spawner_creates_running_inr(self):
        domain = InsDomain(seed=507)
        domain.add_inr()
        domain.network.add_node("spare-x")
        spawned = domain.spawn_inr("spare-x", ("default",))
        assert isinstance(spawned, INR)
        assert spawned.was_spawned
        domain.run(2.0)
        assert "spare-x" in domain.dsr.active_inrs

    def test_determinism_across_identical_domains(self):
        def build_and_run(seed):
            domain = InsDomain(seed=seed)
            inr = domain.add_inr()
            domain.add_service("[service=d[id=1]]", resolver=inr)
            domain.run(10.0)
            # The trailing rng draw captures the whole run's random
            # history (jittered timers), not just event counts.
            return (domain.now, inr.stats.advertisements_processed,
                    domain.sim.events_processed, domain.sim.rng.random())

        assert build_and_run(7) == build_and_run(7)
        assert build_and_run(7) != build_and_run(8)

    def test_run_and_now(self):
        domain = InsDomain(seed=508)
        start = domain.now
        domain.run(5.0)
        assert domain.now == pytest.approx(start + 5.0)
