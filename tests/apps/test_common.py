"""Tests for the application plumbing: payload codec and RPC endpoint."""

import pytest

from repro.apps import AppEndpoint, decode_payload, encode_payload
from repro.experiments import InsDomain
from repro.naming import NameSpecifier

from ..conftest import parse


class TestPayloadCodec:
    def test_round_trip(self):
        fields = {"op": "get", "region": "floor-5", "count": 3}
        assert decode_payload(encode_payload(fields)) == fields

    def test_deterministic_encoding(self):
        a = encode_payload({"b": 1, "a": 2})
        b = encode_payload({"a": 2, "b": 1})
        assert a == b

    def test_non_json_decodes_to_empty(self):
        assert decode_payload(b"\xff\xfe") == {}
        assert decode_payload(b"not json") == {}

    def test_non_dict_json_decodes_to_empty(self):
        assert decode_payload(b"[1, 2, 3]") == {}


class Echo(AppEndpoint):
    def handle_request(self, message, fields, source):
        if fields.get("op") == "echo":
            self.respond(message, {"echoed": fields.get("text", "")})


@pytest.fixture
def rpc_pair():
    domain = InsDomain(seed=90)
    inr = domain.add_inr()

    def endpoint(name, cls=AppEndpoint):
        node = domain.network.add_node(f"host-{name}")
        app = cls(node, domain.ports.allocate(),
                  name=parse(f"[service=test[id={name}]]"),
                  resolver=inr.address)
        app.start()
        return app

    server = endpoint("server", Echo)
    caller = endpoint("caller")
    domain.run(1.0)
    return domain, server, caller


class TestRequestResponse:
    def test_request_resolves_with_response_fields(self, rpc_pair):
        domain, server, caller = rpc_pair
        reply = caller.request(parse("[service=test[id=server]]"),
                               {"op": "echo", "text": "hello"})
        domain.run(1.0)
        assert reply.value["echoed"] == "hello"

    def test_tokens_correlate_concurrent_requests(self, rpc_pair):
        domain, server, caller = rpc_pair
        first = caller.request(parse("[service=test[id=server]]"),
                               {"op": "echo", "text": "one"})
        second = caller.request(parse("[service=test[id=server]]"),
                                {"op": "echo", "text": "two"})
        domain.run(1.0)
        assert first.value["echoed"] == "one"
        assert second.value["echoed"] == "two"

    def test_unsolicited_messages_go_to_handle_request(self, rpc_pair):
        domain, server, caller = rpc_pair
        seen = []
        caller.handle_request = lambda m, fields, s: seen.append(fields)
        server.send_anycast(parse("[service=test[id=caller]]"),
                            encode_payload({"note": "fyi"}))
        domain.run(1.0)
        assert seen == [{"note": "fyi"}]
