"""Tests for the Camera application (Section 3.2)."""

import pytest

from repro.apps import CameraReceiver, CameraTransmitter
from repro.client import MobilityManager
from repro.experiments import InsDomain
from repro.resolver import InrConfig

from ..conftest import parse


@pytest.fixture
def studio():
    domain = InsDomain(
        seed=110, config=InrConfig(refresh_interval=3.0, record_lifetime=9.0)
    )
    inr_a = domain.add_inr()
    inr_b = domain.add_inr()

    def app(cls, host, resolver, **kwargs):
        node = domain.network.add_node(host)
        instance = cls(node, domain.ports.allocate(),
                       resolver=resolver.address,
                       refresh_interval=3.0, lifetime=9.0, **kwargs)
        instance.start()
        return instance

    camera = app(CameraTransmitter, "h-cam", inr_a, camera_id="a", room="510")
    rx1 = app(CameraReceiver, "h-rx1", inr_b, receiver_id="r1", room="510")
    rx2 = app(CameraReceiver, "h-rx2", inr_b, receiver_id="r2", room="510")
    domain.run(2.0)
    return domain, (inr_a, inr_b), camera, (rx1, rx2)


class TestRequestResponse:
    def test_receiver_gets_a_frame(self, studio):
        domain, inrs, camera, (rx1, rx2) = studio
        reply = rx1.request_frame()
        domain.run(1.0)
        assert "frame" in reply.value
        assert reply.value["camera"] == "a"
        assert rx1.frames  # stored locally too

    def test_response_routed_by_receiver_id(self, studio):
        """The id field lets INRs route the reply to the requester only."""
        domain, inrs, camera, (rx1, rx2) = studio
        rx1.request_frame()
        domain.run(1.0)
        assert len(rx1.frames) == 1
        assert len(rx2.frames) == 0

    def test_frames_advance_over_time(self, studio):
        domain, inrs, camera, (rx1, rx2) = studio
        first = rx1.request_frame()
        domain.run(3.0)
        second = rx1.request_frame()
        domain.run(1.0)
        assert first.value["frame"] != second.value["frame"]


class TestSubscription:
    def test_publish_reaches_all_subscribers(self, studio):
        domain, inrs, camera, (rx1, rx2) = studio
        camera.publish_frame()
        domain.run(1.0)
        assert len(rx1.frames) == 1
        assert len(rx2.frames) == 1

    def test_subscription_is_by_room(self, studio):
        domain, inrs, camera, (rx1, rx2) = studio
        rx2.subscribe_to_room("601")
        domain.run(1.0)
        camera.publish_frame()
        domain.run(1.0)
        assert len(rx1.frames) == 1
        assert len(rx2.frames) == 0

    def test_periodic_publishing(self):
        domain = InsDomain(seed=111)
        inr = domain.add_inr()
        cam_node = domain.network.add_node("h-cam")
        camera = CameraTransmitter(cam_node, domain.ports.allocate(),
                                   camera_id="a", room="510",
                                   resolver=inr.address, publish_interval=2.0)
        camera.start()
        rx_node = domain.network.add_node("h-rx")
        receiver = CameraReceiver(rx_node, domain.ports.allocate(),
                                  receiver_id="r", room="510",
                                  resolver=inr.address)
        receiver.start()
        domain.run(9.0)
        assert camera.frames_published >= 3
        assert len(receiver.frames) >= 3


class TestMobility:
    def test_node_mobility_keeps_requests_flowing(self, studio):
        domain, inrs, camera, (rx1, rx2) = studio
        MobilityManager(camera.node).migrate("cam-roaming")
        domain.run(1.0)
        reply = rx1.request_frame()
        domain.run(1.0)
        assert "frame" in reply.value

    def test_service_mobility_changes_room(self, studio):
        domain, inrs, camera, (rx1, rx2) = studio
        camera.move_to_room("601")
        domain.run(1.0)
        # the old room's name is gone everywhere, the new one resolvable
        tree = inrs[0].trees["default"]
        assert not tree.lookup(parse(
            "[service=camera[entity=transmitter]][room=510]"))
        assert tree.lookup(parse(
            "[service=camera[entity=transmitter]][room=601]"))
        # a receiver following room 601 now gets this camera's frames
        rx1.subscribe_to_room("601")
        domain.run(1.0)
        camera.publish_frame()
        domain.run(1.0)
        assert rx1.frames


class TestCaching:
    def test_cacheable_requests_served_from_inr_cache(self):
        domain = InsDomain(seed=112)
        inr_a = domain.add_inr()
        inr_b = domain.add_inr()
        cam_node = domain.network.add_node("h-cam")
        camera = CameraTransmitter(cam_node, domain.ports.allocate(),
                                   camera_id="a", room="510",
                                   resolver=inr_a.address, cache_lifetime=60)
        camera.start()
        rx_node = domain.network.add_node("h-rx")
        receiver = CameraReceiver(rx_node, domain.ports.allocate(),
                                  receiver_id="r", room="510",
                                  resolver=inr_b.address)
        receiver.start()
        domain.run(2.0)
        for i in range(5):
            domain.sim.schedule(i * 0.5, receiver.request_frame, None, True)
        domain.run(5.0)
        assert len(receiver.frames) == 5
        assert camera.requests_served <= 2  # nearly all from caches
        total_cache_hits = (inr_a.stats.packets_answered_from_cache
                            + inr_b.stats.packets_answered_from_cache)
        assert total_cache_hits >= 3

    def test_uncacheable_requests_always_reach_origin(self):
        domain = InsDomain(seed=113)
        inr = domain.add_inr()
        cam_node = domain.network.add_node("h-cam")
        camera = CameraTransmitter(cam_node, domain.ports.allocate(),
                                   camera_id="a", room="510",
                                   resolver=inr.address, cache_lifetime=0)
        camera.start()
        rx_node = domain.network.add_node("h-rx")
        receiver = CameraReceiver(rx_node, domain.ports.allocate(),
                                  receiver_id="r", room="510",
                                  resolver=inr.address)
        receiver.start()
        domain.run(2.0)
        for i in range(4):
            domain.sim.schedule(i * 0.5, receiver.request_frame, None, False)
        domain.run(4.0)
        assert camera.requests_served == 4


class TestFigure2Attributes:
    """The paper's Figure 2 camera carries data-type/format/resolution;
    selecting on those orthogonal attributes must work."""

    def test_name_matches_figure_2_structure(self):
        from repro.apps import transmitter_name

        name = transmitter_name("a", "510")
        camera = name.root("service")
        assert camera.child("data-type").value == "picture"
        assert camera.child("data-type").child("format").value == "jpg"
        assert camera.child("resolution").value == "640x480"

    def test_select_camera_by_resolution(self):
        domain = InsDomain(seed=114)
        inr = domain.add_inr()

        def cam(camera_id, resolution):
            node = domain.network.add_node(f"h-{camera_id}")
            camera = CameraTransmitter(
                node, domain.ports.allocate(), camera_id=camera_id,
                room="510", resolver=inr.address, resolution=resolution,
            )
            camera.start()
            return camera

        low = cam("low", "640x480")
        high = cam("high", "1280x960")
        client = domain.add_client(resolver=inr)
        domain.run(1.0)
        reply = client.discover(parse(
            "[service=camera[entity=transmitter][resolution=1280x960]]"
        ))
        domain.run(1.0)
        ids = {name.root("service").child("id").value
               for name, _ in reply.value}
        assert ids == {"high"}

    def test_select_by_format_under_data_type(self):
        domain = InsDomain(seed=115)
        inr = domain.add_inr()
        node = domain.network.add_node("h-cam")
        CameraTransmitter(node, domain.ports.allocate(), camera_id="a",
                          room="510", resolver=inr.address,
                          image_format="png").start()
        client = domain.add_client(resolver=inr)
        domain.run(1.0)
        hit = client.discover(parse(
            "[service=camera[data-type=picture[format=png]]]"))
        miss = client.discover(parse(
            "[service=camera[data-type=picture[format=jpg]]]"))
        domain.run(1.0)
        assert len(hit.value) == 1
        assert len(miss.value) == 0
