"""Tests for the Floorplan application and Locator (Section 3.1)."""

import pytest

from repro.apps import FloorplanApp, Locator, PrinterSpooler
from repro.experiments import InsDomain
from repro.resolver import InrConfig

from ..conftest import parse


@pytest.fixture
def building():
    domain = InsDomain(
        seed=120, config=InrConfig(refresh_interval=3.0, record_lifetime=9.0)
    )
    inr = domain.add_inr()

    def app(cls, host, **kwargs):
        node = domain.network.add_node(host)
        instance = cls(node, domain.ports.allocate(), resolver=inr.address,
                       refresh_interval=3.0, lifetime=9.0, **kwargs)
        instance.start()
        return instance

    locator = app(Locator, "h-locator")
    locator.add_map("floor-5", "MAP-5")
    locator.add_map("floor-6", "MAP-6")
    printer = app(PrinterSpooler, "h-printer", printer_id="lw5", room="517")
    viewer = app(FloorplanApp, "h-viewer", user="carol", region="floor-5")
    domain.run(2.0)
    return domain, inr, locator, printer, viewer


class TestDiscoveryDisplay:
    def test_refresh_builds_icons(self, building):
        domain, inr, locator, printer, viewer = building
        viewer.refresh()
        domain.run(1.0)
        assert "printer/spooler@517" in viewer.visible_services()
        assert "locator/server@?" in viewer.visible_services()

    def test_filtered_refresh(self, building):
        domain, inr, locator, printer, viewer = building
        viewer.refresh(parse("[service=printer]"))
        domain.run(1.0)
        assert viewer.visible_services() == ["printer/spooler@517"]

    def test_new_services_appear_on_refresh(self, building):
        domain, inr, locator, printer, viewer = building
        viewer.refresh()
        domain.run(1.0)
        before = set(viewer.visible_services())
        node = domain.network.add_node("h-cam2")
        from repro.apps import CameraTransmitter

        cam = CameraTransmitter(node, domain.ports.allocate(), camera_id="z",
                                room="510", resolver=inr.address)
        cam.start()
        domain.run(1.0)
        viewer.refresh()
        domain.run(1.0)
        assert set(viewer.visible_services()) - before == {
            "camera/transmitter@510"
        }

    def test_dead_services_disappear_after_expiry(self, building):
        domain, inr, locator, printer, viewer = building
        viewer.refresh()
        domain.run(1.0)
        assert "printer/spooler@517" in viewer.visible_services()
        printer.stop()
        domain.run(15.0)  # > soft-state lifetime of 9 s
        viewer.refresh()
        domain.run(1.0)
        assert "printer/spooler@517" not in viewer.visible_services()

    def test_click_returns_wire_name(self, building):
        domain, inr, locator, printer, viewer = building
        viewer.refresh()
        domain.run(1.0)
        target = viewer.click("printer/spooler@517")
        assert target == "[service=printer[entity=spooler][id=lw5]][room=517]"
        assert viewer.click("no/such@icon") is None


class TestMaps:
    def test_fetch_map_by_intentional_name(self, building):
        domain, inr, locator, printer, viewer = building
        viewer.fetch_map("floor-5")
        domain.run(1.0)
        assert viewer.map_data == "MAP-5"
        assert locator.maps_served == 1

    def test_unknown_region_yields_placeholder(self, building):
        domain, inr, locator, printer, viewer = building
        viewer.fetch_map("basement")
        domain.run(1.0)
        assert "no map" in viewer.map_data

    def test_move_to_region_fetches_and_refreshes(self, building):
        domain, inr, locator, printer, viewer = building
        viewer.move_to_region("floor-6")
        domain.run(1.0)
        assert viewer.region == "floor-6"
        assert viewer.map_data == "MAP-6"
        assert viewer.icons  # discovery ran too
