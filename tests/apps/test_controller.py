"""Tests for the TV/MP3 device-controller application."""

import pytest

from repro.apps import (
    DeviceController,
    RemoteControl,
    controller_name,
    controllers_in_room,
)
from repro.experiments import InsDomain


@pytest.fixture
def living_room():
    domain = InsDomain(seed=130)
    inr = domain.add_inr()

    def app(cls, host, **kwargs):
        node = domain.network.add_node(host)
        instance = cls(node, domain.ports.allocate(), resolver=inr.address,
                       **kwargs)
        instance.start()
        return instance

    tv = app(DeviceController, "h-tv", kind="tv", device_id="tv1", room="511")
    mp3 = app(DeviceController, "h-mp3", kind="mp3", device_id="mp1", room="511")
    remote = app(RemoteControl, "h-remote", user="dana")
    domain.run(2.0)
    return domain, tv, mp3, remote


class TestCommands:
    def test_power_on_by_exact_name(self, living_room):
        domain, tv, mp3, remote = living_room
        reply = remote.power(controller_name("tv", "tv1", "511"), on=True)
        domain.run(1.0)
        assert reply.value["powered"] is True
        assert tv.powered
        assert not mp3.powered

    def test_kind_scoped_anycast(self, living_room):
        domain, tv, mp3, remote = living_room
        remote.power(controllers_in_room("511", kind="mp3"), on=True)
        domain.run(1.0)
        assert mp3.powered
        assert not tv.powered

    def test_volume_is_clamped(self, living_room):
        domain, tv, mp3, remote = living_room
        reply = remote.set_volume(controller_name("tv", "tv1", "511"), 250)
        domain.run(1.0)
        assert reply.value["volume"] == DeviceController.MAX_VOLUME
        reply = remote.set_volume(controller_name("tv", "tv1", "511"), -3)
        domain.run(1.0)
        assert reply.value["volume"] == DeviceController.MIN_VOLUME

    def test_play_requires_power(self, living_room):
        domain, tv, mp3, remote = living_room
        target = controller_name("mp3", "mp1", "511")
        remote.play(target, "intentional-naming.flac")
        domain.run(1.0)
        assert mp3.now_playing is None  # powered off: ignored
        remote.power(target, on=True)
        domain.run(1.0)
        remote.play(target, "intentional-naming.flac")
        domain.run(1.0)
        assert mp3.now_playing == "intentional-naming.flac"

    def test_power_off_stops_playback(self, living_room):
        domain, tv, mp3, remote = living_room
        target = controller_name("mp3", "mp1", "511")
        remote.power(target, on=True)
        domain.run(1.0)
        remote.play(target, "x")
        domain.run(1.0)
        remote.power(target, on=False)
        domain.run(1.0)
        assert mp3.now_playing is None

    def test_status_roundtrip(self, living_room):
        domain, tv, mp3, remote = living_room
        reply = remote.status(controller_name("tv", "tv1", "511"))
        domain.run(1.0)
        assert reply.value["device"] == "tv1"
        assert reply.value["kind"] == "tv"

    def test_unknown_op_is_ignored(self, living_room):
        domain, tv, mp3, remote = living_room
        before = len(tv.command_log)
        remote.request(controller_name("tv", "tv1", "511"), {"op": "explode"})
        domain.run(1.0)
        assert len(tv.command_log) == before


class TestDiscoveryIntegration:
    def test_floorplan_sees_controllers(self, living_room):
        from repro.apps import FloorplanApp

        domain, tv, mp3, remote = living_room
        node = domain.network.add_node("h-fp")
        floorplan = FloorplanApp(node, domain.ports.allocate(), user="dana",
                                 region="5th", resolver=domain.inrs[0].address)
        floorplan.start()
        domain.run(1.0)
        floorplan.refresh()
        domain.run(1.0)
        labels = floorplan.visible_services()
        assert "controller/tv@511" in labels
        assert "controller/mp3@511" in labels
