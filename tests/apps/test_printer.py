"""Tests for the Printer application (Section 3.3)."""

import pytest

from repro.apps import ERROR_PENALTY, PrinterClient, PrinterSpooler, printer_name
from repro.experiments import InsDomain


@pytest.fixture
def printshop():
    domain = InsDomain(seed=100)
    inr_a = domain.add_inr()
    inr_b = domain.add_inr()

    def app(cls, host, resolver, **kwargs):
        node = domain.network.add_node(host)
        instance = cls(node, domain.ports.allocate(),
                       resolver=resolver.address, **kwargs)
        instance.start()
        return instance

    lw1 = app(PrinterSpooler, "h-lw1", inr_a, printer_id="lw1", room="517",
              pages_per_second=100)
    lw2 = app(PrinterSpooler, "h-lw2", inr_b, printer_id="lw2", room="517",
              pages_per_second=100)
    other = app(PrinterSpooler, "h-lw9", inr_b, printer_id="lw9", room="601",
                pages_per_second=100)
    user = app(PrinterClient, "h-user", inr_a, user="alice")
    domain.run(2.0)
    return domain, (lw1, lw2, other), user


class TestSubmission:
    def test_submit_to_named_printer(self, printshop):
        domain, (lw1, lw2, other), user = printshop
        reply = user.submit_to(printer_name("lw2", "517"), size=100)
        domain.run(1.0)
        assert reply.value["ok"]
        assert reply.value["printer"] == "lw2"

    def test_submit_best_targets_room(self, printshop):
        """Location-scoped anycast never leaves the requested room."""
        domain, (lw1, lw2, other), user = printshop
        for _ in range(4):
            reply = user.submit_best("517", size=100)
            domain.run(1.0)
            assert reply.value["printer"] in ("lw1", "lw2")

    def test_submit_best_balances_by_queue(self, printshop):
        domain, (lw1, lw2, other), user = printshop
        chosen = []
        for _ in range(4):
            reply = user.submit_best("517", size=2000)
            domain.run(1.0)  # metric updates propagate between jobs
            chosen.append(reply.value["printer"])
        assert set(chosen) == {"lw1", "lw2"}  # load spread across both

    def test_jobs_drain_and_metric_recovers(self, printshop):
        domain, (lw1, lw2, other), user = printshop
        user.submit_to(printer_name("lw1", "517"), size=100)
        domain.run(0.5)
        assert lw1.current_metric() > 0
        domain.run(5.0)
        assert lw1.completed and lw1.queue == []
        assert lw1.current_metric() == 0.0


class TestErrorStatus:
    def test_error_penalty_dominates_metric(self, printshop):
        domain, (lw1, lw2, other), user = printshop
        lw1.set_error(True)
        assert lw1.current_metric() >= ERROR_PENALTY

    def test_anycast_avoids_errored_printer(self, printshop):
        domain, (lw1, lw2, other), user = printshop
        lw1.set_error(True)
        domain.run(1.0)
        reply = user.submit_best("517", size=10)
        domain.run(1.0)
        assert reply.value["printer"] == "lw2"

    def test_errored_printer_rejects_direct_jobs(self, printshop):
        domain, (lw1, lw2, other), user = printshop
        lw1.set_error(True)
        domain.run(1.0)
        reply = user.submit_to(printer_name("lw1", "517"), size=10)
        domain.run(1.0)
        assert not reply.value["ok"]

    def test_recovery_restores_service(self, printshop):
        domain, (lw1, lw2, other), user = printshop
        lw1.set_error(True)
        domain.run(1.0)
        lw1.set_error(False)
        domain.run(1.0)
        reply = user.submit_to(printer_name("lw1", "517"), size=10)
        domain.run(1.0)
        assert reply.value["ok"]


class TestQueueManagement:
    def test_list_jobs(self, printshop):
        domain, (lw1, lw2, other), user = printshop
        submitted = user.submit_to(printer_name("lw1", "517"), size=5000)
        domain.run(1.0)
        listing = user.list_jobs(printer_name("lw1", "517"))
        domain.run(1.0)
        jobs = listing.value["jobs"]
        assert [j["job_id"] for j in jobs] == [submitted.value["job_id"]]

    def test_owner_can_remove_job(self, printshop):
        domain, (lw1, lw2, other), user = printshop
        submitted = user.submit_to(printer_name("lw1", "517"), size=5000)
        domain.run(1.0)
        removal = user.remove_job(printer_name("lw1", "517"),
                                  submitted.value["job_id"])
        domain.run(1.0)
        assert removal.value["ok"]
        assert lw1.queue == []

    def test_permission_denied_for_other_users(self, printshop):
        domain, (lw1, lw2, other), user = printshop
        node = domain.network.add_node("h-mallory")
        mallory = PrinterClient(node, domain.ports.allocate(), user="mallory",
                                resolver=domain.inrs[0].address)
        mallory.start()
        submitted = user.submit_to(printer_name("lw1", "517"), size=5000)
        domain.run(1.0)
        attempt = mallory.remove_job(printer_name("lw1", "517"),
                                     submitted.value["job_id"])
        domain.run(1.0)
        assert not attempt.value["ok"]
        assert len(lw1.queue) == 1

    def test_remove_missing_job(self, printshop):
        domain, (lw1, lw2, other), user = printshop
        attempt = user.remove_job(printer_name("lw1", "517"), job_id=9999)
        domain.run(1.0)
        assert not attempt.value["ok"]
