"""Tests for the discrete-event simulator core."""

import pytest

from repro.netsim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        sim = Simulator()
        fired = []
        for label in "abc":
            sim.schedule(1.0, fired.append, label)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_scheduling_into_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(1.0, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()


class TestBoundedRuns:
    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(10.0, fired.append, "late")
        sim.run(until=5.0)
        assert fired == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["early", "late"]

    def test_run_for_advances_relative(self):
        sim = Simulator()
        sim.run_for(4.0)
        assert sim.now == 4.0
        sim.run_for(1.5)
        assert sim.now == 5.5

    def test_max_events_bounds_work(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert not Simulator().step()

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestDeterminism:
    def test_same_seed_same_randoms(self):
        a = Simulator(seed=42)
        b = Simulator(seed=42)
        assert [a.rng.random() for _ in range(5)] == [
            b.rng.random() for _ in range(5)
        ]

    def test_different_seed_different_randoms(self):
        assert Simulator(seed=1).rng.random() != Simulator(seed=2).rng.random()
