"""Tests for links, nodes and datagram delivery."""

import pytest

from repro.netsim import Link, Network, Process, Simulator


class Recorder(Process):
    """Collects (payload, source, arrival_time) triples."""

    def __init__(self, node, port, cost: float = 0.0):
        super().__init__(node, port)
        self.cost = cost
        self.received = []

    def processing_cost(self, payload, size_bytes):
        return self.cost

    def handle_message(self, payload, source):
        self.received.append((payload, source, self.now))


def build(seed=0, **net_kwargs):
    sim = Simulator(seed=seed)
    network = Network(sim, **net_kwargs)
    a = network.add_node("a")
    b = network.add_node("b")
    recorder = Recorder(b, 100)
    return sim, network, a, b, recorder


class TestLink:
    def test_transfer_delay(self):
        link = Link(latency=0.01, bandwidth_bps=1_000_000)
        # 1000 bytes at 1 Mbps = 8 ms transmission + 10 ms latency
        assert link.transfer_delay(1000) == pytest.approx(0.018)

    @pytest.mark.parametrize("kwargs", [
        dict(latency=-1, bandwidth_bps=1e6),
        dict(latency=0, bandwidth_bps=0),
        dict(latency=0, bandwidth_bps=1e6, loss_rate=1.0),
        dict(latency=0, bandwidth_bps=1e6, loss_rate=-0.1),
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Link(**kwargs)


class TestDelivery:
    def test_basic_delivery(self):
        sim, network, a, b, recorder = build()
        network.send("a", "b", 100, "hello", 100)
        sim.run()
        assert recorder.received[0][0] == "hello"
        assert recorder.received[0][1] == "a"

    def test_delivery_delay_includes_latency_and_transmission(self):
        sim, network, a, b, recorder = build(
            default_latency=0.01, default_bandwidth_bps=1_000_000
        )
        network.send("a", "b", 100, "x", 1000)
        sim.run()
        assert recorder.received[0][2] == pytest.approx(0.018)

    def test_cpu_cost_delays_handler(self):
        sim = Simulator()
        network = Network(sim, default_latency=0.0)
        network.add_node("a")
        b = network.add_node("b")
        recorder = Recorder(b, 100, cost=0.5)
        network.send("a", "b", 100, "x", 0)
        sim.run()
        assert recorder.received[0][2] == pytest.approx(0.5)

    def test_local_delivery_skips_link(self):
        sim = Simulator()
        network = Network(sim)
        a = network.add_node("a")
        recorder = Recorder(a, 100)
        network.send("a", "a", 100, "loop", 50)
        sim.run()
        assert recorder.received[0][2] == 0.0
        assert network.link("a", "a").stats.messages == 0

    def test_unknown_destination_counted_undeliverable(self):
        sim, network, a, b, recorder = build()
        network.send("a", "ghost", 100, "x", 10)
        sim.run()
        assert network.undeliverable == 1

    def test_unbound_port_counted_undeliverable(self):
        sim, network, a, b, recorder = build()
        network.send("a", "b", 999, "x", 10)
        sim.run()
        assert network.undeliverable == 1
        assert recorder.received == []

    def test_link_stats_accumulate(self):
        sim, network, a, b, recorder = build()
        network.send("a", "b", 100, "x", 300)
        network.send("a", "b", 100, "y", 200)
        sim.run()
        stats = network.link("a", "b").stats
        assert stats.messages == 2
        assert stats.bytes == 500

    def test_negative_size_rejected(self):
        sim, network, a, b, recorder = build()
        with pytest.raises(ValueError):
            network.send("a", "b", 100, "x", -1)


class TestLoss:
    def test_lossy_link_drops_fraction(self):
        sim = Simulator(seed=7)
        network = Network(sim, default_loss_rate=0.5)
        network.add_node("a")
        b = network.add_node("b")
        recorder = Recorder(b, 100)
        for _ in range(200):
            network.send("a", "b", 100, "x", 10)
        sim.run()
        drops = network.link("a", "b").stats.drops
        assert 60 <= drops <= 140  # ~100 expected
        assert len(recorder.received) == 200 - drops

    def test_lossless_by_default(self):
        sim, network, a, b, recorder = build()
        for _ in range(50):
            network.send("a", "b", 100, "x", 10)
        sim.run()
        assert len(recorder.received) == 50


class TestTopologyManagement:
    def test_duplicate_node_rejected(self):
        _, network, *_ = build()
        with pytest.raises(ValueError):
            network.add_node("a")

    def test_configure_link_updates_in_place(self):
        _, network, *_ = build()
        link = network.configure_link("a", "b", latency=0.5)
        assert network.configure_link("a", "b", bandwidth_bps=42.0) is link
        assert link.latency == 0.5
        assert link.bandwidth_bps == 42.0

    def test_link_is_symmetric(self):
        _, network, *_ = build()
        assert network.link("a", "b") is network.link("b", "a")

    def test_rename_node_moves_identity(self):
        sim, network, a, b, recorder = build()
        network.rename_node("b", "b-moved")
        network.send("a", "b-moved", 100, "found", 10)
        network.send("a", "b", 100, "lost", 10)
        sim.run()
        assert [payload for payload, *_ in recorder.received] == ["found"]
        assert network.undeliverable == 1

    def test_rename_to_existing_rejected(self):
        _, network, *_ = build()
        with pytest.raises(ValueError):
            network.rename_node("a", "b")


class TestFifoOrdering:
    def test_small_packets_cannot_overtake_large_ones(self):
        """Links are FIFO per direction: a 28-byte datagram sent after a
        1400-byte one must arrive after it."""
        sim, network, a, b, recorder = build()
        network.send("a", "b", 100, "big", 1400)
        network.send("a", "b", 100, "small", 28)
        sim.run()
        assert [payload for payload, *_ in recorder.received] == ["big", "small"]

    def test_opposite_directions_are_independent(self):
        sim = Simulator()
        network = Network(sim)
        network.add_node("a")
        b = network.add_node("b")
        recorder_b = Recorder(b, 100)
        a_node = network.node("a")
        recorder_a = Recorder(a_node, 100)
        network.send("a", "b", 100, "a-to-b", 1400)
        network.send("b", "a", 100, "b-to-a", 28)
        sim.run()
        # the reverse-direction datagram is not queued behind the big one
        assert recorder_a.received[0][2] < recorder_b.received[0][2]
