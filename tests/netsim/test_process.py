"""Tests for the Process base class and timers."""

import pytest

from repro.netsim import Network, PeriodicTimer, Process, Simulator


def build():
    sim = Simulator(seed=0)
    network = Network(sim, default_latency=0.0)
    node = network.add_node("host")
    return sim, network, node


class TestProcessBasics:
    def test_binding_and_rebinding(self):
        sim, network, node = build()
        process = Process(node, 10)
        assert node.process_on(10) is process
        with pytest.raises(ValueError):
            Process(node, 10)
        process.stop()
        assert node.process_on(10) is None
        Process(node, 10)  # port is free again

    def test_address_tracks_node(self):
        sim, network, node = build()
        process = Process(node, 10)
        assert process.address == "host"
        network.rename_node("host", "roaming")
        assert process.address == "roaming"

    def test_send_uses_payload_wire_size(self):
        class Sized:
            def wire_size(self):
                return 123

        sim, network, node = build()
        network.add_node("peer")
        process = Process(node, 10)
        process.send("peer", 99, Sized())
        assert network.link("host", "peer").stats.bytes == 123

    def test_send_defaults_to_zero_size(self):
        sim, network, node = build()
        network.add_node("peer")
        Process(node, 10).send("peer", 99, object())
        assert network.link("host", "peer").stats.bytes == 0

    def test_stop_cancels_timers(self):
        sim, network, node = build()
        process = Process(node, 10)
        fired = []
        process.set_timer(1.0, fired.append, "one-shot")
        process.every(1.0, lambda: fired.append("periodic"))
        process.stop()
        sim.run_for(5.0)
        assert fired == []


class TestTimers:
    def test_one_shot_timer(self):
        sim, network, node = build()
        process = Process(node, 10)
        fired = []
        process.set_timer(2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.0]

    def test_periodic_timer_repeats(self):
        sim, network, node = build()
        process = Process(node, 10)
        fired = []
        timer = process.every(1.0, lambda: fired.append(sim.now))
        sim.run_for(3.5)
        assert fired == [1.0, 2.0, 3.0]
        timer.stop()
        sim.run_for(5.0)
        assert len(fired) == 3

    def test_fire_immediately(self):
        sim, network, node = build()
        process = Process(node, 10)
        fired = []
        process.every(1.0, lambda: fired.append(sim.now), fire_immediately=True)
        sim.run_for(2.5)
        assert fired == [0.0, 1.0, 2.0]

    def test_jitter_spreads_firings(self):
        sim, network, node = build()
        process = Process(node, 10)
        fired = []
        process.every(1.0, lambda: fired.append(sim.now), jitter_fraction=0.2)
        sim.run_for(10.0)
        intervals = [b - a for a, b in zip(fired, fired[1:])]
        assert all(0.8 <= i <= 1.2 for i in intervals)
        assert len(set(intervals)) > 1  # actually jittered

    def test_invalid_timer_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0.0, lambda: None)
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 1.0, lambda: None, jitter_fraction=1.0)

    def test_stop_mid_period(self):
        sim, network, node = build()
        process = Process(node, 10)
        fired = []
        timer = process.every(1.0, lambda: fired.append(sim.now))
        sim.run_for(1.5)
        timer.stop()
        assert timer.stopped
        sim.run_for(5.0)
        assert fired == [1.0]
