"""Property-based tests for the simulator's core invariants."""

from hypothesis import given, settings, strategies as st

from repro.netsim import Cpu, Simulator


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_time_never_goes_backwards(delays):
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(costs=st.lists(st.floats(min_value=0.0, max_value=10.0,
                                allow_nan=False), min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_cpu_serialization_invariants(costs):
    """Total busy time equals the sum of costs; completions are ordered;
    the makespan equals the sum when all work arrives at t=0."""
    sim = Simulator()
    cpu = Cpu(sim)
    completions = []
    for cost in costs:
        cpu.execute(cost, lambda: completions.append(sim.now))
    sim.run()
    assert completions == sorted(completions)
    assert cpu.busy_seconds == sum(costs) or abs(
        cpu.busy_seconds - sum(costs)
    ) < 1e-9
    assert abs(completions[-1] - sum(costs)) < 1e-9


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    until=st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
)
@settings(max_examples=50, deadline=None)
def test_bounded_runs_compose(seed, until):
    """run(until=a) then run(until=b) equals one run(until=b)."""
    def build():
        sim = Simulator(seed=seed)
        fired = []
        for i in range(20):
            sim.schedule(i * 3.7 % 49.9, fired.append, i)
        return sim, fired

    one_shot_sim, one_shot = build()
    one_shot_sim.run(until=50.0)

    split_sim, split = build()
    split_sim.run(until=until)
    split_sim.run(until=50.0)
    assert split == one_shot
