"""Tests for batched same-timestamp event dispatch in Simulator.run().

``run()`` fires every event sharing a timestamp in one inner loop
(one clock assignment per distinct time). The observable contract is
unchanged from the per-event loop: strict (time, sequence) order,
cancellation respected up to the instant of firing, ``max_events`` and
``until`` honored exactly, and events scheduled *at the current
timestamp from inside a callback* still fire within the same batch.
"""

import pytest

from repro.netsim import Simulator


def test_same_timestamp_fifo_order():
    sim = Simulator()
    fired = []
    for index in range(20):
        sim.at(1.0, fired.append, index)
    sim.run()
    assert fired == list(range(20))
    assert sim.now == 1.0


def test_interleaved_timestamps_stay_sorted():
    sim = Simulator()
    fired = []
    for index, time in enumerate([3.0, 1.0, 2.0, 1.0, 3.0, 2.0]):
        sim.at(time, fired.append, (time, index))
    sim.run()
    assert fired == sorted(fired)


def test_callback_scheduling_into_current_batch_fires_now():
    sim = Simulator()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            # Zero-delay schedule lands at the current timestamp with a
            # later sequence number: it must join the running batch.
            sim.schedule(0.0, chain, depth + 1)

    sim.at(5.0, chain, 0)
    sim.at(5.0, fired.append, "peer")
    sim.run()
    assert fired == [0, "peer", 1, 2, 3]
    assert sim.now == 5.0


def test_cancellation_inside_batch_respected():
    sim = Simulator()
    fired = []
    victim = sim.at(1.0, fired.append, "victim")
    sim.at(1.0, lambda: victim.cancel())
    # Sequence order puts the canceller *after* the victim, so this one
    # fires; cancel a later-sequence victim instead.
    later = sim.at(1.0, fired.append, "later")
    sim.at(1.0, fired.append, "tail")
    victim2 = later
    sim.at(0.5, lambda: victim2.cancel())
    sim.run()
    assert "later" not in fired
    assert fired == ["victim", "tail"]
    assert sim.events_processed == 4  # canceller lambdas count too


def test_max_events_cuts_mid_batch():
    sim = Simulator()
    fired = []
    for index in range(10):
        sim.at(1.0, fired.append, index)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]
    # The rest of the batch is still queued and fires on resume.
    sim.run()
    assert fired == list(range(10))


def test_until_excludes_later_batch_and_pins_clock():
    sim = Simulator()
    fired = []
    sim.at(1.0, fired.append, "early")
    sim.at(4.0, fired.append, "late")
    sim.run(until=2.5)
    assert fired == ["early"]
    assert sim.now == 2.5
    sim.run()
    assert fired == ["early", "late"]
    assert sim.now == 4.0


def test_event_hook_sees_every_batched_event():
    sim = Simulator()
    seen = []
    sim.event_hook = lambda event: seen.append(event.time)
    for time in (1.0, 1.0, 2.0):
        sim.at(time, lambda: None)
    sim.run()
    assert seen == [1.0, 1.0, 2.0]


def test_step_and_run_agree():
    """step() (per-event) and run() (batched) fire identical sequences."""

    def load(sim, log):
        for index, time in enumerate([2.0, 1.0, 1.0, 3.0, 2.0]):
            sim.at(time, log.append, (time, index))

    stepped, ran = Simulator(), Simulator()
    log_step, log_run = [], []
    load(stepped, log_step)
    load(ran, log_run)
    while stepped.step():
        pass
    ran.run()
    assert log_step == log_run
