"""Tests for the serial CPU model."""

import pytest

from repro.netsim import Cpu, Simulator


class TestExecution:
    def test_work_completes_after_cost(self):
        sim = Simulator()
        cpu = Cpu(sim)
        done = []
        cpu.execute(0.5, lambda: done.append(sim.now))
        sim.run()
        assert done == [0.5]

    def test_work_is_serialized(self):
        """Two jobs submitted together finish back to back."""
        sim = Simulator()
        cpu = Cpu(sim)
        done = []
        cpu.execute(0.5, lambda: done.append(sim.now))
        cpu.execute(0.25, lambda: done.append(sim.now))
        sim.run()
        assert done == [0.5, 0.75]

    def test_idle_gap_resets_start_time(self):
        sim = Simulator()
        cpu = Cpu(sim)
        done = []
        cpu.execute(0.1, lambda: done.append(sim.now))
        sim.run()
        sim.at(5.0, lambda: cpu.execute(0.1, lambda: done.append(sim.now)))
        sim.run()
        assert done == [0.1, 5.1]

    def test_speed_scales_cost(self):
        sim = Simulator()
        fast = Cpu(sim, speed=2.0)
        done = []
        fast.execute(1.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [0.5]

    def test_zero_cost_work_runs_now(self):
        sim = Simulator()
        cpu = Cpu(sim)
        done = []
        cpu.execute(0.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [0.0]

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Cpu(Simulator()).execute(-0.1, lambda: None)

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            Cpu(Simulator(), speed=0.0)


class TestAccounting:
    def test_busy_seconds_accumulate(self):
        sim = Simulator()
        cpu = Cpu(sim)
        cpu.execute(0.5, lambda: None)
        cpu.execute(0.25, lambda: None)
        sim.run()
        assert cpu.busy_seconds == pytest.approx(0.75)
        assert cpu.jobs_executed == 2

    def test_utilization_over_window(self):
        sim = Simulator()
        cpu = Cpu(sim)
        window_start = sim.now
        busy_at_start = cpu.busy_seconds
        cpu.execute(1.0, lambda: None)
        sim.run()
        sim.run(until=2.0)
        assert cpu.utilization(window_start, busy_at_start) == pytest.approx(0.5)

    def test_utilization_can_exceed_one_under_overload(self):
        """Backlogged work shows >100% — the Figure 8 saturation signal."""
        sim = Simulator()
        cpu = Cpu(sim)
        cpu.execute(10.0, lambda: None)
        sim.run(until=1.0)
        assert cpu.utilization(0.0, 0.0) > 1.0

    def test_backlog(self):
        sim = Simulator()
        cpu = Cpu(sim)
        cpu.execute(3.0, lambda: None)
        assert cpu.backlog == pytest.approx(3.0)
        sim.run(until=1.0)
        assert cpu.backlog == pytest.approx(2.0)
        sim.run()
        sim.run_for(1.0)
        assert cpu.backlog == 0.0
