"""Netsim fault primitives: packet duplication and reordering."""

import pytest

from repro.netsim import Link, Network, Process, Simulator


class Recorder(Process):
    def __init__(self, node, port):
        super().__init__(node, port)
        self.received = []

    def handle_message(self, payload, source):
        self.received.append((payload, self.now))


def build(seed=0, **link_kwargs):
    sim = Simulator(seed=seed)
    network = Network(sim, default_bandwidth_bps=1e9)
    network.add_node("a")
    b = network.add_node("b")
    recorder = Recorder(b, 100)
    link = network.configure_link("a", "b", **link_kwargs)
    return sim, network, link, recorder


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(duplicate_rate=1.0),
        dict(duplicate_rate=-0.1),
        dict(reorder_rate=1.0),
        dict(reorder_rate=-0.1),
        dict(reorder_delay=-0.01),
    ])
    def test_bad_rates_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Link(latency=0.001, bandwidth_bps=1e6, **kwargs)

    def test_configure_link_validates_updates_too(self):
        """The update path bypasses Link.__init__; it must re-validate
        (and reject before mutating anything)."""
        _sim, network, link, _recorder = build(duplicate_rate=0.2)
        with pytest.raises(ValueError, match="duplicate rate"):
            network.configure_link("a", "b", duplicate_rate=1.0)
        with pytest.raises(ValueError, match="loss rate"):
            network.configure_link("a", "b", loss_rate=-0.5)
        with pytest.raises(ValueError, match="reorder delay"):
            network.configure_link("a", "b", reorder_delay=-0.01)
        assert link.duplicate_rate == 0.2  # rejected update left no trace

    def test_configure_link_sets_new_rates(self):
        _sim, _network, link, _recorder = build(
            duplicate_rate=0.2, reorder_rate=0.1, reorder_delay=0.3
        )
        assert link.duplicate_rate == 0.2
        assert link.reorder_rate == 0.1
        assert link.reorder_delay == 0.3


class TestDuplication:
    def test_duplicates_deliver_payload_twice(self):
        sim, network, link, recorder = build(seed=4, duplicate_rate=0.99)
        for i in range(20):
            network.send("a", "b", 100, f"m{i}", 100)
        sim.run()
        # At 99% duplication nearly every datagram arrives twice.
        assert link.stats.duplicates >= 15
        assert len(recorder.received) == 20 + link.stats.duplicates

    def test_duplicate_arrives_after_original(self):
        sim, network, link, recorder = build(seed=4, duplicate_rate=0.99)
        network.send("a", "b", 100, "once", 100)
        sim.run()
        if link.stats.duplicates:  # seed-dependent, usually true at 0.99
            (first, t1), (second, t2) = recorder.received
            assert first == second == "once"
            assert t2 > t1

    def test_zero_rate_never_duplicates(self):
        sim, network, link, recorder = build(seed=4)
        for i in range(50):
            network.send("a", "b", 100, i, 100)
        sim.run()
        assert link.stats.duplicates == 0
        assert len(recorder.received) == 50


class TestReordering:
    def test_reordered_stream_arrives_out_of_order(self):
        sim, network, link, recorder = build(
            seed=5, duplicate_rate=0.0, reorder_rate=0.4, reorder_delay=0.5
        )
        for i in range(40):
            sim.schedule(i * 0.001, network.send, "a", "b", 100, i, 100)
        sim.run()
        payloads = [p for p, _t in recorder.received]
        assert len(payloads) == 40  # reordering never loses datagrams
        assert sorted(payloads) == list(range(40))
        assert payloads != list(range(40))  # ...but order was scrambled
        assert link.stats.reorders > 0

    def test_zero_rate_preserves_fifo(self):
        sim, network, link, recorder = build(seed=5)
        for i in range(40):
            sim.schedule(i * 0.001, network.send, "a", "b", 100, i, 100)
        sim.run()
        assert [p for p, _t in recorder.received] == list(range(40))
        assert link.stats.reorders == 0

    def test_reordering_is_deterministic_per_seed(self):
        def arrival_order(seed):
            sim, network, _link, recorder = build(
                seed=seed, reorder_rate=0.4, reorder_delay=0.5
            )
            for i in range(30):
                sim.schedule(i * 0.001, network.send, "a", "b", 100, i, 100)
            sim.run()
            return [p for p, _t in recorder.received]

        assert arrival_order(6) == arrival_order(6)
        assert arrival_order(6) != arrival_order(7)


class TestProtocolUnderFaults:
    def test_soft_state_survives_noisy_link(self):
        """Duplication and reordering between a service and its INR
        must be absorbed by the idempotent refresh protocol."""
        from repro.experiments import InsDomain
        from repro.resolver import InrConfig

        domain = InsDomain(
            seed=8,
            config=InrConfig(refresh_interval=1.0, record_lifetime=3.0),
        )
        inr = domain.add_inr(address="inr-x")
        service = domain.add_service("[service=noisy[id=1]]",
                                     resolver=inr, refresh_interval=1.0,
                                     lifetime=3.0)
        domain.network.configure_link(
            service.address, "inr-x", duplicate_rate=0.3, reorder_rate=0.3
        )
        domain.run(20.0)
        assert inr.name_count() == 1
        link = domain.network.link(service.address, "inr-x")
        assert link.stats.duplicates > 0
        assert link.stats.reorders > 0
