"""Unit tests for link up/down and the partition helpers."""

from repro.netsim import Network, Process, Simulator


class Sink(Process):
    def __init__(self, node, port):
        super().__init__(node, port)
        self.received = []

    def handle_message(self, payload, source):
        self.received.append(payload)


def build():
    sim = Simulator(seed=0)
    network = Network(sim, default_latency=0.0)
    for name in ("a", "b", "c", "d"):
        network.add_node(name)
    sinks = {name: Sink(network.node(name), 9) for name in ("a", "b", "c", "d")}
    return sim, network, sinks


class TestLinkState:
    def test_down_link_drops_everything(self):
        sim, network, sinks = build()
        network.link("a", "b").up = False
        for _ in range(5):
            network.send("a", "b", 9, "x", 10)
        sim.run()
        assert sinks["b"].received == []
        assert network.link("a", "b").stats.drops == 5

    def test_link_recovers(self):
        sim, network, sinks = build()
        link = network.link("a", "b")
        link.up = False
        network.send("a", "b", 9, "lost", 10)
        sim.run()
        link.up = True
        network.send("a", "b", 9, "found", 10)
        sim.run()
        assert sinks["b"].received == ["found"]

    def test_links_start_up(self):
        sim, network, sinks = build()
        assert network.link("a", "b").up


class TestPartitionHelpers:
    def test_partition_cuts_cross_links_only(self):
        sim, network, sinks = build()
        network.partition(("a", "b"), ("c", "d"))
        network.send("a", "b", 9, "same-side", 10)
        network.send("a", "c", 9, "cross", 10)
        network.send("d", "b", 9, "cross-too", 10)
        sim.run()
        assert sinks["b"].received == ["same-side"]
        assert sinks["c"].received == []

    def test_heal_restores_cross_links(self):
        sim, network, sinks = build()
        network.partition(("a", "b"), ("c", "d"))
        network.heal(("a", "b"), ("c", "d"))
        network.send("a", "c", 9, "hello", 10)
        sim.run()
        assert sinks["c"].received == ["hello"]

    def test_partition_is_symmetric(self):
        sim, network, sinks = build()
        network.partition(("a",), ("c",))
        network.send("c", "a", 9, "reverse", 10)
        sim.run()
        assert sinks["a"].received == []
