"""Tests for early binding, name discovery and vspace forwarding."""

import pytest

from repro.experiments import InsDomain
from repro.naming import NameSpecifier
from repro.resolver import InrConfig

from ..conftest import parse


@pytest.fixture
def queryable():
    domain = InsDomain(seed=21)
    a = domain.add_inr(address="inr-a")
    b = domain.add_inr(address="inr-b")
    domain.add_service("[service=cam[id=1]][room=510]", resolver=a, metric=3.0)
    domain.add_service("[service=cam[id=2]][room=511]", resolver=b, metric=1.0)
    client = domain.add_client(resolver=a)
    domain.run(2.0)
    return domain, a, b, client


class TestEarlyBinding:
    def test_returns_endpoints_sorted_by_metric(self, queryable):
        domain, a, b, client = queryable
        reply = client.resolve_early(parse("[service=cam]"))
        domain.run(0.5)
        bindings = reply.value
        assert len(bindings) == 2
        metrics = [metric for _, metric in bindings]
        assert metrics == sorted(metrics) == [1.0, 3.0]

    def test_endpoint_contains_port_and_transport(self, queryable):
        """Early binding returns [ip, [port, transport]] (Section 2.2)."""
        domain, a, b, client = queryable
        reply = client.resolve_early(parse("[service=cam[id=1]]"))
        domain.run(0.5)
        endpoint, _ = reply.value[0]
        assert endpoint.port > 0
        assert endpoint.transport == "udp"

    def test_no_match_returns_empty(self, queryable):
        domain, a, b, client = queryable
        reply = client.resolve_early(parse("[service=toaster]"))
        domain.run(0.5)
        assert reply.value == []


class TestDiscovery:
    def test_filter_returns_matching_names(self, queryable):
        domain, a, b, client = queryable
        reply = client.discover(parse("[service=cam]"))
        domain.run(0.5)
        wires = sorted(name.to_wire() for name, _ in reply.value)
        assert wires == [
            "[service=cam[id=1]][room=510]",
            "[service=cam[id=2]][room=511]",
        ]

    def test_empty_filter_returns_everything(self, queryable):
        domain, a, b, client = queryable
        reply = client.discover(NameSpecifier())
        domain.run(0.5)
        assert len(reply.value) == 2

    def test_wildcard_filter(self, queryable):
        domain, a, b, client = queryable
        reply = client.discover(parse("[room=*]"))
        domain.run(0.5)
        assert len(reply.value) == 2

    def test_discovery_includes_metrics(self, queryable):
        domain, a, b, client = queryable
        reply = client.discover(parse("[service=cam[id=2]]"))
        domain.run(0.5)
        [(name, metric)] = reply.value
        assert metric == 1.0


class TestForeignVspaces:
    @pytest.fixture
    def split_domain(self):
        domain = InsDomain(seed=22)
        a = domain.add_inr(address="inr-a", vspaces=("default",))
        b = domain.add_inr(address="inr-b", vspaces=("sensors",))
        domain.add_service("[service=temp[id=1]][vspace=sensors]", resolver=b)
        client = domain.add_client(resolver=a)
        domain.run(2.0)
        return domain, a, b, client

    def test_resolution_forwarded_to_owning_inr(self, split_domain):
        domain, a, b, client = split_domain
        reply = client.resolve_early(parse("[service=temp][vspace=sensors]"))
        domain.run(1.0)
        assert len(reply.value) == 1

    def test_discovery_forwarded_to_owning_inr(self, split_domain):
        domain, a, b, client = split_domain
        reply = client.discover(parse("[service=temp][vspace=sensors]"))
        domain.run(1.0)
        assert [name.to_wire() for name, _ in reply.value] == [
            "[service=temp[id=1]][vspace=sensors]"
        ]

    def test_data_packets_forwarded_and_vspace_cached(self, split_domain):
        domain, a, b, client = split_domain
        service = domain.services[0]
        inbox = []
        service.on_message(lambda m, s: inbox.append(m.data))
        queries_before = domain.dsr.queries_served
        for i in range(3):
            client.send_anycast(parse("[service=temp][vspace=sensors]"),
                                f"m{i}".encode())
            domain.run(0.5)
        assert inbox == [b"m0", b"m1", b"m2"]
        # Only the first packet needed the DSR; the rest hit the cache.
        assert domain.dsr.queries_served == queries_before + 1

    def test_unknown_vspace_drops_after_dsr_miss(self, split_domain):
        domain, a, b, client = split_domain
        dropped_before = a.stats.packets_dropped
        client.send_anycast(parse("[service=x][vspace=never-registered]"), b"x")
        domain.run(1.0)
        assert a.stats.packets_dropped == dropped_before + 1

    def test_advertisement_for_foreign_vspace_forwarded(self, split_domain):
        """A service that attaches to the wrong INR still gets its name
        into the right vspace tree."""
        domain, a, b, client = split_domain
        domain.add_service("[service=temp[id=2]][vspace=sensors]", resolver=a)
        domain.run(1.0)
        assert b.name_count("sensors") == 2


class TestMultiVspaceDiscovery:
    def test_unscoped_discovery_spans_all_local_vspaces(self):
        """Section 2.2: discovery with no vspace constraint matches all
        the names the resolver knows about, across its vspaces."""
        domain = InsDomain(seed=23)
        inr = domain.add_inr(vspaces=("cams", "printers"))
        domain.add_service("[service=camera[id=1]][vspace=cams]", resolver=inr)
        domain.add_service("[service=printer[id=2]][vspace=printers]",
                           resolver=inr)
        client = domain.add_client(resolver=inr)
        domain.run(1.0)
        reply = client.discover(NameSpecifier())
        domain.run(1.0)
        services = {name.root("service").value for name, _ in reply.value}
        assert services == {"camera", "printer"}

    def test_scoped_discovery_stays_in_its_vspace(self):
        domain = InsDomain(seed=24)
        inr = domain.add_inr(vspaces=("cams", "printers"))
        domain.add_service("[service=camera[id=1]][vspace=cams]", resolver=inr)
        domain.add_service("[service=printer[id=2]][vspace=printers]",
                           resolver=inr)
        client = domain.add_client(resolver=inr)
        domain.run(1.0)
        reply = client.discover(parse("[vspace=cams]"))
        domain.run(1.0)
        services = {name.root("service").value for name, _ in reply.value}
        assert services == {"camera"}


class TestMemoStats:
    def test_repeated_resolution_surfaces_memo_counters(self, queryable):
        """InrStats aggregates the lookup-memo counters across every
        tree the resolver owns (vspaces + packet-cache index)."""
        domain, a, b, client = queryable
        query = parse("[service=cam]")
        client.resolve_early(query)
        domain.run(0.5)
        misses_after_first = a.stats.lookup_memo_misses
        hits_after_first = a.stats.lookup_memo_hits
        assert misses_after_first > 0
        client.resolve_early(query)
        domain.run(0.5)
        assert a.stats.lookup_memo_hits > hits_after_first
        assert a.stats.lookup_memo_misses == misses_after_first

    def test_new_advertisement_surfaces_invalidation(self, queryable):
        domain, a, b, client = queryable
        query = parse("[service=cam]")
        client.resolve_early(query)
        domain.run(0.5)
        domain.add_service("[service=cam[id=3]][room=512]", resolver=a)
        domain.run(0.5)
        client.resolve_early(query)
        domain.run(0.5)
        assert a.stats.lookup_memo_invalidations > 0
