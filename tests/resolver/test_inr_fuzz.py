"""Fuzz the INR's message handler: arbitrary and malformed control
messages must never crash a resolver (robustness, design goal iii)."""

import random

from hypothesis import given, settings, strategies as st

from repro.experiments import InsDomain
from repro.nametree import AnnouncerID, Endpoint
from repro.resolver import (
    Advertisement,
    DataPacket,
    NameUpdate,
    PeerAccept,
    PeerGoodbye,
    PeerRequest,
    PingResponse,
    UpdateBatch,
)
from repro.resolver.ports import INR_PORT

from ..conftest import parse

tokens = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=6
)


@st.composite
def random_payload(draw):
    choice = draw(st.integers(min_value=0, max_value=6))
    if choice == 0:
        return DataPacket(raw=draw(st.binary(max_size=120)))
    if choice == 1:
        return UpdateBatch(
            sender=draw(tokens),
            updates=[
                NameUpdate(
                    name=parse(f"[{draw(tokens)}={draw(tokens)}]"),
                    announcer=AnnouncerID.generate(draw(tokens)),
                    endpoints=(Endpoint(draw(tokens), draw(st.integers(0, 65535))),),
                    anycast_metric=draw(st.floats(allow_nan=False,
                                                  allow_infinity=False)),
                    route_metric=draw(st.floats(min_value=0, max_value=1e6)),
                    lifetime=draw(st.floats(min_value=0, max_value=1e6)),
                    vspace=draw(st.sampled_from(["default", "other", ""])),
                )
                for _ in range(draw(st.integers(0, 3)))
            ],
            triggered=draw(st.booleans()),
        )
    if choice == 2:
        return Advertisement(
            name=parse(f"[{draw(tokens)}={draw(tokens)}]"),
            announcer=AnnouncerID.generate(draw(tokens)),
            endpoints=(),
            anycast_metric=draw(st.floats(allow_nan=False, allow_infinity=False)),
            lifetime=draw(st.floats(min_value=0, max_value=1e6)),
        )
    if choice == 3:
        return PeerRequest(requester=draw(tokens),
                           measured_rtt=draw(st.floats(0, 10)))
    if choice == 4:
        return PeerGoodbye(sender=draw(tokens))
    if choice == 5:
        return PingResponse(token=draw(st.integers(-10, 1 << 32)),
                            responder=draw(tokens))
    return PeerAccept(accepter=draw(tokens))


@given(payloads=st.lists(random_payload(), min_size=1, max_size=12),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_inr_survives_arbitrary_control_traffic(payloads, seed):
    """Feed a live INR a random message soup; it must keep serving."""
    domain = InsDomain(seed=seed)
    inr = domain.add_inr(address="inr-target")
    domain.add_service("[service=canary[id=1]]", resolver=inr)
    domain.run(1.0)
    source = domain.network.add_node(f"fuzzer-{seed}")
    for payload in payloads:
        domain.network.send(source.address, "inr-target", INR_PORT, payload, 64)
    domain.run(5.0)
    # The resolver still answers a legitimate query afterwards.
    client = domain.add_client(resolver=inr)
    reply = client.resolve_early(parse("[service=canary]"))
    domain.run(1.0)
    assert reply.done
    assert len(reply.value) == 1
