"""Tests for the overlay neighbor table."""

from repro.resolver import NeighborTable
from repro.resolver.neighbors import RTT_EWMA_ALPHA, UNMEASURED_RTT


class TestNeighborTable:
    def test_add_and_lookup(self):
        table = NeighborTable()
        neighbor = table.add("inr-2", rtt=0.01)
        assert "inr-2" in table
        assert table.get("inr-2") is neighbor
        assert len(table) == 1

    def test_first_sample_replaces_placeholder(self):
        table = NeighborTable()
        table.add("inr-2")
        assert table.rtt_to("inr-2") == UNMEASURED_RTT
        table.add("inr-2", rtt=0.05)
        assert table.rtt_to("inr-2") == 0.05

    def test_rtt_is_smoothed_not_pinned_to_minimum(self):
        """A degraded link's metric recovers: repeated slow samples pull
        the EWMA up even after a fast historical sample."""
        table = NeighborTable()
        table.add("inr-2", rtt=0.01)
        neighbor = table.get("inr-2")
        for _ in range(30):
            neighbor.observe_rtt(0.2)
        assert table.rtt_to("inr-2") > 0.19  # converged near the new RTT

    def test_ewma_blends_one_sample(self):
        table = NeighborTable()
        table.add("inr-2", rtt=0.1)
        table.add("inr-2", rtt=0.2)
        expected = 0.1 + RTT_EWMA_ALPHA * (0.2 - 0.1)
        assert abs(table.rtt_to("inr-2") - expected) < 1e-12

    def test_parent_flag_is_sticky(self):
        table = NeighborTable()
        table.add("inr-2", is_parent=True)
        table.add("inr-2")
        assert table.parent.address == "inr-2"

    def test_no_parent_by_default(self):
        table = NeighborTable()
        table.add("inr-2")
        assert table.parent is None

    def test_unknown_rtt_is_unmeasured(self):
        assert NeighborTable().rtt_to("stranger") == UNMEASURED_RTT

    def test_remove(self):
        table = NeighborTable()
        table.add("inr-2")
        removed = table.remove("inr-2")
        assert removed.address == "inr-2"
        assert "inr-2" not in table
        assert table.remove("inr-2") is None

    def test_heard_from_and_silence(self):
        table = NeighborTable()
        table.add("inr-2")
        table.add("inr-3")
        table.heard_from("inr-2", now=100.0)
        silent = table.silent_since(cutoff=50.0)
        assert [n.address for n in silent] == ["inr-3"]

    def test_heard_from_unknown_is_noop(self):
        NeighborTable().heard_from("stranger", now=1.0)

    def test_iteration_and_addresses(self):
        table = NeighborTable()
        table.add("a")
        table.add("b")
        assert table.addresses == ("a", "b")
        assert {n.address for n in table} == {"a", "b"}
