"""Tests for the windowed load monitor."""

import pytest

from repro.resolver import LoadMonitor


class TestLoadMonitor:
    def test_rates_over_window(self):
        monitor = LoadMonitor(now=0.0)
        for _ in range(100):
            monitor.count_lookup()
        monitor.count_update_names(500)
        sample = monitor.sample(now=10.0)
        assert sample.lookups_per_second == pytest.approx(10.0)
        assert sample.update_names_per_second == pytest.approx(50.0)
        assert sample.window == pytest.approx(10.0)

    def test_sampling_resets_the_window(self):
        monitor = LoadMonitor(now=0.0)
        monitor.count_lookup(40)
        monitor.sample(now=10.0)
        second = monitor.sample(now=20.0)
        assert second.lookups_per_second == 0.0

    def test_totals_accumulate_across_windows(self):
        monitor = LoadMonitor(now=0.0)
        monitor.count_lookup(3)
        monitor.sample(now=1.0)
        monitor.count_lookup(4)
        monitor.sample(now=2.0)
        assert monitor.total_lookups == 7

    def test_zero_width_window_does_not_divide_by_zero(self):
        monitor = LoadMonitor(now=5.0)
        monitor.count_lookup()
        sample = monitor.sample(now=5.0)
        assert sample.lookups_per_second > 0  # huge, but finite


class TestEwma:
    def test_default_alpha_tracks_raw_rates_exactly(self):
        monitor = LoadMonitor(now=0.0)  # alpha = 1.0: no smoothing
        monitor.count_lookup(100)
        sample = monitor.sample(now=1.0)
        assert sample.ewma_lookups_per_second == sample.lookups_per_second
        monitor.sample(now=2.0)

    def test_smoothing_damps_a_spike(self):
        monitor = LoadMonitor(now=0.0, ewma_alpha=0.5)
        monitor.count_lookup(100)
        first = monitor.sample(now=1.0)  # seeds the EWMA at the raw rate
        assert first.ewma_lookups_per_second == pytest.approx(100.0)
        second = monitor.sample(now=2.0)  # raw drops to 0 instantly...
        assert second.lookups_per_second == 0.0
        # ...but the smoothed signal decays, damping flappy decisions.
        assert second.ewma_lookups_per_second == pytest.approx(50.0)
        third = monitor.sample(now=3.0)
        assert third.ewma_lookups_per_second == pytest.approx(25.0)

    def test_update_rate_smoothed_independently(self):
        monitor = LoadMonitor(now=0.0, ewma_alpha=0.5)
        monitor.count_update_names(80)
        monitor.sample(now=1.0)
        second = monitor.sample(now=2.0)
        assert second.ewma_update_names_per_second == pytest.approx(40.0)
        assert second.ewma_lookups_per_second == 0.0

    def test_invalid_alpha_rejected(self):
        for alpha in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="ewma_alpha"):
                LoadMonitor(ewma_alpha=alpha)
