"""Tests for the windowed load monitor."""

import pytest

from repro.resolver import LoadMonitor


class TestLoadMonitor:
    def test_rates_over_window(self):
        monitor = LoadMonitor(now=0.0)
        for _ in range(100):
            monitor.count_lookup()
        monitor.count_update_names(500)
        sample = monitor.sample(now=10.0)
        assert sample.lookups_per_second == pytest.approx(10.0)
        assert sample.update_names_per_second == pytest.approx(50.0)
        assert sample.window == pytest.approx(10.0)

    def test_sampling_resets_the_window(self):
        monitor = LoadMonitor(now=0.0)
        monitor.count_lookup(40)
        monitor.sample(now=10.0)
        second = monitor.sample(now=20.0)
        assert second.lookups_per_second == 0.0

    def test_totals_accumulate_across_windows(self):
        monitor = LoadMonitor(now=0.0)
        monitor.count_lookup(3)
        monitor.sample(now=1.0)
        monitor.count_lookup(4)
        monitor.sample(now=2.0)
        assert monitor.total_lookups == 7

    def test_zero_width_window_does_not_divide_by_zero(self):
        monitor = LoadMonitor(now=5.0)
        monitor.count_lookup()
        sample = monitor.sample(now=5.0)
        assert sample.lookups_per_second > 0  # huge, but finite
