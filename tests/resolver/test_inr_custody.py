"""Custody store-and-forward inside the INR (disruption tolerance).

A late-binding anycast payload the forwarding agent cannot move is
parked in the custody store instead of dropped, re-attempted when name
state returns, handed off when the custodian terminates, and preserved
across a crash/restart through the snapshot/adopt pattern. Every way a
custodied payload can finally die has its own ``drops_*`` cause and a
``drop:<cause>`` span status.
"""

from dataclasses import replace

from repro.chaos.scenario import fast_chaos_config
from repro.experiments import InsDomain
from repro.message import CustodyRecord, CustodyTransfer, InsMessage

from ..conftest import parse


def custody_config(**overrides):
    settings = dict(
        enable_custody=True,
        custody_capacity=8,
        custody_ttl=20.0,
        custody_retry_interval=0.5,
    )
    settings.update(overrides)
    return replace(fast_chaos_config(), **settings)


def make_domain(config, seed=11, n_inrs=1):
    domain = InsDomain(
        seed=seed,
        config=config,
        dsr_registration_lifetime=3.0,
        dsr_sweep_interval=0.5,
    )
    inrs = [domain.add_inr() for _ in range(n_inrs)]
    client = domain.add_client(resolver=inrs[0])
    domain.run(2.0)
    return domain, inrs, client


class TestStoreAndForward:
    def test_no_route_payload_waits_for_the_service(self):
        """The tentpole behavior: a payload sent before its service
        exists is held, then delivered when the name appears — the name
        waits out the gap."""
        domain, (inr,), client = make_domain(custody_config())
        client.send_anycast(parse("[service=late]"), b"wait-for-me")
        domain.run(0.5)
        assert inr.stats.custody_accepted == 1
        assert inr.stats.drops_no_route == 0
        assert len(inr.custody) == 1
        assert inr.custody.entries()[0].cause == "no-route"

        inbox = []
        service = domain.add_service("[service=late]", resolver=inr)
        service.on_message(lambda m, s: inbox.append(m))
        domain.run(3.0)
        assert [m.data for m in inbox] == [b"wait-for-me"]
        assert inr.stats.custody_released == 1
        assert len(inr.custody) == 0
        assert inr.stats.packets_dropped == 0

    def test_custody_ttl_lapse_is_an_attributed_drop(self):
        domain, (inr,), client = make_domain(custody_config(custody_ttl=1.0))
        client.send_anycast(parse("[service=never]"), b"doomed")
        domain.run(3.0)
        assert inr.stats.drops_custody_expired == 1
        assert inr.stats.custody_accepted == 1
        assert inr.stats.drops_by_cause()["custody-expired"] == 1
        assert inr.stats.packets_dropped == 1
        assert len(inr.custody) == 0

    def test_capacity_eviction_is_an_attributed_drop(self):
        domain, (inr,), client = make_domain(
            custody_config(custody_capacity=1)
        )
        client.send_anycast(parse("[service=first]"), b"old")
        client.send_anycast(parse("[service=second]"), b"new")
        domain.run(0.5)
        assert inr.stats.custody_accepted == 2
        assert inr.stats.drops_custody_evicted == 1
        assert inr.stats.drops_by_cause()["custody-evicted"] == 1
        (held,) = inr.custody.entries()
        assert held.destination == parse("[service=second]")

    def test_multicast_is_never_custodied(self):
        """A multicast payload has no single custodian; it keeps the
        paper's drop behavior even with custody on."""
        domain, (inr,), client = make_domain(custody_config())
        client.send_multicast(parse("[service=nobody]"), b"x")
        domain.run(0.5)
        assert inr.stats.drops_no_route == 1
        assert inr.stats.custody_accepted == 0

    def test_custody_spans_carry_drop_statuses(self):
        """Satellite: lost payloads stay attributable from traces alone
        — the accept ends the hop span, the lapse opens a custody span
        with a ``drop:`` status."""
        config = custody_config(custody_ttl=1.0)
        domain = InsDomain(
            seed=11,
            config=config,
            dsr_registration_lifetime=3.0,
            dsr_sweep_interval=0.5,
        )
        collector = domain.observe()
        inr = domain.add_inr()
        client = domain.add_client(resolver=inr)
        domain.run(2.0)
        client.send_anycast(parse("[service=never]"), b"doomed")
        domain.run(3.0)
        statuses = {span.status for span in collector.tracer.spans}
        assert "custody-accepted" in statuses
        assert "drop:custody-expired" in statuses


class TestSuspectNextHop:
    def test_silent_next_hop_diverts_into_custody(self):
        """A live route through a silent neighbor is a dead link in
        disguise; the payload goes into custody, not onto the link."""
        config = custody_config(custody_suspect_silence=1.0)
        domain, (a, b), client = make_domain(config, n_inrs=2)
        inbox = []
        service = domain.add_service("[service=far]", resolver=b)
        service.on_message(lambda m, s: inbox.append(m))
        domain.run(2.0)

        domain.network.partition([a.address], [b.address])
        domain.run(1.5)
        client.send_anycast(parse("[service=far]"), b"through-the-gap")
        domain.run(0.3)
        assert a.stats.custody_accepted == 1
        assert a.custody.entries()[0].cause == "next-hop-suspect"

        domain.network.heal([a.address], [b.address])
        domain.run(4.0)
        assert [m.data for m in inbox] == [b"through-the-gap"]
        assert a.stats.custody_released == 1


class TestCustodyMigration:
    def test_terminate_hands_custody_to_a_neighbor(self):
        """Held payloads must not die with their custodian: a
        terminating INR ships them in a CUSTODY-TRANSFER, and they are
        delivered once the successor learns the name."""
        domain, (a, b), client = make_domain(custody_config(), n_inrs=2)
        # Custody lands on the client's resolver (a); terminate it.
        client.send_anycast(parse("[service=later]"), b"survive-me")
        domain.run(0.5)
        custodian = a if len(a.custody) else b
        survivor = b if custodian is a else a
        assert len(custodian.custody) == 1

        custodian.terminate()
        domain.run(1.0)
        assert custodian.stats.custody_transfers_sent == 1
        assert survivor.stats.custody_transfers_received == 1
        assert len(survivor.custody) == 1
        (held,) = survivor.custody.entries()
        assert held.transfers == 1

        inbox = []
        service = domain.add_service("[service=later]", resolver=survivor)
        service.on_message(lambda m, s: inbox.append(m))
        domain.run(3.0)
        assert [m.data for m in inbox] == [b"survive-me"]

    def test_crash_restart_preserves_custody(self):
        """Custody is stable storage: the snapshot taken at crash is
        re-adopted on restart with deadlines intact."""
        domain, (inr,), client = make_domain(custody_config())
        client.send_anycast(parse("[service=later]"), b"persist-me")
        domain.run(0.5)
        deadline = inr.custody.entries()[0].deadline

        domain.crash_inr(inr)
        domain.run(1.0)
        domain.restart_inr(inr)
        domain.run(1.0)
        assert len(inr.custody) == 1
        assert inr.custody.entries()[0].deadline == deadline

        inbox = []
        service = domain.add_service("[service=later]", resolver=inr)
        service.on_message(lambda m, s: inbox.append(m))
        domain.run(3.0)
        assert [m.data for m in inbox] == [b"persist-me"]

    def test_transfer_into_custodyless_resolver_is_attributed(self):
        """A handoff landing where no custody store runs loses its
        payloads — but each loss is counted and has a span status, not
        silently swallowed."""
        domain, (inr,), _client = make_domain(
            replace(fast_chaos_config(), enable_custody=False)
        )
        raw = InsMessage(destination=parse("[service=x]"), data=b"p").encode()
        transfer = CustodyTransfer(
            sender="inr-ghost",
            records=(
                CustodyRecord(
                    raw=raw,
                    vspace="default",
                    deadline=domain.now + 10.0,
                    priority=0,
                    transfers=1,
                ),
            ),
        )
        inr._handle_custody_transfer(transfer)
        assert inr.stats.custody_transfers_received == 1
        assert inr.stats.drops_custody_transfer_failed == 1
        assert inr.stats.drops_by_cause()["custody-transfer-failed"] == 1


class TestPartitionGrace:
    def test_refresh_inside_grace_readmits_and_counts(self):
        """Satellite: soft-state expiry during a partition keeps a
        tombstone for the grace window, so the service's first
        post-heal refresh re-admits the name (counted in InrStats)
        instead of rebuilding from nothing."""
        config = custody_config(partition_grace=6.0)
        domain, (inr,), client = make_domain(config)
        service = domain.add_service("[service=graced]", resolver=inr)
        domain.run(2.0)

        domain.network.partition([service.address], [inr.address])
        # Past the record lifetime (3s) but inside lifetime + grace.
        domain.run(5.0)
        # The graced record is a tombstone: queries must not bind to it.
        reply = client.resolve_early(parse("[service=graced]"))
        domain.run(0.5)
        assert reply.done and reply.value == []

        domain.network.heal([service.address], [inr.address])
        domain.run(2.0)
        assert inr.stats.expiry_grace_readmissions >= 1
        reply = client.resolve_early(parse("[service=graced]"))
        domain.run(0.5)
        assert reply.done and len(reply.value) == 1
