"""Tests for the forwarding agent: late binding (Sections 2, 2.3)."""

import pytest

from repro.experiments import InsDomain
from repro.message import Binding, Delivery, InsMessage
from repro.naming import NameSpecifier
from repro.resolver import DataPacket
from repro.resolver.ports import INR_PORT

from ..conftest import parse


@pytest.fixture
def triangle():
    """Three INRs, a service on each of two of them, a client."""
    domain = InsDomain(seed=9)
    a = domain.add_inr(address="inr-a")
    b = domain.add_inr(address="inr-b")
    c = domain.add_inr(address="inr-c")
    cheap = domain.add_service("[service=p[id=cheap]][room=1]",
                               resolver=b, metric=1.0)
    costly = domain.add_service("[service=p[id=costly]][room=1]",
                                resolver=c, metric=9.0)
    client = domain.add_client(resolver=a)
    domain.run(2.0)
    inbox = []
    cheap.on_message(lambda m, s: inbox.append(("cheap", m)))
    costly.on_message(lambda m, s: inbox.append(("costly", m)))
    return domain, (a, b, c), (cheap, costly), client, inbox


class TestAnycast:
    def test_delivers_to_least_metric(self, triangle):
        domain, inrs, services, client, inbox = triangle
        client.send_anycast(parse("[service=p][room=1]"), b"job")
        domain.run(1.0)
        assert [who for who, _ in inbox] == ["cheap"]

    def test_message_arrives_unchanged(self, triangle):
        """Late binding never alters names or data (Section 2.3)."""
        domain, inrs, services, client, inbox = triangle
        source = parse("[service=p-client[id=me]]")
        client.send_anycast(parse("[service=p][room=1]"), b"payload-123",
                            source=source)
        domain.run(1.0)
        _, message = inbox[0]
        assert message.data == b"payload-123"
        assert message.destination == parse("[service=p][room=1]")
        assert message.source == source

    def test_metric_flip_rebinds(self, triangle):
        domain, inrs, (cheap, costly), client, inbox = triangle
        cheap.set_metric(50.0)
        domain.run(1.0)
        client.send_anycast(parse("[service=p][room=1]"), b"job")
        domain.run(1.0)
        assert [who for who, _ in inbox] == ["costly"]

    def test_no_match_drops(self, triangle):
        domain, (a, b, c), services, client, inbox = triangle
        dropped_before = a.stats.packets_dropped
        client.send_anycast(parse("[service=nonexistent]"), b"x")
        domain.run(1.0)
        assert a.stats.packets_dropped == dropped_before + 1
        assert inbox == []

    def test_local_service_served_locally(self, triangle):
        """A destination attached to the client's own INR is tunnelled
        straight to the endpoint; no overlay forwarding."""
        domain, (a, b, c), services, client, inbox = triangle
        local = domain.add_service("[service=p[id=local]][room=1]",
                                   resolver=a, metric=0.1)
        local_inbox = []
        local.on_message(lambda m, s: local_inbox.append(m))
        domain.run(1.0)
        forwarded_before = a.stats.packets_forwarded
        client.send_anycast(parse("[service=p][room=1]"), b"x")
        domain.run(1.0)
        assert len(local_inbox) == 1
        assert a.stats.packets_forwarded == forwarded_before


class TestMulticast:
    def test_reaches_all_matches_exactly_once(self, triangle):
        domain, inrs, services, client, inbox = triangle
        client.send_multicast(parse("[service=p][room=1]"), b"all")
        domain.run(1.0)
        assert sorted(who for who, _ in inbox) == ["cheap", "costly"]

    def test_group_by_wildcard_id(self, triangle):
        domain, inrs, services, client, inbox = triangle
        client.send_multicast(parse("[service=p[id=*]][room=1]"), b"all")
        domain.run(1.0)
        assert sorted(who for who, _ in inbox) == ["cheap", "costly"]

    def test_single_member_group(self, triangle):
        domain, inrs, services, client, inbox = triangle
        client.send_multicast(parse("[service=p[id=cheap]]"), b"one")
        domain.run(1.0)
        assert [who for who, _ in inbox] == ["cheap"]

    def test_no_duplicates_under_shared_next_hop(self):
        """Two matching services behind the same next-hop INR get one
        copy each, not one per record at the branching resolver."""
        domain = InsDomain(seed=10)
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        one = domain.add_service("[service=s[id=1]]", resolver=b)
        two = domain.add_service("[service=s[id=2]]", resolver=b)
        client = domain.add_client(resolver=a)
        inbox = []
        one.on_message(lambda m, s: inbox.append("one"))
        two.on_message(lambda m, s: inbox.append("two"))
        domain.run(2.0)
        client.send_multicast(parse("[service=s]"), b"x")
        domain.run(1.0)
        assert sorted(inbox) == ["one", "two"]


class TestHopLimit:
    def test_exhausted_hop_limit_drops(self, triangle):
        domain, (a, b, c), services, client, inbox = triangle
        message = InsMessage(
            destination=parse("[service=p][room=1]"),
            data=b"x",
            binding=Binding.LATE,
            delivery=Delivery.ANYCAST,
            hop_limit=0,
        )
        domain.network.send(client.address, a.address, INR_PORT,
                            DataPacket(raw=message.encode()), 100)
        domain.run(1.0)
        assert inbox == []

    def test_hop_limit_decrements_along_path(self, triangle):
        domain, inrs, services, client, inbox = triangle
        message = InsMessage(
            destination=parse("[service=p][room=1]"),
            data=b"x",
            hop_limit=8,
        )
        domain.network.send(client.address, inrs[0].address, INR_PORT,
                            DataPacket(raw=message.encode()), 100)
        domain.run(1.0)
        _, received = inbox[0]
        assert received.hop_limit == 7  # one overlay hop a -> b


class TestEmptyDestination:
    def test_undecodable_packet_is_ignored(self, triangle):
        domain, (a, b, c), services, client, inbox = triangle
        domain.network.send(client.address, a.address, INR_PORT,
                            DataPacket(raw=b"garbage"), 7)
        # must not crash the resolver
        domain.run(1.0)
        client.send_anycast(parse("[service=p][room=1]"), b"still-works")
        domain.run(1.0)
        assert len(inbox) == 1


class TestEarlyBindingFlagOnDataPath:
    """Figure 10's B flag made functional: a B=EARLY data message gets
    the bindings answered back to its source name instead of payload
    forwarding."""

    def test_bindings_returned_to_the_source_name(self, triangle):
        import json

        domain, (a, b, c), services, client, inbox = triangle
        # an addressable requester (a service with its own name)
        requester = domain.add_service("[service=asker[id=q]]", resolver=a)
        answers = []
        requester.on_message(lambda m, s: answers.append(m))
        domain.run(1.0)
        message = InsMessage(
            destination=parse("[service=p][room=1]"),
            source=parse("[service=asker[id=q]]"),
            binding=Binding.EARLY,
        )
        domain.network.send(requester.address, a.address, INR_PORT,
                            DataPacket(raw=message.encode()), 200)
        domain.run(1.0)
        assert len(answers) == 1
        payload = json.loads(answers[0].data.decode())
        metrics = [b["metric"] for b in payload["bindings"]]
        assert metrics == sorted(metrics) == [1.0, 9.0]
        # no payload was forwarded to the printers
        assert inbox == []

    def test_early_binding_without_source_name_is_dropped(self, triangle):
        domain, (a, b, c), services, client, inbox = triangle
        dropped_before = a.stats.packets_dropped
        message = InsMessage(
            destination=parse("[service=p][room=1]"),
            binding=Binding.EARLY,
        )
        domain.network.send(client.address, a.address, INR_PORT,
                            DataPacket(raw=message.encode()), 100)
        domain.run(1.0)
        assert a.stats.packets_dropped == dropped_before + 1
        assert inbox == []
