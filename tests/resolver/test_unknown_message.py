"""Regression: unknown payload types must not vanish uncounted.

``INR.handle_message`` is an isinstance elif-chain; before the terminal
``else`` existed, a payload type no arm recognized was silently
swallowed — no counter, no span, invisible to traces and stats alike.
"""

from repro.experiments import InsDomain
from repro.obs import TraceContext


class BogusPayload:
    """A payload type no dispatch arm recognizes."""

    def __init__(self, trace=None):
        self.trace = trace


def test_unknown_payload_is_counted():
    domain = InsDomain(seed=3)
    inr = domain.add_inr(address="inr-a")
    domain.run(0.5)
    before = inr.stats.packets_dropped
    inr.handle_message(BogusPayload(), "stranger")
    assert inr.stats.drops_unknown_message == 1
    assert inr.stats.packets_dropped == before + 1
    assert inr.stats.drops_by_cause()["unknown-message"] == 1
    snapshot = inr.stats.snapshot()
    assert snapshot["drops_unknown_message"] == 1


def test_unknown_payload_ends_hop_span_with_drop_status():
    domain = InsDomain(seed=3)
    inr = domain.add_inr(address="inr-a")
    collector = domain.observe()
    domain.run(0.5)
    context = TraceContext(trace_id=77, span_id=5)
    inr.handle_message(BogusPayload(trace=context), "stranger")
    spans = [s for s in collector.tracer.spans if s.name == "inr.hop"]
    assert len(spans) == 1
    (span,) = spans
    assert span.status == "drop:unknown-message"
    assert span.trace_id == 77
    assert span.tags["payload_type"] == "BogusPayload"


def test_untraced_unknown_payload_opens_no_span():
    domain = InsDomain(seed=3)
    inr = domain.add_inr(address="inr-a")
    collector = domain.observe()
    domain.run(0.5)
    span_count = len(collector.tracer.spans)
    inr.handle_message(BogusPayload(), "stranger")
    assert inr.stats.drops_unknown_message == 1
    assert len(collector.tracer.spans) == span_count
