"""Tests for the two-phase crash-safe vspace handoff (PROTOCOL.md §11).

The integration-shaped tests drive the real load policy — sustained
update overload makes the donor delegate its busiest vspace — and crash
one side mid-protocol. The reconciliation tests drive the coordinator
directly with crafted frames, pinning the fencing and restart-probe
rules one message at a time.
"""

import pytest

from repro.experiments import InsDomain
from repro.message import (
    DelegateOffer,
    DelegateRecord,
    DelegateTransfer,
)
from repro.nametree import NameTree
from repro.resolver import InrConfig
from repro.resolver.delegation import RecipientHandoff

from ..conftest import parse


def delegating_config(**overrides) -> InrConfig:
    fields = dict(
        enable_load_balancing=True,
        spawn_lookup_rate=1e9,  # park the lookup-overload path
        delegate_update_rate=20.0,
        terminate_lookup_rate=1.0,
        load_check_interval=5.0,
        minimum_lifetime=10.0,
        refresh_interval=1.0,
        record_lifetime=1e9,
        delegation_offer_timeout=0.3,
        delegation_ack_timeout=0.3,
        delegation_commit_timeout=0.3,
        delegation_max_retries=3,
        delegation_chunk_names=8,
        delegation_retry_cooldown=1.0,
    )
    fields.update(overrides)
    return InrConfig(**fields)


def overloaded_domain(seed, n_candidates=1, **config_overrides):
    """A donor routing two vspaces under sustained update overload, plus
    ``n_candidates`` spare nodes for it to hand off to."""
    domain = InsDomain(seed=seed, config=delegating_config(**config_overrides))
    donor = domain.add_inr(address="inr-main", vspaces=("space-a", "space-b"))
    for i in range(n_candidates):
        domain.add_candidate(f"spare-{i + 1}")
    for i in range(60):
        space = "space-a" if i % 2 else "space-b"
        domain.add_service(f"[service=bulk[id=n{i}]][vspace={space}]",
                           resolver=donor, refresh_interval=1.0)
    return domain, donor


def crash_when(domain, predicate, victim):
    """Poll simulated time and crash ``victim()`` once ``predicate()``
    first holds — how the tests hit an exact protocol phase."""
    def poll():
        if predicate():
            target = victim()
            if target is not None and not target.terminated:
                target.crash()
            return
        domain.sim.schedule(0.001, poll)

    domain.sim.schedule(0.001, poll)


def live_record_total(domain):
    return sum(inr.name_count() for inr in domain.live_inrs)


class TestTwoPhaseHappyPath:
    def test_handoff_commits_and_both_sides_settle(self):
        domain, donor = overloaded_domain(seed=50)
        domain.run(30.0)
        delegated = next(
            v for v in ("space-a", "space-b") if v not in donor.vspaces
        )
        spawned = domain.inr_at("spare-1")
        assert donor.delegation.delegated_away == {delegated: "spare-1"}
        assert spawned.delegation.adopted == {delegated: "inr-main"}
        assert not donor.delegation.busy and not spawned.delegation.busy
        assert donor.stats.delegations_committed == 1
        assert spawned.stats.delegations_adopted == 1
        assert donor.stats.delegations_aborted == 0
        assert spawned.name_count(delegated) == 30
        assert domain.dsr.resolvers_for(delegated) == ("spare-1",)

    def test_records_travel_in_stop_and_wait_chunks(self):
        domain, donor = overloaded_domain(seed=51)
        domain.run(30.0)
        spawned = domain.inr_at("spare-1")
        # 30 records at chunk size 8 -> 4 chunks, every record acked
        # across and none duplicated.
        assert donor.stats.delegate_records_sent == 30
        assert spawned.stats.delegate_records_received == 30
        assert live_record_total(domain) == 60

    def test_queries_resolve_through_the_new_owner(self):
        domain, donor = overloaded_domain(seed=52)
        domain.run(30.0)
        delegated = next(
            v for v in ("space-a", "space-b") if v not in donor.vspaces
        )
        client = domain.add_client(resolver=donor)
        reply = client.resolve_early(
            parse(f"[service=bulk][vspace={delegated}]")
        )
        domain.run(2.0)
        assert len(reply.value) == 30


class TestCrashRecovery:
    def test_recipient_crash_mid_transfer_donor_keeps_tree(self):
        domain, donor = overloaded_domain(seed=53, n_candidates=1)
        crash_when(
            domain,
            lambda: (donor.delegation.donor is not None
                     and donor.delegation.donor.phase == "transfer"
                     and donor.delegation.donor.chunks_acked >= 1),
            lambda: domain.inr_at("spare-1"),
        )
        domain.run(30.0)
        # The only candidate died mid-handoff: the donor aborted, never
        # stopped serving, and still routes both vspaces — zero loss.
        assert donor.stats.delegations_aborted >= 1
        assert donor.stats.delegations_committed == 0
        assert not donor.delegation.busy
        assert set(donor.vspaces) == {"space-a", "space-b"}
        assert donor.name_count() == 60

    def test_abort_retries_onto_fresh_candidate(self):
        domain, donor = overloaded_domain(seed=54, n_candidates=2)
        crash_when(
            domain,
            lambda: (donor.delegation.donor is not None
                     and donor.delegation.donor.phase == "transfer"
                     and donor.delegation.donor.chunks_acked >= 1),
            lambda: domain.inr_at(donor.delegation.donor.recipient),
        )
        domain.run(60.0)
        # Self-healing: after the abort and cooldown the load checker
        # claims the remaining spare and the handoff completes there.
        assert donor.stats.delegations_aborted >= 1
        assert donor.stats.delegations_committed == 1
        assert len(donor.vspaces) == 1
        delegated, recipient = next(
            iter(donor.delegation.delegated_away.items())
        )
        owner = domain.inr_at(recipient)
        assert not owner.terminated
        assert owner.name_count(delegated) == 30
        assert live_record_total(domain) == 60


class TestRestartReconciliation:
    """The two-generals races, one crafted message at a time."""

    def reconciliation_domain(self, seed):
        domain = InsDomain(seed=seed, config=delegating_config(
            enable_load_balancing=False
        ))
        a = domain.add_inr(address="inr-a", vspaces=("v",))
        b = domain.add_inr(address="inr-b", vspaces=("w",))
        return domain, a, b

    def test_restart_probe_rolled_back_by_unfinalized_donor(self):
        """Both sides crashed mid-handoff: the restarted recipient's
        snapshot remembers the adoption and probes; the donor still
        routes the vspace, so it cannot have finalized — abort wins."""
        domain, a, b = self.reconciliation_domain(60)
        b.delegation.adopt_snapshot(((), (("v", "inr-a", 7),)))
        assert "v" in b.trees  # adopted back, pending the probe's answer
        domain.run(1.0)
        assert b.delegation.adopted == {}
        assert "v" not in b.trees
        assert b.stats.delegation_rollbacks == 1
        assert "v" in a.vspaces  # exactly one authority: the donor

    def test_restart_probe_echoed_by_finalized_donor(self):
        """The donor finalized before both crashes (``delegated_away``
        is in its snapshot): the probe gets an echo and the adoption
        stands."""
        domain, a, b = self.reconciliation_domain(61)
        a.delegation.delegated_away["x"] = "inr-b"
        b.delegation.adopt_snapshot(((), (("x", "inr-a", 9),)))
        domain.run(1.0)
        assert b.delegation.adopted == {"x": "inr-a"}
        assert "x" in b.trees
        assert b.stats.delegation_rollbacks == 0
        assert not b.delegation.busy

    def test_late_commit_for_aborted_handoff_rolls_recipient_back(self):
        """The donor aborted id 11 but the recipient adopted off a
        retransmitted final chunk and commits late: abort wins."""
        domain, a, b = self.reconciliation_domain(62)
        a.delegation._aborted_ids[11] = "x"
        handoff = RecipientHandoff(handoff_id=11, vspace="x", donor="inr-a",
                                   total_records=0, phase="committed")
        b.delegation.recipients[11] = handoff
        b.delegation.adopted["x"] = "inr-a"
        b.delegation._adopted_ids["x"] = 11
        b.trees["x"] = NameTree(vspace="x")
        b.delegation._send_commit(handoff)
        domain.run(1.0)
        assert b.delegation.adopted == {}
        assert "x" not in b.trees
        assert b.stats.delegation_rollbacks == 1
        assert 11 not in b.delegation.recipients


class TestFencingAndStaleness:
    def make_recipient(self, seed):
        domain = InsDomain(seed=seed, config=delegating_config(
            enable_load_balancing=False
        ))
        a = domain.add_inr(address="inr-a", vspaces=("v",))
        b = domain.add_inr(address="inr-b", vspaces=("w",))
        return domain, a, b

    def test_offer_below_fence_is_dropped_and_counted(self):
        domain, a, b = self.make_recipient(63)
        b.delegation._fence["inr-a"] = 100
        b.delegation.on_message(
            DelegateOffer(sender="inr-a", handoff_id=50, vspace="x",
                          total_records=0),
            "inr-a",
        )
        assert 50 not in b.delegation.recipients
        assert b.stats.delegate_stale_dropped == 1

    def test_reoffer_of_settled_handoff_answered_with_terminal(self):
        domain, a, b = self.make_recipient(64)
        b.delegation._remember(60, "aborted", "x", "inr-a")
        b.delegation.on_message(
            DelegateOffer(sender="inr-a", handoff_id=60, vspace="x",
                          total_records=0),
            "inr-a",
        )
        domain.run(0.5)
        # Settled means settled: no new recipient state was opened.
        assert 60 not in b.delegation.recipients
        assert b.delegation._settled[60][0] == "aborted"

    def test_duplicate_chunk_reacked_not_reapplied(self):
        domain, a, b = self.make_recipient(65)
        handoff = RecipientHandoff(handoff_id=70, vspace="x", donor="inr-a",
                                   total_records=16, expected_seq=1)
        b.delegation.recipients[70] = handoff
        record = DelegateRecord(
            name=parse("[service=bulk[id=n0]][vspace=x]"),
            announcer_host="h0", announcer_startup=0.0,
            endpoints=(("10.0.0.1", 5000, "udp"),),
            anycast_metric=0.0, route_metric=0.0, lifetime=30.0,
        )
        b.delegation.on_message(
            DelegateTransfer(sender="inr-a", handoff_id=70, vspace="x",
                             seq=0, final=False, records=(record,)),
            "inr-a",
        )
        assert handoff.staged == []  # duplicate: re-acked, not re-applied
        assert handoff.expected_seq == 1
        # ...and a chunk from the future is dropped as a gap.
        b.delegation.on_message(
            DelegateTransfer(sender="inr-a", handoff_id=70, vspace="x",
                             seq=5, final=False, records=(record,)),
            "inr-a",
        )
        assert handoff.expected_seq == 1
        assert b.stats.delegate_stale_dropped == 1

    def test_transfer_for_unknown_handoff_aborted_not_adopted(self):
        """A chunk for a handoff this process never heard of (it crashed
        between offer and transfer) must refuse fast so the donor keeps
        its tree instead of burning its whole retry budget."""
        domain, a, b = self.make_recipient(66)
        record = DelegateRecord(
            name=parse("[service=bulk[id=n0]][vspace=x]"),
            announcer_host="h0", announcer_startup=0.0,
            endpoints=(("10.0.0.1", 5000, "udp"),),
            anycast_metric=0.0, route_metric=0.0, lifetime=30.0,
        )
        b.delegation.on_message(
            DelegateTransfer(sender="inr-a", handoff_id=999, vspace="x",
                             seq=0, final=True, records=(record,)),
            "inr-a",
        )
        domain.run(0.5)
        assert 999 not in b.delegation.recipients
        assert "x" not in b.trees
        assert b.delegation.adopted == {}


class TestStagingTimeout:
    def test_orphaned_staging_recipient_abandons_the_handoff(self):
        """An offer whose donor then goes silent forever (crashed, and
        its restart forgot the handoff) must not pin the recipient busy:
        past the donor's whole retry budget it discards the staging
        state and settles the id as aborted."""
        domain = InsDomain(seed=67, config=delegating_config(
            enable_load_balancing=False
        ))
        a = domain.add_inr(address="inr-a", vspaces=("v",))
        b = domain.add_inr(address="inr-b", vspaces=("w",))
        b.delegation.on_message(
            DelegateOffer(sender="inr-a", handoff_id=80, vspace="x",
                          total_records=16),
            "inr-a",
        )
        assert b.delegation.busy
        # patience = max(timeouts) * (max_retries + 2) = 0.3 * 5 = 1.5
        domain.run(3.0)
        assert not b.delegation.busy
        assert 80 not in b.delegation.recipients
        assert b.delegation._settled[80][0] == "aborted"
        assert "x" not in b.trees
