"""INR crash -> restart lifecycle (chaos-harness support)."""

import pytest

from repro.experiments import InsDomain
from repro.resolver import InrConfig

from ..conftest import parse

FAST = InrConfig(
    refresh_interval=1.0,
    record_lifetime=3.0,
    expiry_sweep_interval=0.5,
    heartbeat_interval=1.0,
    neighbor_timeout=4.0,
)


def fast_domain(seed):
    return InsDomain(seed=seed, config=FAST, dsr_registration_lifetime=3.0,
                     dsr_sweep_interval=0.5)


class TestRestartGuards:
    def test_restart_requires_prior_crash(self):
        domain = fast_domain(70)
        inr = domain.add_inr()
        with pytest.raises(RuntimeError, match="only valid after"):
            inr.restart()

    def test_restart_refuses_taken_port(self):
        domain = fast_domain(71)
        inr = domain.add_inr(address="shared-host")
        inr.crash()
        # Another process grabs the INR port while the resolver is down.
        domain.network.node("shared-host").bind(inr.port, object())
        with pytest.raises(RuntimeError, match="taken"):
            inr.restart()


class TestRestartLifecycle:
    def test_state_is_wiped(self):
        domain = fast_domain(72)
        a = domain.add_inr()
        b = domain.add_inr()
        domain.add_service("[service=x[id=1]]", resolver=a,
                           refresh_interval=1.0, lifetime=3.0)
        domain.run(3.0)
        assert a.name_count() == 1 and len(a.neighbors) >= 1
        a.crash()
        a.restart()
        assert a.restarts == 1
        assert a.name_count() == 0
        assert len(a.neighbors) == 0
        assert not a.terminated

    def test_restart_rejoins_and_reregisters(self):
        domain = fast_domain(73)
        a = domain.add_inr()
        b = domain.add_inr()
        domain.run(2.0)
        a.crash()
        domain.run(10.0)  # long enough for everyone to forget a
        assert a.address not in domain.dsr.active_inrs
        a.restart()
        domain.run(5.0)
        assert a.address in domain.dsr.active_inrs
        assert b.address in a.neighbors and a.address in b.neighbors

    def test_names_rebuild_from_service_refreshes(self):
        """A restarted resolver's trees refill from the services' own
        periodic re-advertisements — soft state is the recovery
        protocol (Section 2.2)."""
        domain = fast_domain(74)
        a = domain.add_inr()
        domain.add_service("[service=x[id=1]]", resolver=a,
                           refresh_interval=1.0, lifetime=3.0)
        domain.run(2.0)
        a.crash()
        domain.run(6.0)
        a.restart()
        domain.run(2.5)  # > one refresh interval
        assert a.name_count() == 1

    def test_restarted_inr_resolves_queries(self):
        domain = fast_domain(75)
        a = domain.add_inr()
        b = domain.add_inr()
        service = domain.add_service("[service=x[id=1]]", resolver=a,
                                     refresh_interval=1.0, lifetime=3.0)
        domain.run(2.0)
        a.crash()
        domain.run(8.0)
        a.restart()
        domain.run(5.0)
        inbox = []
        service.on_message(lambda m, s: inbox.append(m.data))
        client = domain.add_client(resolver=a)
        client.send_anycast(parse("[service=x]"), b"hello-again")
        domain.run(1.0)
        assert inbox == [b"hello-again"]

    def test_restarted_monitor_window_starts_at_restart_time(self):
        """Regression: the rebuilt LoadMonitor must open its window at
        the restart instant. A default-constructed monitor (now=0.0)
        would stretch the first post-restart window back to the epoch,
        diluting — or after long uptime, faking — the load signal."""
        domain = fast_domain(77)
        a = domain.add_inr()
        domain.run(100.0)
        a.crash()
        domain.run(5.0)
        a.restart()
        a.monitor.count_lookup(10)
        sample = a.monitor.sample(now=a.now + 1.0)
        # 10 lookups in the 1 s since restart: ~10/s, not 10/107 s.
        assert sample.lookups_per_second == pytest.approx(10.0, rel=0.01)

    def test_double_restart(self):
        domain = fast_domain(76)
        a = domain.add_inr()
        for expected in (1, 2):
            a.crash()
            a.restart()
            assert a.restarts == expected
        domain.run(3.0)
        assert a.address in domain.dsr.active_inrs
