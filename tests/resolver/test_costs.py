"""Tests for the calibrated resolver cost model."""

import pytest

from repro.resolver import CostModel, DEFAULT_COSTS


class TestCalibration:
    """The constants must stay consistent with the paper's measured
    behaviour; these tests pin the calibration targets of Section 5."""

    def test_fig8_saturation_point(self):
        """CPU hits 100% between 10k and 15k names per 15 s refresh."""
        names_at_saturation = 15.0 / DEFAULT_COSTS.update_per_name
        assert 10_000 < names_at_saturation < 15_000

    def test_fig12_lookup_rate(self):
        """Their tree sustains 700-900 lookups/s -> ~1.1-1.4 ms each."""
        assert 1.0e-3 <= DEFAULT_COSTS.lookup <= 1.5e-3

    def test_fig15_remote_case(self):
        """Remote same-vspace forwarding ~9.8 ms per packet."""
        per_packet = DEFAULT_COSTS.lookup + DEFAULT_COSTS.forward
        assert per_packet == pytest.approx(9.8e-3, rel=0.05)

    def test_fig15_local_case_at_250_names(self):
        per_packet = DEFAULT_COSTS.lookup + DEFAULT_COSTS.local_delivery(250)
        assert per_packet == pytest.approx(3.1e-3, rel=0.1)

    def test_fig15_local_case_at_5000_names(self):
        per_packet = DEFAULT_COSTS.lookup + DEFAULT_COSTS.local_delivery(5000)
        assert per_packet == pytest.approx(19e-3, rel=0.1)

    def test_fig15_cross_vspace_burst(self):
        """100 packets at ~3.8 ms each -> ~381 ms per burst."""
        assert 100 * DEFAULT_COSTS.vspace_forward == pytest.approx(0.381, rel=0.05)

    def test_fig14_slope_under_10ms(self):
        """Per-hop: lookup + graft + update processing must be < 10 ms
        even before the link delay."""
        per_hop_cpu = (
            DEFAULT_COSTS.lookup
            + DEFAULT_COSTS.graft
            + DEFAULT_COSTS.update_batch(1)
        )
        assert per_hop_cpu < 10e-3


class TestModelMechanics:
    def test_update_batch_scales_linearly(self):
        model = CostModel()
        assert model.update_batch(10) == pytest.approx(
            model.receive + 10 * model.update_per_name
        )

    def test_artifact_switch(self):
        with_artifact = CostModel(model_delivery_artifact=True)
        without = CostModel(model_delivery_artifact=False)
        assert with_artifact.local_delivery(5000) > with_artifact.local_delivery(100)
        assert without.local_delivery(5000) == without.local_delivery(100)
        assert without.local_delivery(5000) == without.local_delivery_base
