"""Tests for resolver admission control (bounded pending-work queue).

An overloaded INR sheds arriving work cheapest-loss first: periodic
soft-state refreshes, then triggered updates, and finally client
lookups — which get an explicit Pushback with a retry-after hint
instead of silence.
"""

from dataclasses import replace

from repro.client import RetryPolicy
from repro.experiments import InsDomain
from repro.nametree import AnnouncerID, Endpoint
from repro.resolver import InrConfig
from repro.resolver.protocol import (
    Advertisement,
    DiscoveryRequest,
    PingRequest,
    Pushback,
    ResolutionRequest,
)

from ..conftest import parse

NAME = parse("[service=printer]")

ADMIT = InrConfig(admission_control=True)


def make_domain(seed=800, config=ADMIT):
    domain = InsDomain(seed=seed, config=config)
    inr = domain.add_inr()
    return domain, inr


def advertisement(triggered):
    return Advertisement(
        name=NAME,
        announcer=AnnouncerID.generate("svc-host"),
        endpoints=(Endpoint(host="svc-host", port=9000, transport="udp"),),
        anycast_metric=0.0,
        lifetime=45.0,
        triggered=triggered,
    )


def lookup():
    return ResolutionRequest(name=NAME, reply_to="client-host", reply_port=9001)


def load_cpu(inr, seconds):
    """Queue ``seconds`` of synthetic work on the resolver's CPU."""
    inr.node.cpu.execute(seconds, lambda: None)


class TestSheddingPriorities:
    def test_idle_resolver_admits_everything(self):
        _domain, inr = make_domain()
        assert inr.admit(advertisement(triggered=False), "svc-host")
        assert inr.admit(advertisement(triggered=True), "svc-host")
        assert inr.admit(lookup(), "client-host")
        assert inr.stats.shed_periodic == 0
        assert inr.stats.pushbacks_sent == 0

    def test_light_backlog_sheds_only_periodic_refreshes(self):
        _domain, inr = make_domain()
        load_cpu(inr, 0.5)  # past shed_backlog, below trigger_backlog
        assert not inr.admit(advertisement(triggered=False), "svc-host")
        assert inr.admit(advertisement(triggered=True), "svc-host")
        assert inr.admit(lookup(), "client-host")
        assert inr.stats.shed_periodic == 1
        assert inr.stats.shed_triggered == 0
        assert inr.stats.pushbacks_sent == 0

    def test_heavy_backlog_sheds_triggered_updates_too(self):
        _domain, inr = make_domain()
        load_cpu(inr, 1.0)  # past trigger_backlog, below pushback_backlog
        assert not inr.admit(advertisement(triggered=False), "svc-host")
        assert not inr.admit(advertisement(triggered=True), "svc-host")
        assert inr.admit(lookup(), "client-host")
        assert inr.stats.shed_periodic == 1
        assert inr.stats.shed_triggered == 1
        assert inr.stats.pushbacks_sent == 0

    def test_overload_pushes_back_client_lookups(self):
        domain, inr = make_domain()
        domain.network.add_node("client-host")
        load_cpu(inr, 2.0)  # past pushback_backlog
        request = lookup()
        assert not inr.admit(request, "client-host")
        assert inr.stats.pushbacks_sent == 1
        discovery = DiscoveryRequest(
            filter=NAME, reply_to="client-host", reply_port=9001
        )
        assert not inr.admit(discovery, "client-host")
        assert inr.stats.pushbacks_sent == 2

    def test_pings_admitted_even_under_overload(self):
        """INR-pings are the load-balancing measurement channel: a
        loaded resolver must look slow, not dead."""
        _domain, inr = make_domain()
        load_cpu(inr, 5.0)
        ping = PingRequest(probe=NAME, reply_to="client-host", reply_port=9001)
        assert inr.admit(ping, "client-host")

    def test_disabled_admission_never_sheds(self):
        _domain, inr = make_domain(config=InrConfig(admission_control=False))
        load_cpu(inr, 10.0)
        assert inr.admit(advertisement(triggered=False), "svc-host")
        assert inr.admit(lookup(), "client-host")
        assert inr.stats.shed_periodic == 0
        assert inr.stats.pushbacks_sent == 0

    def test_retry_after_hint_is_capped(self):
        domain, inr = make_domain()
        domain.network.add_node("client-host")
        captured = []
        original_send = inr.send

        def spy(destination, port, payload, size_bytes=None):
            if isinstance(payload, Pushback):
                captured.append(payload)
            original_send(destination, port, payload, size_bytes)

        inr.send = spy
        load_cpu(inr, 50.0)
        inr.admit(lookup(), "client-host")
        assert len(captured) == 1
        assert captured[0].retry_after == ADMIT.admission_retry_after_max


class TestEndToEnd:
    def test_shed_datagram_charges_no_cpu(self):
        """Shedding happens at the door: a refused datagram must not
        consume resolver CPU (that is the whole point)."""
        domain, inr = make_domain()
        load_cpu(inr, 1.0)
        backlog_before = inr.node.cpu.backlog
        domain.network.send(
            "svc-host" if domain.network.has_node("svc-host") else inr.address,
            inr.address,
            inr.port,
            advertisement(triggered=False),
            64,
        )
        domain.run(0.001)
        assert inr.node.cpu.backlog <= backlog_before
        assert inr.stats.shed_periodic == 1

    def test_pushed_back_client_retries_and_succeeds(self):
        """The full loop: overloaded resolver pushes back, the client
        defers its retry past the hint, the retry is admitted once the
        backlog drains and the lookup completes."""
        domain, inr = make_domain(
            config=replace(ADMIT, admission_retry_after_max=1.0)
        )
        domain.add_service(NAME, resolver=inr)
        client = domain.add_client(
            resolver=inr,
            retry_policy=RetryPolicy(request_timeout=0.5, deadline=10.0,
                                     failover_threshold=1000),
        )
        domain.run(1.0)
        load_cpu(inr, 2.0)
        reply = client.resolve_early(NAME)
        domain.run(5.0)
        assert client.stats.pushbacks_received >= 1
        assert inr.stats.pushbacks_sent >= 1
        assert reply.done
        assert reply.value
        # The pushback deferred rather than failed the request.
        assert client.stats.requests_failed == 0
