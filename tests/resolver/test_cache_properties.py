"""Property-based tests for the INR packet cache."""

import random

from hypothesis import given, settings, strategies as st

from repro.resolver import PacketCache

from ..conftest import parse

names = st.integers(min_value=0, max_value=30).map(
    lambda i: parse(f"[service=cam[id=n{i}]][room=r{i % 4}]")
)


@st.composite
def cache_scripts(draw):
    """A sequence of (op, name_index, time_step) cache operations."""
    length = draw(st.integers(min_value=1, max_value=40))
    return [
        (
            draw(st.sampled_from(["store", "lookup"])),
            draw(st.integers(min_value=0, max_value=30)),
            draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False)),
        )
        for _ in range(length)
    ]


@given(script=cache_scripts(), capacity=st.integers(min_value=1, max_value=8))
@settings(max_examples=150, deadline=None)
def test_cache_invariants_under_any_operation_sequence(script, capacity):
    cache = PacketCache(max_entries=capacity)
    now = 0.0
    model = {}  # wire -> (data, expires_at); over-approximates the cache
    for op, index, step in script:
        now += step
        name = parse(f"[service=cam[id=n{index}]][room=r{index % 4}]")
        if op == "store":
            cache.store(name, f"d{index}".encode(), now=now, lifetime=10.0)
            model[name.to_wire()] = (f"d{index}".encode(), now + 10.0)
        else:
            entry = cache.lookup(name, now=now)
            if entry is not None:
                # whatever the cache returns must be correct and fresh
                expected, expires = model.get(name.to_wire(), (None, 0))
                assert entry.data == expected
                assert expires > now
        # capacity invariant holds at every step
        assert len(cache) <= capacity


@given(count=st.integers(min_value=1, max_value=20))
@settings(max_examples=50, deadline=None)
def test_everything_stored_is_found_before_expiry(count):
    cache = PacketCache(max_entries=count)  # exactly enough room
    for i in range(count):
        cache.store(parse(f"[k=v{i}]"), f"d{i}".encode(), now=0.0, lifetime=60.0)
    for i in range(count):
        entry = cache.lookup(parse(f"[k=v{i}]"), now=59.0)
        assert entry is not None
        assert entry.data == f"d{i}".encode()


@given(count=st.integers(min_value=2, max_value=20))
@settings(max_examples=50, deadline=None)
def test_nothing_survives_expiry(count):
    cache = PacketCache(max_entries=count)
    for i in range(count):
        cache.store(parse(f"[k=v{i}]"), b"x", now=float(i), lifetime=5.0)
    assert cache.lookup(parse("[k=*]"), now=float(count) + 5.0) is None
    assert len(cache) == 0
