"""Tests for the reliable channel and reliable-delta update mode."""

import pytest

from repro.experiments import InsDomain
from repro.naming import NameSpecifier
from repro.resolver import InrConfig
from repro.resolver.reliable import ReliableAck, ReliableChannel, ReliableFrame

from ..conftest import parse


class FakeClock:
    """Drives ReliableChannel timers without a simulator."""

    def __init__(self):
        self.pending = []

    def set_timer(self, delay, fn, *args):
        self.pending.append((delay, fn, args))

    def fire_all(self):
        pending, self.pending = self.pending, []
        for _delay, fn, args in pending:
            fn(*args)


def make_pair():
    """Two channels wired back-to-back through in-memory queues."""
    clock = FakeClock()
    wires = {"a->b": [], "b->a": []}
    delivered = {"a": [], "b": []}

    channel_a = ReliableChannel(
        transmit=lambda nb, p: wires["a->b"].append(p),
        deliver=lambda nb, p: delivered["a"].append(p),
        set_timer=clock.set_timer,
    )
    channel_b = ReliableChannel(
        transmit=lambda nb, p: wires["b->a"].append(p),
        deliver=lambda nb, p: delivered["b"].append(p),
        set_timer=clock.set_timer,
    )

    def shuttle(drop_a_to_b=0):
        """Move frames across the wires; optionally drop the first n."""
        a_to_b, wires["a->b"] = wires["a->b"][drop_a_to_b:], []
        for payload in a_to_b:
            if isinstance(payload, ReliableFrame):
                ack = channel_b.on_frame("a", payload)
                wires["b->a"].append(ack)
            elif isinstance(payload, ReliableAck):
                channel_b.on_ack("a", payload)
        b_to_a, wires["b->a"] = wires["b->a"], []
        for payload in b_to_a:
            if isinstance(payload, ReliableFrame):
                ack = channel_a.on_frame("b", payload)
                wires["a->b"].append(ack)
            elif isinstance(payload, ReliableAck):
                channel_a.on_ack("b", payload)

    return clock, channel_a, channel_b, delivered, wires, shuttle


class TestReliableChannel:
    def test_in_order_delivery(self):
        clock, a, b, delivered, wires, shuttle = make_pair()
        a.send("b", "one")
        a.send("b", "two")
        shuttle()
        assert delivered["b"] == ["one", "two"]

    def test_lost_frame_retransmitted(self):
        clock, a, b, delivered, wires, shuttle = make_pair()
        a.send("b", "precious")
        wires["a->b"].clear()  # the datagram is lost
        shuttle()
        assert delivered["b"] == []
        clock.fire_all()  # retransmission timer
        shuttle()
        assert delivered["b"] == ["precious"]
        assert a.retransmissions == 1

    def test_reordering_buffered(self):
        clock, a, b, delivered, wires, shuttle = make_pair()
        a.send("b", "first")
        a.send("b", "second")
        # Deliver out of order by swapping the wire.
        wires["a->b"].reverse()
        shuttle()
        assert delivered["b"] == ["first", "second"]

    def test_duplicates_suppressed(self):
        clock, a, b, delivered, wires, shuttle = make_pair()
        a.send("b", "only-once")
        shuttle()
        clock.fire_all()  # spurious retransmit (ack raced the timer)
        shuttle()
        assert delivered["b"] == ["only-once"]
        assert b.duplicates_dropped >= 0

    def test_ack_stops_retransmission(self):
        clock, a, b, delivered, wires, shuttle = make_pair()
        a.send("b", "x")
        shuttle()  # delivered and acked
        assert a.unacked_count("b") == 0
        clock.fire_all()
        shuttle()
        assert delivered["b"] == ["x"]

    def test_reset_clears_state(self):
        clock, a, b, delivered, wires, shuttle = make_pair()
        a.send("b", "x")
        a.reset("b")
        assert a.unacked_count("b") == 0

    def test_retransmission_gives_up_eventually(self):
        clock, a, b, delivered, wires, shuttle = make_pair()
        a.send("b", "void")
        for _ in range(ReliableChannel.MAX_RETRANSMISSIONS + 2):
            wires["a->b"].clear()
            clock.fire_all()
        assert a.unacked_count("b") == 0  # abandoned, not leaked


class TestConnectionEpochs:
    """The per-connection epoch handshake: restarts must never leave
    frames stranded as 'duplicates' behind a stale receive cursor."""

    def test_restarted_sender_frames_not_dropped_as_duplicates(self):
        clock, a, b, delivered, wires, shuttle = make_pair()
        a.send("b", "one")
        a.send("b", "two")
        shuttle()
        assert delivered["b"] == ["one", "two"]
        # The sender's INR crashes and restarts: a fresh channel whose
        # sequence numbers begin at 1 again — below b's receive cursor.
        restarted = ReliableChannel(
            transmit=lambda nb, p: wires["a->b"].append(p),
            deliver=lambda nb, p: None,
            set_timer=clock.set_timer,
        )
        restarted.send("b", "post-restart")
        for payload in wires["a->b"]:
            if isinstance(payload, ReliableFrame):
                b.on_frame("a", payload)
        wires["a->b"].clear()
        # Without epochs this frame (sequence 1 < expected 3) would be
        # swallowed; the newer epoch resets b's receive state instead.
        assert delivered["b"] == ["one", "two", "post-restart"]
        assert b.epoch_resets == 1
        assert b.duplicates_dropped == 0

    def test_give_up_resets_the_whole_connection(self):
        clock, a, b, delivered, wires, shuttle = make_pair()
        a.send("b", "void")
        a.send("b", "also-void")
        for _ in range(ReliableChannel.MAX_RETRANSMISSIONS + 2):
            wires["a->b"].clear()
            clock.fire_all()
        assert a.connection_resets == 1
        assert a.unacked_count("b") == 0
        # The link heals: the next send opens a fresh epoch from
        # sequence 1 and flows end-to-end.
        a.send("b", "after-heal")
        shuttle()
        assert delivered["b"] == ["after-heal"]

    def test_stale_epoch_frames_dropped_without_ack(self):
        clock, a, b, delivered, wires, shuttle = make_pair()
        a.send("b", "old")
        straggler = wires["a->b"].pop()  # held in flight
        restarted = ReliableChannel(
            transmit=lambda nb, p: wires["a->b"].append(p),
            deliver=lambda nb, p: None,
            set_timer=clock.set_timer,
        )
        restarted.send("b", "new")
        b.on_frame("a", wires["a->b"].pop())
        assert delivered["b"] == ["new"]
        # The pre-restart frame finally arrives: older epoch, no ack
        # (acking it could only confuse a sender that moved on).
        assert b.on_frame("a", straggler) is None
        assert delivered["b"] == ["new"]
        assert b.stale_epoch_dropped == 1

    def test_stale_epoch_acks_ignored(self):
        clock, a, b, delivered, wires, shuttle = make_pair()
        a.send("b", "x")
        ack = b.on_frame("a", wires["a->b"].pop())
        a.reset("b")
        a.send("b", "y")
        a.on_ack("b", ack)  # acked sequence 1 — of the OLD epoch
        assert a.unacked_count("b") == 1

    def test_reorder_buffer_is_bounded(self):
        clock, a, b, delivered, wires, shuttle = make_pair()
        window = ReliableChannel.MAX_REORDER_BUFFER
        total = window + 6
        for i in range(total):
            a.send("b", f"f{i + 1}")
        frames = [p for p in wires["a->b"] if isinstance(p, ReliableFrame)]
        wires["a->b"].clear()
        for frame in frames[1:]:  # the first frame is lost
            b.on_frame("a", frame)
        assert b.reorder_buffered("a") == window
        assert b.reorder_dropped == total - 1 - window
        assert delivered["b"] == []
        # Retransmission recovers both the lost frame and the ones the
        # bounded buffer refused; two timer rounds suffice.
        for _ in range(2):
            clock.fire_all()
            shuttle()
        assert delivered["b"] == [f"f{i + 1}" for i in range(total)]
        assert b.reorder_buffered("a") == 0


class TestReliableDeltaMode:
    @pytest.fixture
    def reliable_domain(self):
        config = InrConfig(update_mode="reliable-delta",
                           refresh_interval=5.0, record_lifetime=15.0)
        domain = InsDomain(seed=700, config=config)
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        return domain, a, b

    def test_invalid_mode_rejected(self):
        domain = InsDomain(seed=701, config=InrConfig(update_mode="carrier-pigeon"))
        with pytest.raises(ValueError):
            domain.add_inr()

    def test_names_propagate(self, reliable_domain):
        domain, a, b = reliable_domain
        domain.add_service("[service=r[id=1]]", resolver=a,
                           refresh_interval=5.0, lifetime=15.0)
        domain.run(2.0)
        assert b.name_count() == 1

    def test_periodic_traffic_is_constant_in_names(self, reliable_domain):
        domain, a, b = reliable_domain
        for i in range(25):
            domain.add_service(f"[service=r[id=n{i}]]", resolver=a,
                               refresh_interval=5.0, lifetime=15.0)
        domain.run(10.0)
        link = domain.network.link("inr-a", "inr-b")
        before = link.stats.bytes
        domain.run(30.0)
        bytes_per_second = (link.stats.bytes - before) / 30.0
        # Keepalives only: far below one 84-byte name per refresh.
        assert bytes_per_second < 50

    def test_dead_service_withdrawn_without_downstream_cascade(self):
        config = InrConfig(update_mode="reliable-delta",
                           refresh_interval=5.0, record_lifetime=15.0)
        domain = InsDomain(seed=702, config=config)
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        c = domain.add_inr(address="inr-c")
        service = domain.add_service("[service=r[id=1]]", resolver=a,
                                     refresh_interval=5.0, lifetime=15.0)
        domain.run(2.0)
        assert c.name_count() == 1
        service.stop()
        # Origin expiry (one lifetime) plus instantaneous withdrawals:
        # well under the 2-lifetime soft-state cascade for hop 2.
        domain.run(20.0)
        assert a.name_count() == 0
        assert b.name_count() == 0
        assert c.name_count() == 0

    def test_metric_changes_flow_as_deltas(self, reliable_domain):
        domain, a, b = reliable_domain
        service = domain.add_service("[service=r[id=1]]", resolver=a,
                                     metric=5.0,
                                     refresh_interval=5.0, lifetime=15.0)
        domain.run(2.0)
        service.set_metric(1.0)
        domain.run(1.0)
        record = next(iter(b.trees["default"].lookup(parse("[service=r]"))))
        assert record.anycast_metric == 1.0

    def test_updates_survive_lossy_links(self):
        """The channel's whole point: one lost datagram must not lose a
        delta forever (soft state would repair it at the next flood;
        reliable mode has no next flood)."""
        config = InrConfig(update_mode="reliable-delta",
                           refresh_interval=5.0, record_lifetime=15.0,
                           reliable_retransmit_timeout=0.5)
        domain = InsDomain(seed=703, default_loss_rate=0.3, config=config)
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        for i in range(10):
            domain.add_service(f"[service=r[id=n{i}]]", resolver=a,
                               refresh_interval=5.0, lifetime=15.0)
        domain.run(30.0)
        assert b.name_count() == 10

    def test_neighbor_crash_withdraws_downstream(self):
        config = InrConfig(update_mode="reliable-delta",
                           refresh_interval=5.0, record_lifetime=1e9)
        domain = InsDomain(seed=704, config=config)
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        c = domain.add_inr(address="inr-c")
        domain.add_service("[service=r[id=1]]", resolver=a,
                           refresh_interval=5.0, lifetime=1e9)
        domain.run(2.0)
        # build a chain a - b - c? the default join gives a star on a;
        # force c's view through b by checking a's crash at c instead.
        assert c.name_count() == 1
        a.crash()
        domain.run(120.0)  # neighbor timeout, withdrawals
        assert b.name_count() == 0
        assert c.name_count() == 0
