"""Tests for the INR packet cache (the Section 3.2 extension)."""

from repro.resolver import PacketCache

from ..conftest import parse


CAMERA = "[service=camera[entity=transmitter][id=a]][room=510]"


class TestStoreAndLookup:
    def test_store_then_exact_lookup(self):
        cache = PacketCache()
        cache.store(parse(CAMERA), b"frame-1", now=0.0, lifetime=30.0)
        entry = cache.lookup(parse(CAMERA), now=1.0)
        assert entry.data == b"frame-1"
        assert cache.hits == 1

    def test_intentional_match_semantics(self):
        """A less specific request matches a cached, more specific name
        — the whole point of naming cached objects intentionally."""
        cache = PacketCache()
        cache.store(parse(CAMERA), b"frame-1", now=0.0, lifetime=30.0)
        query = parse("[service=camera[entity=transmitter]][room=510]")
        assert cache.lookup(query, now=1.0).data == b"frame-1"

    def test_miss_counts(self):
        cache = PacketCache()
        assert cache.lookup(parse(CAMERA), now=0.0) is None
        assert cache.misses == 1

    def test_restore_same_name_replaces(self):
        cache = PacketCache()
        cache.store(parse(CAMERA), b"old", now=0.0, lifetime=30.0)
        cache.store(parse(CAMERA), b"new", now=5.0, lifetime=30.0)
        assert len(cache) == 1
        assert cache.lookup(parse(CAMERA), now=6.0).data == b"new"

    def test_freshest_entry_wins_among_matches(self):
        cache = PacketCache()
        cache.store(parse("[service=camera[id=a]]"), b"older", now=0.0, lifetime=60.0)
        cache.store(parse("[service=camera[id=b]]"), b"newer", now=5.0, lifetime=60.0)
        assert cache.lookup(parse("[service=camera]"), now=6.0).data == b"newer"


class TestLifetimes:
    def test_entries_expire(self):
        cache = PacketCache()
        cache.store(parse(CAMERA), b"x", now=0.0, lifetime=10.0)
        assert cache.lookup(parse(CAMERA), now=9.9) is not None
        assert cache.lookup(parse(CAMERA), now=10.0) is None
        assert len(cache) == 0

    def test_zero_lifetime_is_not_stored(self):
        cache = PacketCache()
        cache.store(parse(CAMERA), b"x", now=0.0, lifetime=0.0)
        assert len(cache) == 0

    def test_wildcard_names_cannot_index_entries(self):
        cache = PacketCache()
        cache.store(parse("[service=camera[id=*]]"), b"x", now=0.0, lifetime=30.0)
        assert len(cache) == 0

    def test_empty_name_cannot_index_entries(self):
        from repro.naming import NameSpecifier

        cache = PacketCache()
        cache.store(NameSpecifier(), b"x", now=0.0, lifetime=30.0)
        assert len(cache) == 0


class TestEviction:
    def test_capacity_evicts_oldest(self):
        cache = PacketCache(max_entries=2)
        cache.store(parse("[n=1]"), b"1", now=0.0, lifetime=100.0)
        cache.store(parse("[n=2]"), b"2", now=1.0, lifetime=100.0)
        cache.store(parse("[n=3]"), b"3", now=2.0, lifetime=100.0)
        assert len(cache) == 2
        assert cache.lookup(parse("[n=1]"), now=3.0) is None
        assert cache.lookup(parse("[n=3]"), now=3.0).data == b"3"

    def test_eviction_is_lru_not_fifo(self):
        """A lookup hit touches the entry: the oldest-STORED entry
        survives when it is the most recently USED."""
        cache = PacketCache(max_entries=2)
        cache.store(parse("[n=1]"), b"1", now=0.0, lifetime=100.0)
        cache.store(parse("[n=2]"), b"2", now=1.0, lifetime=100.0)
        assert cache.lookup(parse("[n=1]"), now=2.0).data == b"1"
        cache.store(parse("[n=3]"), b"3", now=3.0, lifetime=100.0)
        # n=2 (stored later, used never) was evicted; n=1 survived.
        assert cache.lookup(parse("[n=1]"), now=4.0).data == b"1"
        assert cache.lookup(parse("[n=2]"), now=4.0) is None

    def test_replacing_store_touches_the_entry(self):
        cache = PacketCache(max_entries=2)
        cache.store(parse("[n=1]"), b"1", now=0.0, lifetime=100.0)
        cache.store(parse("[n=2]"), b"2", now=1.0, lifetime=100.0)
        cache.store(parse("[n=1]"), b"1b", now=2.0, lifetime=100.0)
        cache.store(parse("[n=3]"), b"3", now=3.0, lifetime=100.0)
        assert cache.lookup(parse("[n=1]"), now=4.0).data == b"1b"
        assert cache.lookup(parse("[n=2]"), now=4.0) is None
