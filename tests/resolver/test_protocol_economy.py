"""Protocol-economy tests: the discovery protocol must not send more
than it needs to. Uses the protocol tracer to assert on actual traffic.
"""

import pytest

from repro.experiments import InsDomain
from repro.resolver import InrConfig
from repro.tools import ProtocolTrace

from ..conftest import parse


@pytest.fixture
def traced():
    domain = InsDomain(
        seed=950, config=InrConfig(refresh_interval=5.0, record_lifetime=15.0)
    )
    trace = ProtocolTrace(keep_payloads=True).attach(domain.network)
    a = domain.add_inr(address="inr-a")
    b = domain.add_inr(address="inr-b")
    return domain, trace, a, b


def batches_between(trace, source, destination, since=0.0):
    return [
        event for event in trace.between(source, destination)
        if event.kind == "UpdateBatch" and event.time >= since
    ]


class TestUpdateEconomy:
    def test_pure_refreshes_do_not_trigger(self, traced):
        """A service refreshing unchanged state must produce periodic
        traffic only — no triggered updates (Section 2.2: triggered
        updates carry NEW information)."""
        domain, trace, a, b = traced
        domain.add_service("[service=e[id=1]]", resolver=a,
                           refresh_interval=5.0, lifetime=15.0)
        domain.run(2.0)
        start = domain.now
        domain.run(20.0)
        batches = batches_between(trace, "inr-a", "inr-b", since=start)
        triggered = [e for e in batches if e.payload.triggered]
        assert triggered == []
        # but periodic re-floods do flow (the soft-state refresh)
        periodic = [e for e in batches if not e.payload.triggered]
        assert len(periodic) >= 3

    def test_metric_change_triggers_exactly_once(self, traced):
        domain, trace, a, b = traced
        service = domain.add_service("[service=e[id=1]]", resolver=a,
                                     refresh_interval=5.0, lifetime=15.0)
        domain.run(2.0)
        start = domain.now
        service.set_metric(7.0)
        domain.run(1.0)
        triggered = [
            e for e in batches_between(trace, "inr-a", "inr-b", since=start)
            if e.payload.triggered
        ]
        assert len(triggered) == 1
        assert len(triggered[0].payload.updates) == 1

    def test_split_horizon_keeps_updates_small(self, traced):
        """inr-a's periodic updates to inr-b must not echo names whose
        next hop IS inr-b."""
        domain, trace, a, b = traced
        domain.add_service("[service=e[id=b-local]]", resolver=b,
                           refresh_interval=5.0, lifetime=15.0)
        domain.run(2.0)
        start = domain.now
        domain.run(12.0)
        for event in batches_between(trace, "inr-a", "inr-b", since=start):
            assert event.payload.updates == []

    def test_periodic_size_scales_with_names(self, traced):
        domain, trace, a, b = traced
        for i in range(5):
            domain.add_service(f"[service=e[id=n{i}]]", resolver=a,
                               refresh_interval=5.0, lifetime=15.0)
        domain.run(2.0)
        start = domain.now
        domain.run(6.0)
        periodic = [
            e for e in batches_between(trace, "inr-a", "inr-b", since=start)
            if not e.payload.triggered
        ]
        assert periodic, "expected at least one periodic round"
        assert all(len(e.payload.updates) == 5 for e in periodic)


class TestQueryEconomy:
    def test_resolution_is_one_round_trip(self, traced):
        domain, trace, a, b = traced
        domain.add_service("[service=e[id=1]]", resolver=a,
                           refresh_interval=5.0, lifetime=15.0)
        client = domain.add_client(address="c-host", resolver=a)
        domain.run(1.0)
        start = domain.now
        client.resolve_early(parse("[service=e]"))
        domain.run(1.0)
        requests = [e for e in trace.since(start)
                    if e.kind == "ResolutionRequest"]
        responses = [e for e in trace.since(start)
                     if e.kind == "ResolutionResponse"]
        assert len(requests) == 1
        assert len(responses) == 1
        assert responses[0].destination == "c-host"
