"""Tests for control-plane message types and their size accounting."""

from repro.nametree import AnnouncerID, Endpoint
from repro.resolver import (
    Advertisement,
    DataPacket,
    DiscoveryRequest,
    NameUpdate,
    PingRequest,
    ResolutionRequest,
    ResolutionResponse,
    UpdateBatch,
)
from repro.resolver.protocol import BASE_OVERHEAD, PER_NAME_OVERHEAD

from ..conftest import parse


def make_update(wire="[a=b]") -> NameUpdate:
    return NameUpdate(
        name=parse(wire),
        announcer=AnnouncerID.generate("h"),
        endpoints=(Endpoint("h", 1),),
        anycast_metric=0.0,
        route_metric=0.0,
        lifetime=45.0,
        vspace="default",
    )


class TestWireSizes:
    def test_update_size_includes_name_and_overhead(self):
        update = make_update("[a=b]")
        assert update.wire_size() == len("[a=b]") + PER_NAME_OVERHEAD + 12

    def test_batch_size_sums_updates(self):
        updates = [make_update(), make_update("[c=d[e=f]]")]
        batch = UpdateBatch(sender="x", updates=updates)
        assert batch.wire_size() == BASE_OVERHEAD + sum(
            u.wire_size() for u in updates
        )

    def test_empty_batch_costs_base_overhead(self):
        assert UpdateBatch(sender="x", updates=[]).wire_size() == BASE_OVERHEAD

    def test_advertisement_size(self):
        ad = Advertisement(
            name=parse("[a=b]"),
            announcer=AnnouncerID.generate("h"),
            endpoints=(Endpoint("h", 1),),
            anycast_metric=0.0,
            lifetime=45.0,
        )
        assert ad.wire_size() == BASE_OVERHEAD + len("[a=b]") + 12

    def test_data_packet_size_is_raw_plus_overhead(self):
        packet = DataPacket(raw=b"x" * 100)
        assert packet.wire_size() == BASE_OVERHEAD + 100

    def test_resolution_response_scales_with_bindings(self):
        response = ResolutionResponse(
            request_id=1, bindings=[(Endpoint("h", 1), 0.0)] * 3
        )
        assert response.wire_size() == BASE_OVERHEAD + 60


class TestRequestIds:
    def test_request_ids_are_unique(self):
        ids = {
            ResolutionRequest(name=parse("[a=b]"), reply_to="x", reply_port=1).request_id
            for _ in range(20)
        }
        assert len(ids) == 20

    def test_different_types_share_the_sequence(self):
        a = DiscoveryRequest(filter=parse("[a=b]"), reply_to="x", reply_port=1)
        b = PingRequest(probe=parse("[a=b]"), reply_to="x", reply_port=1)
        assert a.request_id != b.token


class TestDataPacketDecoding:
    def test_lazy_decode_caches(self):
        from repro.message import InsMessage

        message = InsMessage(destination=parse("[a=b]"), data=b"hello")
        packet = DataPacket(raw=message.encode())
        first = packet.message
        assert first.data == b"hello"
        assert packet.message is first  # decoded once
