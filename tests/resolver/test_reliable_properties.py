"""Property-based tests for the reliable channel: under any schedule of
loss, duplication and reordering, delivery is exactly-once and in-order.
"""

from hypothesis import given, settings, strategies as st

from repro.resolver.reliable import ReliableAck, ReliableChannel, ReliableFrame


class Harness:
    """One sender-receiver pair with an adversarial scheduler.

    The adversary decides, per wire action, whether to deliver, drop or
    duplicate the head-of-wire datagram, and may deliver out of order by
    picking any queued index.
    """

    def __init__(self):
        self.to_receiver = []
        self.to_sender = []
        self.delivered = []
        self.timers = []
        self.sender = ReliableChannel(
            transmit=lambda nb, p: self.to_receiver.append(p),
            deliver=lambda nb, p: None,
            set_timer=lambda d, fn, *a: self.timers.append((fn, a)),
        )
        self.receiver = ReliableChannel(
            transmit=lambda nb, p: self.to_sender.append(p),
            deliver=lambda nb, p: self.delivered.append(p),
            set_timer=lambda d, fn, *a: None,
        )

    def adversary_step(self, decision: int) -> None:
        """Apply one adversarial action encoded by ``decision``."""
        action = decision % 4
        if action == 0 and self.to_receiver:
            index = decision % len(self.to_receiver)
            frame = self.to_receiver.pop(index)
            ack = self.receiver.on_frame("s", frame)
            if ack is not None:
                self.to_sender.append(ack)
        elif action == 1 and self.to_receiver:
            self.to_receiver.pop(decision % len(self.to_receiver))  # drop
        elif action == 2 and self.to_receiver:
            index = decision % len(self.to_receiver)
            self.to_receiver.append(self.to_receiver[index])  # duplicate
        elif action == 3 and self.to_sender:
            ack = self.to_sender.pop(decision % len(self.to_sender))
            self.sender.on_ack("r", ack)

    def fire_timers(self) -> None:
        timers, self.timers = self.timers, []
        for fn, args in timers:
            fn(*args)

    def drain(self, rounds: int = 200) -> None:
        """Retransmit and deliver until quiescent (honest network)."""
        for _ in range(rounds):
            progressed = False
            while self.to_receiver:
                frame = self.to_receiver.pop(0)
                ack = self.receiver.on_frame("s", frame)
                if ack is not None:
                    self.to_sender.append(ack)
                progressed = True
            while self.to_sender:
                self.sender.on_ack("r", self.to_sender.pop(0))
                progressed = True
            if self.timers:
                self.fire_timers()
                progressed = True
            if not progressed:
                return


@given(
    message_count=st.integers(min_value=1, max_value=15),
    decisions=st.lists(st.integers(min_value=0, max_value=10_000), max_size=60),
)
@settings(max_examples=200, deadline=None)
def test_exactly_once_in_order_under_adversarial_schedule(
    message_count, decisions
):
    harness = Harness()
    messages = [f"m{i}" for i in range(message_count)]
    for message in messages:
        harness.sender.send("r", message)
    for decision in decisions:
        harness.adversary_step(decision)
        if decision % 7 == 0:
            harness.fire_timers()
    harness.drain()
    assert harness.delivered == messages


@given(
    message_count=st.integers(min_value=1, max_value=10),
    drop_first=st.integers(min_value=0, max_value=9),
)
@settings(max_examples=80, deadline=None)
def test_prefix_loss_always_recovered(message_count, drop_first):
    """Dropping any prefix of the initial transmissions only delays
    delivery; retransmission restores the exact sequence."""
    harness = Harness()
    messages = [f"p{i}" for i in range(message_count)]
    for message in messages:
        harness.sender.send("r", message)
    del harness.to_receiver[: min(drop_first, len(harness.to_receiver))]
    harness.drain()
    assert harness.delivered == messages
