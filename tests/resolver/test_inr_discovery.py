"""Tests for the name discovery protocol between INRs (Section 2.2)."""

import pytest

from repro.experiments import InsDomain
from repro.nametree import AnnouncerID, Endpoint
from repro.resolver import InrConfig, NameUpdate, UpdateBatch
from repro.resolver.ports import INR_PORT

from ..conftest import parse


@pytest.fixture
def pair():
    """Two peered INRs."""
    domain = InsDomain(seed=3)
    a = domain.add_inr(address="inr-a")
    b = domain.add_inr(address="inr-b")
    return domain, a, b


def send_update(domain, target, sender, wire, announcer, metric=0.0,
                route_metric=0.0, lifetime=45.0, vspace="default"):
    update = NameUpdate(
        name=parse(wire),
        announcer=announcer,
        endpoints=(Endpoint("svc-host", 7),),
        anycast_metric=metric,
        route_metric=route_metric,
        lifetime=lifetime,
        vspace=vspace,
    )
    domain.network.send(
        sender, target.address, INR_PORT,
        UpdateBatch(sender=sender, updates=[update], triggered=True),
        update.wire_size(),
    )
    domain.run(0.5)


class TestAdvertisementHandling:
    def test_local_advertisement_grafts(self, pair):
        domain, a, b = pair
        domain.add_service("[service=x[id=1]]", resolver=a)
        domain.run(0.5)
        assert a.name_count() == 1
        record = next(iter(a.trees["default"].lookup(parse("[service=x]"))))
        assert record.route.is_local

    def test_triggered_update_propagates_immediately(self, pair):
        domain, a, b = pair
        domain.add_service("[service=x[id=1]]", resolver=a)
        domain.run(0.5)  # well inside one refresh interval
        assert b.name_count() == 1
        record = next(iter(b.trees["default"].lookup(parse("[service=x]"))))
        assert record.route.next_hop == a.address
        assert not record.route.is_local

    def test_pure_refresh_does_not_retrigger(self, pair):
        domain, a, b = pair
        service = domain.add_service("[service=x[id=1]]", resolver=a,
                                     refresh_interval=1.0)
        domain.run(0.5)
        sent_after_first = a.stats.triggered_updates_sent
        domain.run(5.0)  # several refreshes, no new information
        assert a.stats.triggered_updates_sent == sent_after_first

    def test_metric_change_triggers(self, pair):
        domain, a, b = pair
        service = domain.add_service("[service=x[id=1]]", resolver=a, metric=5.0)
        domain.run(0.5)
        before = a.stats.triggered_updates_sent
        service.set_metric(1.0)
        domain.run(0.5)
        assert a.stats.triggered_updates_sent > before
        record = next(iter(b.trees["default"].lookup(parse("[service=x]"))))
        assert record.anycast_metric == 1.0

    def test_service_rename_replaces_name_everywhere(self, pair):
        domain, a, b = pair
        service = domain.add_service("[service=x[id=1]][room=510]", resolver=a)
        domain.run(0.5)
        service.rename(parse("[service=x[id=1]][room=520]"))
        domain.run(0.5)
        for inr in (a, b):
            tree = inr.trees["default"]
            assert not tree.lookup(parse("[room=510]"))
            assert len(tree.lookup(parse("[room=520]"))) == 1


class TestBellmanFord:
    def test_better_metric_adopted(self, pair):
        domain, a, b = pair
        announcer = AnnouncerID.generate("origin")
        peer = b.address
        # a learns the name via b at a high route metric...
        send_update(domain, a, peer, "[service=far]", announcer, route_metric=5.0)
        record = a.trees["default"].record_for(announcer)
        first_metric = record.route.metric
        # ...then a cheaper path appears through a brand-new neighbor.
        domain.network.add_node("inr-c")
        from repro.resolver.protocol import PeerRequest

        domain.network.send("inr-c", a.address, INR_PORT,
                            PeerRequest("inr-c", measured_rtt=0.001), 28)
        domain.run(0.5)
        send_update(domain, a, "inr-c", "[service=far]", announcer, route_metric=0.5)
        record = a.trees["default"].record_for(announcer)
        assert record.route.next_hop == "inr-c"
        assert record.route.metric < first_metric

    def test_worse_metric_from_other_neighbor_ignored(self, pair):
        domain, a, b = pair
        announcer = AnnouncerID.generate("origin")
        send_update(domain, a, b.address, "[service=far]", announcer,
                    route_metric=0.5)
        domain.network.add_node("other")
        send_update(domain, a, "other", "[service=far]", announcer,
                    route_metric=50.0)
        record = a.trees["default"].record_for(announcer)
        assert record.route.next_hop == b.address

    def test_worse_news_from_current_next_hop_accepted(self, pair):
        domain, a, b = pair
        announcer = AnnouncerID.generate("origin")
        send_update(domain, a, b.address, "[service=far]", announcer,
                    route_metric=0.5)
        send_update(domain, a, b.address, "[service=far]", announcer,
                    route_metric=9.0)
        record = a.trees["default"].record_for(announcer)
        assert record.route.metric > 9.0  # worsened, still via b

    def test_reflected_update_never_displaces_local_service(self, pair):
        domain, a, b = pair
        service = domain.add_service("[service=x[id=1]]", resolver=a)
        domain.run(0.5)
        announcer = service.announcer
        send_update(domain, a, b.address, "[service=x[id=1]]", announcer,
                    route_metric=0.0)
        record = a.trees["default"].record_for(announcer)
        assert record.route.is_local

    def test_update_for_unrouted_vspace_is_dropped(self, pair):
        domain, a, b = pair
        announcer = AnnouncerID.generate("origin")
        send_update(domain, a, b.address, "[service=x][vspace=exotic]",
                    announcer, vspace="exotic")
        assert a.name_count() == 0


class TestSplitHorizon:
    def test_route_not_echoed_to_its_source(self, pair):
        """b announced the name to a; a's periodic updates back to b must
        omit it (split horizon) — otherwise b would learn a phantom
        2-hop route to its own service."""
        domain, a, b = pair
        domain.add_service("[service=x[id=1]]", resolver=b)
        domain.run(0.5)
        # run past a periodic update round
        domain.run(domain.config.refresh_interval * 1.5)
        record = b.trees["default"].lookup(parse("[service=x]"))
        assert len(record) == 1
        assert next(iter(record)).route.is_local


class TestSoftStateAcrossInrs:
    def test_dead_service_expires_at_origin_then_downstream(self):
        domain = InsDomain(
            seed=4, config=InrConfig(refresh_interval=2.0, record_lifetime=6.0)
        )
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        service = domain.add_service("[service=x[id=1]]", resolver=a,
                                     refresh_interval=2.0, lifetime=6.0)
        domain.run(1.0)
        assert b.name_count() == 1
        service.stop()
        domain.run(7.0)
        assert a.name_count() == 0  # origin expired within one lifetime
        domain.run(8.0)
        assert b.name_count() == 0  # downstream one lifetime later

    def test_periodic_updates_keep_remote_names_alive(self):
        domain = InsDomain(
            seed=5, config=InrConfig(refresh_interval=2.0, record_lifetime=6.0)
        )
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        domain.add_service("[service=x[id=1]]", resolver=a,
                           refresh_interval=2.0, lifetime=6.0)
        domain.run(30.0)  # many lifetimes
        assert b.name_count() == 1
