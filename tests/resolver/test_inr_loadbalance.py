"""Tests for spawn-on-overload and vspace delegation (Section 2.5)."""

import pytest

from repro.experiments import InsDomain
from repro.naming import NameSpecifier
from repro.resolver import InrConfig, ResolutionRequest
from repro.resolver.ports import INR_PORT

from ..conftest import parse


def loaded_config(**overrides) -> InrConfig:
    fields = dict(
        enable_load_balancing=True,
        spawn_lookup_rate=100.0,
        delegate_update_rate=1e9,
        terminate_lookup_rate=1.0,
        load_check_interval=5.0,
        minimum_lifetime=10.0,
        refresh_interval=1e6,
    )
    fields.update(overrides)
    return InrConfig(**fields)


def blast_lookups(domain, client, inr, rate, duration):
    """Open-loop lookup load through the client's *current* resolver, so
    re-selection actually moves the load to spawned helpers."""
    query = parse("[service=hot]")
    interval = 1.0 / rate

    def one():
        target = client.resolver or inr.address
        client.send(
            target,
            INR_PORT,
            ResolutionRequest(
                name=query, reply_to=client.address, reply_port=client.port
            ),
        )

    for i in range(int(duration / interval)):
        domain.sim.schedule(i * interval, one)


class TestSpawning:
    def test_overload_spawns_on_candidate(self):
        domain = InsDomain(seed=40, config=loaded_config())
        inr = domain.add_inr(address="inr-main")
        domain.add_candidate("spare-1")
        domain.add_service("[service=hot[id=1]]", resolver=inr)
        client = domain.add_client(resolver=inr, reselect_interval=5.0)
        domain.settle()
        blast_lookups(domain, client, inr, rate=900, duration=30)
        domain.run(20.0)  # snapshot while the load is still flowing
        assert "spare-1" in domain.dsr.active_inrs
        # The spawned INR serves the same vspaces as the overloaded one.
        spawned = next(i for i in domain.inrs if i.address == "spare-1")
        assert spawned.vspaces == inr.vspaces
        # Client re-selection moved the load onto the helper.
        assert spawned.monitor.total_lookups > 0

    def test_no_spawn_without_candidates(self):
        domain = InsDomain(seed=41, config=loaded_config())
        inr = domain.add_inr(address="inr-main")
        domain.add_service("[service=hot[id=1]]", resolver=inr)
        client = domain.add_client(resolver=inr)
        domain.settle()
        blast_lookups(domain, client, inr, rate=400, duration=20)
        domain.run(20.0)
        assert domain.dsr.active_inrs == ("inr-main",)

    def test_no_spawn_under_light_load(self):
        domain = InsDomain(seed=42, config=loaded_config())
        inr = domain.add_inr(address="inr-main")
        domain.add_candidate("spare-1")
        domain.add_service("[service=hot[id=1]]", resolver=inr)
        client = domain.add_client(resolver=inr)
        domain.settle()
        blast_lookups(domain, client, inr, rate=5, duration=20)
        domain.run(25.0)
        assert "spare-1" not in domain.dsr.active_inrs

    def test_idle_spawned_inr_terminates_and_frees_node(self):
        domain = InsDomain(seed=43, config=loaded_config())
        inr = domain.add_inr(address="inr-main")
        domain.add_candidate("spare-1")
        domain.add_service("[service=hot[id=1]]", resolver=inr)
        client = domain.add_client(resolver=inr, reselect_interval=5.0)
        domain.settle()
        blast_lookups(domain, client, inr, rate=900, duration=15)
        domain.run(12.0)
        assert "spare-1" in domain.dsr.active_inrs
        domain.run(200.0)  # load gone; helper should retire
        assert domain.dsr.active_inrs == ("inr-main",)
        # ...and its node is available for the next overload.
        assert "spare-1" in domain.dsr.candidates

    def test_freed_node_can_be_spawned_onto_again(self):
        """Regression: terminate must return the node to the candidate
        pool in a state the next overload can actually claim — spawn,
        retire, then spawn onto the *same* node a second time."""
        domain = InsDomain(seed=47, config=loaded_config())
        inr = domain.add_inr(address="inr-main")
        domain.add_candidate("spare-1")
        domain.add_service("[service=hot[id=1]]", resolver=inr)
        client = domain.add_client(resolver=inr, reselect_interval=5.0)
        domain.settle()
        blast_lookups(domain, client, inr, rate=900, duration=15)
        domain.run(12.0)
        assert "spare-1" in domain.dsr.active_inrs
        first = domain.inr_at("spare-1")
        domain.run(200.0)  # idle: the helper retires, node freed
        assert domain.dsr.active_inrs == ("inr-main",)
        assert "spare-1" in domain.dsr.candidates
        assert first.terminated
        # Second overload wave claims the same node again.
        blast_lookups(domain, client, inr, rate=900, duration=15)
        domain.run(12.0)
        assert "spare-1" in domain.dsr.active_inrs
        second = domain.inr_at("spare-1")
        assert second is not first and not second.terminated
        assert second.was_spawned

    def test_spawned_sole_vspace_owner_never_terminates(self):
        """The termination guard: an idle INR that is the only resolver
        for a vspace must stay up (its names would become orphans)."""
        domain = InsDomain(
            seed=44,
            config=loaded_config(
                delegate_update_rate=20.0, refresh_interval=1.0,
                record_lifetime=1e9,
            ),
        )
        inr = domain.add_inr(address="inr-main", vspaces=("space-a", "space-b"))
        domain.add_candidate("spare-1")
        for i in range(60):
            space = "space-a" if i % 2 else "space-b"
            domain.add_service(f"[service=bulk[id=n{i}]][vspace={space}]",
                               resolver=inr, refresh_interval=1.0)
        domain.run(30.0)  # update overload -> delegation to spare-1
        assert len(inr.vspaces) == 1
        domain.run(200.0)  # idle forever after; spare-1 must persist
        assert "spare-1" in domain.dsr.active_inrs


class TestDelegation:
    def test_delegated_vspace_moves_with_names(self):
        domain = InsDomain(
            seed=45,
            config=loaded_config(
                delegate_update_rate=20.0, refresh_interval=1.0,
                record_lifetime=1e9, spawn_lookup_rate=1e9,
            ),
        )
        inr = domain.add_inr(address="inr-main", vspaces=("space-a", "space-b"))
        domain.add_candidate("spare-1")
        for i in range(60):
            space = "space-a" if i % 2 else "space-b"
            domain.add_service(f"[service=bulk[id=n{i}]][vspace={space}]",
                               resolver=inr, refresh_interval=1.0)
        domain.run(30.0)
        delegated = next(v for v in ("space-a", "space-b") if v not in inr.vspaces)
        spawned = next(i for i in domain.inrs if i.address == "spare-1")
        assert spawned.vspaces == (delegated,)
        assert spawned.name_count(delegated) == 30
        assert domain.dsr.resolvers_for(delegated) == ("spare-1",)

    def test_queries_for_delegated_space_still_resolve(self):
        domain = InsDomain(
            seed=46,
            config=loaded_config(
                delegate_update_rate=20.0, refresh_interval=1.0,
                record_lifetime=1e9, spawn_lookup_rate=1e9,
            ),
        )
        inr = domain.add_inr(address="inr-main", vspaces=("space-a", "space-b"))
        domain.add_candidate("spare-1")
        for i in range(60):
            space = "space-a" if i % 2 else "space-b"
            domain.add_service(f"[service=bulk[id=n{i}]][vspace={space}]",
                               resolver=inr, refresh_interval=1.0)
        domain.run(30.0)
        delegated = next(v for v in ("space-a", "space-b") if v not in inr.vspaces)
        client = domain.add_client(resolver=inr)
        reply = client.resolve_early(parse(f"[service=bulk][vspace={delegated}]"))
        domain.run(2.0)
        assert len(reply.value) == 30
