"""Tests for INR lifecycle: join, peering, failure, termination."""

import pytest

from repro.experiments import InsDomain
from repro.resolver import InrConfig

from ..conftest import parse


class TestJoin:
    def test_first_inr_has_no_peers(self):
        domain = InsDomain(seed=30)
        first = domain.add_inr()
        assert first.active
        assert len(first.neighbors) == 0
        assert domain.dsr.active_inrs == (first.address,)

    def test_joiner_peers_with_minimum_rtt_active(self):
        domain = InsDomain(seed=30)
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        # Make inr-b much closer to the newcomer than inr-a is.
        domain.network.configure_link("inr-b", "inr-c", latency=0.001)
        domain.network.configure_link("inr-a", "inr-c", latency=0.05)
        c = domain.add_inr(address="inr-c")
        assert c.neighbors.parent.address == "inr-b"
        assert "inr-c" in b.neighbors

    def test_n_inrs_form_a_tree(self):
        """n nodes, n-1 peering edges, all connected (Section 2.4)."""
        domain = InsDomain(seed=31)
        for _ in range(6):
            domain.add_inr()
        edges = set()
        for inr in domain.inrs:
            for neighbor in inr.neighbors:
                edges.add(frozenset((inr.address, neighbor.address)))
        assert len(edges) == len(domain.inrs) - 1
        # connectivity by union-find over the edges
        parent = {inr.address: inr.address for inr in domain.inrs}

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for edge in sorted(edges, key=sorted):
            x, y = sorted(edge)
            parent[find(x)] = find(y)
        roots = {find(inr.address) for inr in domain.inrs}
        assert len(roots) == 1

    def test_new_peer_receives_full_table(self):
        domain = InsDomain(seed=32)
        a = domain.add_inr(address="inr-a")
        domain.add_service("[service=old[id=1]]", resolver=a)
        domain.run(1.0)
        b = domain.add_inr(address="inr-b")
        domain.run(1.0)
        assert b.name_count() == 1


class TestFailureRecovery:
    def test_goodbye_triggers_immediate_rejoin(self):
        domain = InsDomain(seed=33)
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        c = domain.add_inr(address="inr-c")
        # Whoever is peered with a gets a goodbye when a terminates.
        a.terminate()
        domain.run(5.0)
        assert domain.dsr.active_inrs == ("inr-b", "inr-c")
        edges = {
            frozenset((inr.address, n.address))
            for inr in (b, c)
            for n in inr.neighbors
        }
        assert edges == {frozenset(("inr-b", "inr-c"))}

    def test_silent_crash_heals_via_timeouts(self):
        domain = InsDomain(seed=34)
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        c = domain.add_inr(address="inr-c")
        a.crash()
        domain.run(120.0)  # > neighbor timeout and DSR lifetime
        assert "inr-a" not in domain.dsr.active_inrs
        assert "inr-a" not in b.neighbors
        assert "inr-a" not in c.neighbors
        # the survivors re-formed a connected overlay
        assert ("inr-c" in b.neighbors) or ("inr-b" in c.neighbors)

    def test_routes_via_dead_neighbor_flushed(self):
        domain = InsDomain(seed=35)
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        service = domain.add_service("[service=x[id=1]]", resolver=b)
        domain.run(1.0)
        assert a.name_count() == 1
        service.stop()  # stop refreshing before the crash
        b.crash()
        domain.run(120.0)
        assert a.name_count() == 0

    def test_names_survive_inr_failure_when_service_lives(self):
        """A service whose INR died keeps advertising; after re-attach
        its name reappears through the surviving resolver."""
        domain = InsDomain(
            seed=36, config=InrConfig(refresh_interval=3.0, record_lifetime=9.0)
        )
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        service = domain.add_service("[service=x[id=1]]", resolver=b,
                                     refresh_interval=3.0, lifetime=9.0)
        client = domain.add_client(resolver=a)
        domain.run(1.0)
        b.crash()
        service.reattach()
        domain.run(30.0)
        reply = client.resolve_early(parse("[service=x]"))
        domain.run(1.0)
        assert len(reply.value) == 1


class TestTermination:
    def test_terminate_deregisters_and_unbinds(self):
        domain = InsDomain(seed=37)
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        b.terminate()
        domain.run(1.0)
        assert domain.dsr.active_inrs == ("inr-a",)
        assert domain.network.node("inr-b").processes == ()

    def test_terminate_is_idempotent(self):
        domain = InsDomain(seed=38)
        a = domain.add_inr()
        a.terminate()
        a.terminate()
