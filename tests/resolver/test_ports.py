"""Tests for well-known ports and the ephemeral allocator."""

from repro.resolver import DSR_PORT, EPHEMERAL_BASE, INR_PORT, PortAllocator


class TestWellKnownPorts:
    def test_ports_are_distinct(self):
        assert INR_PORT != DSR_PORT

    def test_ephemeral_range_clears_well_known(self):
        assert EPHEMERAL_BASE > max(INR_PORT, DSR_PORT)


class TestPortAllocator:
    def test_allocations_are_unique_and_increasing(self):
        allocator = PortAllocator()
        ports = [allocator.allocate() for _ in range(10)]
        assert len(set(ports)) == 10
        assert ports == sorted(ports)
        assert ports[0] == EPHEMERAL_BASE

    def test_custom_base(self):
        allocator = PortAllocator(base=40000)
        assert allocator.allocate() == 40000

    def test_independent_allocators_do_not_interfere(self):
        a = PortAllocator()
        b = PortAllocator()
        assert a.allocate() == b.allocate()
