"""Shared fixtures for the INS reproduction test suite."""

from __future__ import annotations

import pytest

from repro.experiments import InsDomain
from repro.naming import NameSpecifier
from repro.nametree import AnnouncerID, Endpoint, NameRecord, NameTree


@pytest.fixture
def domain():
    """A fresh single-seed domain with a DSR and no INRs yet."""
    return InsDomain(seed=1)


@pytest.fixture
def tree():
    """An empty default-vspace name-tree."""
    return NameTree()


def make_record(host: str = "10.0.0.1", port: int = 9, metric: float = 0.0,
                expires_at: float = float("inf")) -> NameRecord:
    """A minimal local name-record for direct tree manipulation."""
    return NameRecord(
        announcer=AnnouncerID.generate(host),
        endpoints=[Endpoint(host=host, port=port)],
        anycast_metric=metric,
        expires_at=expires_at,
    )


def parse(text: str) -> NameSpecifier:
    return NameSpecifier.parse(text)


#: The paper's running example (Figures 2 and 3).
OVAL_OFFICE_CAMERA = (
    "[city = washington [building = whitehouse"
    " [wing = west [room = oval-office]]]]"
    "[service = camera [data-type = picture [format = jpg]]"
    " [resolution = 640x480]]"
    "[accessibility = public]"
)
