"""Lint: simulation code must not consult ambient randomness or wall
clocks.

Reproducibility is load-bearing for every experiment in this repo (and
for the chaos harness's same-seed-same-run guarantee), so all
randomness must flow from a seeded ``random.Random`` instance — usually
the simulator's ``rng`` — and all time from the simulator's virtual
clock. This test AST-scans ``src/repro`` and fails on:

- module-level ``random.<fn>()`` calls (the interpreter-global RNG);
- ``time.time()`` / ``time.time_ns()`` (wall-clock timestamps);
- the same functions smuggled in via ``from random import ...`` /
  ``from time import time``.

``random.Random(seed)`` is the sanctioned construction, and
``time.perf_counter`` stays allowed: the figure-12 style experiments
measure *real* CPU cost of lookups, which is a measurement of the host,
not simulated behavior.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: random-module attributes that construct independent seeded RNGs.
ALLOWED_RANDOM = {"Random", "SystemRandom"}
#: time-module attributes that read the wall clock (banned); the
#: monotonic perf counters stay allowed for host-CPU microbenchmarks.
BANNED_TIME = {"time", "time_ns"}


def _violations_in(path: Path, root: Path = None):
    root = root or SRC
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []

    # Track what names the module-level imports bind.
    random_aliases = set()
    time_aliases = set()
    tainted_names = {}  # local name -> "random.randint" etc.
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name
                if alias.name == "random":
                    random_aliases.add(bound)
                elif alias.name == "time":
                    time_aliases.add(bound)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                for alias in node.names:
                    if alias.name not in ALLOWED_RANDOM:
                        tainted_names[alias.asname or alias.name] = (
                            f"random.{alias.name}"
                        )
            elif node.module == "time":
                for alias in node.names:
                    if alias.name in BANNED_TIME:
                        tainted_names[alias.asname or alias.name] = (
                            f"time.{alias.name}"
                        )

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module, attr = func.value.id, func.attr
            if module in random_aliases and attr not in ALLOWED_RANDOM:
                violations.append(
                    f"{path.relative_to(root)}:{node.lineno}: random.{attr}() "
                    "uses the global RNG; draw from a seeded random.Random "
                    "(e.g. sim.rng) instead"
                )
            elif module in time_aliases and attr in BANNED_TIME:
                violations.append(
                    f"{path.relative_to(root)}:{node.lineno}: time.{attr}() "
                    "reads the wall clock; use the simulator's virtual now"
                )
        elif isinstance(func, ast.Name) and func.id in tainted_names:
            violations.append(
                f"{path.relative_to(root)}:{node.lineno}: "
                f"{tainted_names[func.id]}() via from-import; use a seeded "
                "random.Random / virtual time instead"
            )
    return violations


def test_no_ambient_randomness_or_wall_clock_in_src():
    assert SRC.is_dir()
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        violations.extend(_violations_in(path))
    assert not violations, "\n".join(violations)


class TestLintDetectsViolations:
    """The lint itself must catch each banned pattern (meta-tests on
    synthetic modules)."""

    def _lint_source(self, tmp_path, source):
        path = tmp_path / "mod.py"
        path.write_text(source)
        return _violations_in(path, root=tmp_path)

    def test_global_random_flagged(self, tmp_path):
        assert self._lint_source(
            tmp_path, "import random\nx = random.randint(0, 5)\n"
        )

    def test_seeded_random_allowed(self, tmp_path):
        assert not self._lint_source(
            tmp_path, "import random\nrng = random.Random(7)\nx = rng.random()\n"
        )

    def test_wall_clock_flagged(self, tmp_path):
        assert self._lint_source(tmp_path, "import time\nt = time.time()\n")

    def test_perf_counter_allowed(self, tmp_path):
        assert not self._lint_source(
            tmp_path, "import time\nt = time.perf_counter()\n"
        )

    def test_from_import_flagged(self, tmp_path):
        assert self._lint_source(
            tmp_path, "from random import randint\nx = randint(0, 5)\n"
        )
        assert self._lint_source(
            tmp_path, "from time import time\nt = time()\n"
        )

    def test_aliased_module_flagged(self, tmp_path):
        assert self._lint_source(
            tmp_path, "import random as rnd\nx = rnd.choice([1, 2])\n"
        )
