"""Tests for the DNS-style baseline directory."""

import pytest

from repro.baselines import (
    DnsClient,
    DnsDeregister,
    DnsDirectory,
    DnsRegisteredService,
    DNS_PORT,
)
from repro.nametree import Endpoint
from repro.netsim import Network, Simulator


@pytest.fixture
def dns_world():
    sim = Simulator(seed=600)
    network = Network(sim)
    directory = DnsDirectory(network.add_node("dns-server"), default_ttl=30.0)
    client = DnsClient(network.add_node("client"), 7001, "dns-server")
    return sim, network, directory, client


def add_server(network, host, hostname, ttl=30.0):
    service = DnsRegisteredService(network.add_node(host), 7000, hostname,
                                   "dns-server", ttl=ttl)
    service.start()
    return service


class TestDirectory:
    def test_register_and_resolve(self, dns_world):
        sim, network, directory, client = dns_world
        add_server(network, "srv-1", "printer.example")
        sim.run_for(1.0)
        reply = client.resolve("printer.example")
        sim.run_for(1.0)
        assert reply.value.host == "srv-1"

    def test_unknown_name_resolves_to_none(self, dns_world):
        sim, network, directory, client = dns_world
        reply = client.resolve("ghost.example")
        sim.run_for(1.0)
        assert reply.done
        assert reply.value is None

    def test_round_robin_across_records(self, dns_world):
        sim, network, directory, client = dns_world
        add_server(network, "srv-1", "printer.example")
        add_server(network, "srv-2", "printer.example")
        sim.run_for(1.0)
        hosts = []
        for _ in range(4):
            client.resolve("printer.example").then(
                lambda e: hosts.append(e.host)
            )
            sim.run_for(0.5)
        assert hosts == ["srv-1", "srv-2", "srv-1", "srv-2"]

    def test_re_registration_replaces_endpoint(self, dns_world):
        sim, network, directory, client = dns_world
        service = add_server(network, "srv-1", "printer.example")
        sim.run_for(1.0)
        network.rename_node("srv-1", "srv-moved")
        service.register()
        sim.run_for(1.0)
        assert directory.records_for("printer.example") == (
            Endpoint(host="srv-moved", port=7000),
        )

    def test_deregister_removes_record(self, dns_world):
        sim, network, directory, client = dns_world
        service = add_server(network, "srv-1", "printer.example")
        sim.run_for(1.0)
        network.send(
            "srv-1", "dns-server", DNS_PORT,
            DnsDeregister("printer.example",
                          Endpoint(host="srv-1", port=7000)),
            50,
        )
        sim.run_for(1.0)
        assert directory.records_for("printer.example") == ()


class TestClientCaching:
    def test_cache_hit_avoids_server(self, dns_world):
        sim, network, directory, client = dns_world
        add_server(network, "srv-1", "printer.example")
        sim.run_for(1.0)
        client.resolve("printer.example")
        sim.run_for(1.0)
        served_before = directory.queries_served
        client.resolve("printer.example")
        sim.run_for(1.0)
        assert directory.queries_served == served_before
        assert client.cache_hits == 1

    def test_cache_serves_stale_records_until_ttl(self, dns_world):
        """The failure mode late binding avoids: a cached answer keeps
        pointing at the old address after the host moved."""
        sim, network, directory, client = dns_world
        service = add_server(network, "srv-1", "printer.example", ttl=30.0)
        sim.run_for(1.0)
        client.resolve("printer.example")
        sim.run_for(1.0)
        network.rename_node("srv-1", "srv-moved")
        service.register()  # directory is fixed immediately...
        sim.run_for(1.0)
        stale = client.resolve("printer.example")
        sim.run_for(1.0)
        assert stale.value.host == "srv-1"  # ...but the cache is not
        sim.run_for(35.0)  # TTL expires
        fresh = client.resolve("printer.example")
        sim.run_for(1.0)
        assert fresh.value.host == "srv-moved"

    def test_no_hard_state_expiry_without_deregistration(self, dns_world):
        """Unlike INS soft state, a dead server's record lives forever."""
        sim, network, directory, client = dns_world
        service = add_server(network, "srv-1", "printer.example")
        sim.run_for(1.0)
        service.stop()  # crashes; never deregisters
        sim.run_for(500.0)
        assert directory.records_for("printer.example") != ()
