"""Failure-injection tests: packet loss, crashes, partitions."""

import pytest

from repro.experiments import InsDomain
from repro.resolver import InrConfig

from ..conftest import parse


class TestPacketLoss:
    def test_soft_state_survives_moderate_loss(self):
        """With 20% loss, periodic refreshes keep names alive: each
        refresh is an independent trial, so a name's record survives
        as long as one refresh lands per lifetime."""
        domain = InsDomain(
            seed=210,
            default_loss_rate=0.2,
            config=InrConfig(refresh_interval=2.0, record_lifetime=10.0),
        )
        a = domain.add_inr()
        b = domain.add_inr()
        domain.add_service("[service=lossy[id=1]]", resolver=a,
                           refresh_interval=2.0, lifetime=10.0)
        domain.run(60.0)
        assert a.name_count() == 1
        assert b.name_count() == 1

    def test_anycast_is_best_effort_under_loss(self):
        """Late binding gives no delivery guarantee (Section 1); under
        heavy loss some sends vanish and nothing breaks."""
        domain = InsDomain(
            seed=211,
            default_loss_rate=0.4,
            config=InrConfig(refresh_interval=1.0, record_lifetime=6.0),
        )
        inr = domain.add_inr()
        service = domain.add_service("[service=lossy[id=1]]", resolver=inr,
                                     refresh_interval=1.0, lifetime=6.0)
        inbox = []
        service.on_message(lambda m, s: inbox.append(m.data))
        client = domain.add_client(resolver=inr)
        domain.run(2.0)
        for i in range(50):
            domain.sim.schedule(
                i * 0.2, client.send_anycast, parse("[service=lossy]"),
                f"m{i}".encode(),
            )
        domain.run(15.0)
        assert 10 <= len(inbox) < 50  # some losses, plenty delivered

    def test_discovery_protocol_reconverges_after_lossy_burst(self):
        domain = InsDomain(
            seed=212,
            config=InrConfig(refresh_interval=2.0, record_lifetime=8.0),
        )
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        link = domain.network.configure_link("inr-a", "inr-b", loss_rate=0.9)
        domain.add_service("[service=x[id=1]]", resolver=a,
                           refresh_interval=2.0, lifetime=8.0)
        domain.run(5.0)
        link.loss_rate = 0.0  # the wireless link recovers
        domain.run(10.0)
        assert b.name_count() == 1


class TestCrashes:
    def test_dsr_unavailability_does_not_stop_existing_overlay(self):
        """The DSR is only needed for joins/spawns/vspace misses; an
        established overlay keeps resolving without it."""
        domain = InsDomain(seed=213)
        a = domain.add_inr()
        b = domain.add_inr()
        service = domain.add_service("[service=x[id=1]]", resolver=a)
        client = domain.add_client(resolver=b)
        domain.run(2.0)
        domain.dsr.stop()  # kill the DSR
        inbox = []
        service.on_message(lambda m, s: inbox.append(m.data))
        domain.run(30.0)
        client.send_anycast(parse("[service=x]"), b"still-works")
        domain.run(1.0)
        assert inbox == [b"still-works"]

    def test_cascading_inr_failures(self):
        """Kill resolvers one at a time; the remainder re-form a tree
        and the surviving service stays resolvable via re-attachment."""
        domain = InsDomain(
            seed=214, config=InrConfig(refresh_interval=3.0, record_lifetime=9.0)
        )
        inrs = [domain.add_inr() for _ in range(4)]
        service = domain.add_service("[service=hardy[id=1]]", resolver=inrs[3],
                                     refresh_interval=3.0, lifetime=9.0)
        domain.run(2.0)
        for doomed in inrs[:3]:
            doomed.crash()
            domain.run(90.0)
        survivor = inrs[3]
        assert domain.dsr.active_inrs == (survivor.address,)
        client = domain.add_client(resolver=survivor)
        reply = client.resolve_early(parse("[service=hardy]"))
        domain.run(1.0)
        assert len(reply.value) == 1

    def test_simultaneous_crash_of_majority(self):
        domain = InsDomain(
            seed=215, config=InrConfig(refresh_interval=3.0, record_lifetime=9.0)
        )
        inrs = [domain.add_inr() for _ in range(5)]
        for inr in inrs[:3]:
            inr.crash()
        domain.run(150.0)
        live = set(domain.dsr.active_inrs)
        assert live == {inrs[3].address, inrs[4].address}
        # survivors re-peered with each other
        assert (inrs[4].address in inrs[3].neighbors
                or inrs[3].address in inrs[4].neighbors)

    def test_service_crash_leaves_no_phantom_after_lifetimes(self):
        domain = InsDomain(
            seed=216, config=InrConfig(refresh_interval=2.0, record_lifetime=6.0)
        )
        inrs = [domain.add_inr() for _ in range(3)]
        service = domain.add_service("[service=ghost[id=1]]", resolver=inrs[0],
                                     refresh_interval=2.0, lifetime=6.0)
        domain.run(2.0)
        service.stop()
        # worst case: one lifetime per hop of the 3-INR chain
        domain.run(30.0)
        for inr in inrs:
            assert inr.name_count() == 0


class TestDsrFailover:
    def test_replica_failover_under_partition(self):
        """Partition the primary DSR away from the domain, then promote
        a replica onto the well-known address: the promoted copy starts
        from the replica's mirrored state and the INRs' heartbeats keep
        it converged — joins work again immediately."""
        domain = InsDomain(
            seed=220,
            config=InrConfig(refresh_interval=2.0, record_lifetime=6.0,
                             heartbeat_interval=2.0),
            dsr_registration_lifetime=6.0,
            dsr_sweep_interval=1.0,
        )
        replica = domain.add_dsr_replica()
        inrs = [domain.add_inr() for _ in range(3)]
        domain.run(3.0)
        # The replica mirrored every registration before the failure.
        assert set(replica.active_inrs) == {i.address for i in inrs}

        everyone = [i.address for i in inrs] + [replica.address]
        domain.network.partition(("dsr-host",), everyone)
        old_primary = domain.dsr
        domain.run(4.0)
        promoted = domain.fail_over_dsr()
        domain.network.heal(("dsr-host",), everyone)
        assert promoted is domain.dsr and promoted is not old_primary
        # Warm start: the promoted DSR inherits the replica's view, minus
        # whatever soft-state leases ran out while the primary was cut off.
        assert set(promoted.active_inrs) <= {i.address for i in inrs}
        # One heartbeat interval re-fills anything the lease dropped.
        domain.run(3.0)
        assert set(promoted.active_inrs) == {i.address for i in inrs}

        # New resolvers can join through the promoted primary.
        late = domain.add_inr()
        domain.run(3.0)
        assert late.address in promoted.active_inrs
        assert len(late.neighbors) >= 1

    def test_failover_without_replica_rebuilds_from_heartbeats(self):
        domain = InsDomain(
            seed=221,
            config=InrConfig(heartbeat_interval=2.0),
            dsr_registration_lifetime=6.0,
            dsr_sweep_interval=1.0,
        )
        inrs = [domain.add_inr() for _ in range(2)]
        domain.run(2.0)
        promoted = domain.fail_over_dsr()
        assert promoted.active_inrs == ()  # cold start
        domain.run(5.0)  # > one heartbeat interval
        assert set(promoted.active_inrs) == {i.address for i in inrs}


class TestCrashRestart:
    def test_parent_inr_crash_restart_rejoins_overlay(self):
        """Crash the *parent* resolver of the overlay tree (the one the
        others joined through), let the survivors re-form, then restart
        it: the revived resolver rejoins as a leaf, every name comes
        back, and the overlay is a single tree again."""
        config = InrConfig(refresh_interval=2.0, record_lifetime=6.0,
                           expiry_sweep_interval=1.0, heartbeat_interval=2.0,
                           neighbor_timeout=8.0)
        domain = InsDomain(seed=222, config=config,
                           dsr_registration_lifetime=6.0, dsr_sweep_interval=1.0)
        parent = domain.add_inr()  # first INR: everyone's join target
        others = [domain.add_inr() for _ in range(3)]
        domain.add_service("[service=x[id=1]]", resolver=parent,
                           refresh_interval=2.0, lifetime=6.0)
        domain.add_service("[service=x[id=2]]", resolver=others[0],
                           refresh_interval=2.0, lifetime=6.0)
        domain.run(3.0)
        assert all(parent.address in o.neighbors for o in others)

        parent.crash()
        domain.run(30.0)  # timeouts fire; survivors re-form a tree
        assert parent.address not in domain.dsr.active_inrs
        for other in others:
            assert parent.address not in other.neighbors

        domain.restart_inr(parent.address)
        domain.run(15.0)
        assert parent.address in domain.dsr.active_inrs
        assert parent.restarts == 1
        # Rejoined the overlay bilaterally with at least one survivor.
        assert any(
            parent.address in o.neighbors and o.address in parent.neighbors
            for o in others
        )
        # Both names propagated back everywhere, nothing stale.
        for inr in [parent] + others:
            assert inr.name_count() == 2
