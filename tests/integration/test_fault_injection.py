"""Failure-injection tests: packet loss, crashes, partitions."""

import pytest

from repro.experiments import InsDomain
from repro.resolver import InrConfig

from ..conftest import parse


class TestPacketLoss:
    def test_soft_state_survives_moderate_loss(self):
        """With 20% loss, periodic refreshes keep names alive: each
        refresh is an independent trial, so a name's record survives
        as long as one refresh lands per lifetime."""
        domain = InsDomain(
            seed=210,
            default_loss_rate=0.2,
            config=InrConfig(refresh_interval=2.0, record_lifetime=10.0),
        )
        a = domain.add_inr()
        b = domain.add_inr()
        domain.add_service("[service=lossy[id=1]]", resolver=a,
                           refresh_interval=2.0, lifetime=10.0)
        domain.run(60.0)
        assert a.name_count() == 1
        assert b.name_count() == 1

    def test_anycast_is_best_effort_under_loss(self):
        """Late binding gives no delivery guarantee (Section 1); under
        heavy loss some sends vanish and nothing breaks."""
        domain = InsDomain(
            seed=211,
            default_loss_rate=0.4,
            config=InrConfig(refresh_interval=1.0, record_lifetime=6.0),
        )
        inr = domain.add_inr()
        service = domain.add_service("[service=lossy[id=1]]", resolver=inr,
                                     refresh_interval=1.0, lifetime=6.0)
        inbox = []
        service.on_message(lambda m, s: inbox.append(m.data))
        client = domain.add_client(resolver=inr)
        domain.run(2.0)
        for i in range(50):
            domain.sim.schedule(
                i * 0.2, client.send_anycast, parse("[service=lossy]"),
                f"m{i}".encode(),
            )
        domain.run(15.0)
        assert 10 <= len(inbox) < 50  # some losses, plenty delivered

    def test_discovery_protocol_reconverges_after_lossy_burst(self):
        domain = InsDomain(
            seed=212,
            config=InrConfig(refresh_interval=2.0, record_lifetime=8.0),
        )
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        link = domain.network.configure_link("inr-a", "inr-b", loss_rate=0.9)
        domain.add_service("[service=x[id=1]]", resolver=a,
                           refresh_interval=2.0, lifetime=8.0)
        domain.run(5.0)
        link.loss_rate = 0.0  # the wireless link recovers
        domain.run(10.0)
        assert b.name_count() == 1


class TestCrashes:
    def test_dsr_unavailability_does_not_stop_existing_overlay(self):
        """The DSR is only needed for joins/spawns/vspace misses; an
        established overlay keeps resolving without it."""
        domain = InsDomain(seed=213)
        a = domain.add_inr()
        b = domain.add_inr()
        service = domain.add_service("[service=x[id=1]]", resolver=a)
        client = domain.add_client(resolver=b)
        domain.run(2.0)
        domain.dsr.stop()  # kill the DSR
        inbox = []
        service.on_message(lambda m, s: inbox.append(m.data))
        domain.run(30.0)
        client.send_anycast(parse("[service=x]"), b"still-works")
        domain.run(1.0)
        assert inbox == [b"still-works"]

    def test_cascading_inr_failures(self):
        """Kill resolvers one at a time; the remainder re-form a tree
        and the surviving service stays resolvable via re-attachment."""
        domain = InsDomain(
            seed=214, config=InrConfig(refresh_interval=3.0, record_lifetime=9.0)
        )
        inrs = [domain.add_inr() for _ in range(4)]
        service = domain.add_service("[service=hardy[id=1]]", resolver=inrs[3],
                                     refresh_interval=3.0, lifetime=9.0)
        domain.run(2.0)
        for doomed in inrs[:3]:
            doomed.crash()
            domain.run(90.0)
        survivor = inrs[3]
        assert domain.dsr.active_inrs == (survivor.address,)
        client = domain.add_client(resolver=survivor)
        reply = client.resolve_early(parse("[service=hardy]"))
        domain.run(1.0)
        assert len(reply.value) == 1

    def test_simultaneous_crash_of_majority(self):
        domain = InsDomain(
            seed=215, config=InrConfig(refresh_interval=3.0, record_lifetime=9.0)
        )
        inrs = [domain.add_inr() for _ in range(5)]
        for inr in inrs[:3]:
            inr.crash()
        domain.run(150.0)
        live = set(domain.dsr.active_inrs)
        assert live == {inrs[3].address, inrs[4].address}
        # survivors re-peered with each other
        assert (inrs[4].address in inrs[3].neighbors
                or inrs[3].address in inrs[4].neighbors)

    def test_service_crash_leaves_no_phantom_after_lifetimes(self):
        domain = InsDomain(
            seed=216, config=InrConfig(refresh_interval=2.0, record_lifetime=6.0)
        )
        inrs = [domain.add_inr() for _ in range(3)]
        service = domain.add_service("[service=ghost[id=1]]", resolver=inrs[0],
                                     refresh_interval=2.0, lifetime=6.0)
        domain.run(2.0)
        service.stop()
        # worst case: one lifetime per hop of the 3-INR chain
        domain.run(30.0)
        for inr in inrs:
            assert inr.name_count() == 0
