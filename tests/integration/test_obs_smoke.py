"""End-to-end observability smoke: spans across real INR hops.

Drives real traffic (early-binding lookups, late-binding anycast
through a forwarding hop, a lookup that can only drop) through an
observed :class:`InsDomain` and checks the three tentpole properties:
every request yields a well-formed span tree rooted at the client, a
drop carries its ``drops_*`` cause as the span status, and two
same-seed observed runs export byte-identical artifacts.
"""

from repro.experiments import InsDomain
from repro.naming import NameSpecifier
from repro.obs import spans_to_jsonl, well_formed_traces

from ..conftest import parse


def build_observed_domain(seed: int = 42):
    domain = InsDomain(seed=seed)
    collector = domain.observe(profile_events=True)
    inr_a = domain.add_inr(address="inr-a")
    inr_b = domain.add_inr(address="inr-b")
    service = domain.add_service("[service=cam[id=1]]", resolver=inr_b)
    client = domain.add_client(resolver=inr_a)
    domain.settle()
    return domain, collector, client, service


class TestTracedRequests:
    def test_lookup_produces_client_rooted_tree(self):
        domain, collector, client, _service = build_observed_domain()
        reply = client.resolve_early(parse("[service=cam]"))
        domain.run(1.0)
        assert reply.done and reply.value
        assert well_formed_traces(collector.tracer.spans) == {}
        roots = [s for s in collector.tracer.spans if s.is_root]
        assert [s.name for s in roots] == ["client.request"]
        resolves = [s for s in collector.tracer.spans
                    if s.name == "inr.resolve"]
        assert resolves and all(s.status == "ok" for s in resolves)

    def test_anycast_chains_one_hop_span_per_inr(self):
        domain, collector, client, _service = build_observed_domain()
        client.send_anycast(parse("[service=cam]"), b"frame")
        domain.run(1.0)
        assert well_formed_traces(collector.tracer.spans) == {}
        hops = [s for s in collector.tracer.spans if s.name == "inr.hop"]
        statuses = sorted(s.status for s in hops)
        # inr-a forwards toward inr-b, which delivers to the service.
        assert statuses == ["delivered", "forwarded"]
        by_id = {s.span_id: s for s in collector.tracer.spans}
        delivered = next(s for s in hops if s.status == "delivered")
        forwarded = next(s for s in hops if s.status == "forwarded")
        assert by_id[delivered.parent_span_id] is forwarded
        assert forwarded.node == "inr-a" and delivered.node == "inr-b"

    def test_drop_carries_its_cause_as_span_status(self):
        domain, collector, client, _service = build_observed_domain()
        client.send_anycast(parse("[service=nonexistent]"), b"lost")
        domain.run(1.0)
        drops = [s for s in collector.tracer.spans if s.is_drop]
        assert [s.drop_cause for s in drops] == ["no-route"]
        assert well_formed_traces(collector.tracer.spans) == {}

    def test_untraced_domain_emits_no_spans_and_untraced_packets(self):
        domain = InsDomain(seed=42)
        inr = domain.add_inr()
        domain.add_service("[service=cam[id=1]]", resolver=inr)
        client = domain.add_client(resolver=inr)
        domain.settle()
        assert client.tracer is None and inr.tracer is None
        reply = client.resolve_early(parse("[service=cam]"))
        domain.run(1.0)
        assert reply.done


class TestHarvestAndDeterminism:
    def scenario(self, seed: int = 42):
        domain, collector, client, _service = build_observed_domain(seed)
        client.resolve_early(parse("[service=cam]"))
        client.send_anycast(parse("[service=cam]"), b"frame")
        client.send_anycast(parse("[service=nonexistent]"), b"lost")
        domain.run(2.0)
        domain.harvest()
        return collector

    def test_harvest_labels_component_stats(self):
        snapshot = self.scenario().metrics_snapshot()
        counters = snapshot["counters"]
        assert counters["inr.packets_forwarded"]["inr=inr-a"] >= 1
        assert counters["inr.packets_delivered_locally"]["inr=inr-b"] >= 1
        assert "client.requests_sent" in counters
        gauges = snapshot["gauges"]
        assert "inr.names" in gauges
        # the simulator profile installed by observe(profile_events=True)
        assert "sim.events" in counters

    def test_same_seed_runs_export_byte_identical_artifacts(self):
        first, second = self.scenario(), self.scenario()
        assert spans_to_jsonl(first.tracer.spans) == \
            spans_to_jsonl(second.tracer.spans)
        assert first.metrics_json() == second.metrics_json()

    def test_observability_payload_shape(self):
        payload = self.scenario().observability_payload()
        assert set(payload) == {"span_summary", "metrics"}
        assert payload["span_summary"]["drop_attribution"] == {"no-route": 1}
