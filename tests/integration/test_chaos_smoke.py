"""Chaos smoke: the acceptance scenario for the chaos harness.

Crash 30% of the resolvers (with restarts), flap 20% of the overlay
links, inject duplication/reordering and fail the DSR over to a warm
replica — every invariant must hold throughout, the overlay must
reconverge to a single spanning tree, every fault must report a finite
recovery time, and the whole run must be bit-reproducible from its
seed. Uses the scaled-down soft-state clocks so the suite stays fast.
"""

import math
import time

from repro.chaos import run_chaos_scenario


def test_chaos_scenario_invariants_recovery_and_reproducibility():
    started = time.perf_counter()
    first = run_chaos_scenario(
        seed=42,
        n_inrs=6,
        n_services=4,
        chaos_duration=30.0,
        crash_fraction=0.3,
        flap_fraction=0.2,
        dsr_failover=True,
        link_fault_fraction=0.2,
    )

    # Chaos actually happened: crashes, restarts, flaps and a failover.
    assert first.faults_applied >= 5
    for kind in ("crash-inr", "restart-inr", "link-down", "dsr-failover"):
        assert kind in first.fault_kinds

    # Invariants held at every sample during the faults...
    assert first.invariant_samples > 0
    assert first.violations == []
    # ...and the converged properties hold after the bound: one spanning
    # tree, consistent name-trees.
    assert first.converged_violations == []

    # Every resolver is back: all six active, all holding all names.
    assert len(first.final_active) == 6
    assert all(count == 4 for _address, count in first.final_name_counts)

    # Every fault of every kind recovered in finite virtual time.
    assert first.mttr
    for kind, stats in first.mttr.items():
        assert stats["unrecovered"] == 0.0, kind
        assert math.isfinite(stats["p100"]), kind

    # Same seed, same run — the harness's core guarantee.
    second = run_chaos_scenario(
        seed=42,
        n_inrs=6,
        n_services=4,
        chaos_duration=30.0,
        crash_fraction=0.3,
        flap_fraction=0.2,
        dsr_failover=True,
        link_fault_fraction=0.2,
    )
    assert first.fingerprint() == second.fingerprint()

    # Smoke budget: both runs well under five wall-clock seconds.
    assert time.perf_counter() - started < 5.0
