"""DTN smoke: the acceptance scenario for disruption tolerance.

Tiny-scale version of the DTN chaos benchmark: one client streams
anycast payloads at a service whose resolver suffers duty-cycled links
and then a partition outlasting every soft-state clock, once with the
custody store enabled and once with the paper's drop behavior. Custody
must strictly raise the delivery ratio, the post-heal invariants
(including custody-drained) must hold in both runs, every custodied
payload must stay attributable, the ``BENCH_dtn.json`` artifact must
round-trip, and the whole thing must be bit-reproducible from its
seed.
"""

import json

from repro.chaos import run_dtn_scenario, run_dtn_sweep, write_bench_dtn_json

SCALE = dict(
    seed=7,
    disruption=8.0,
    duty_window=8.0,
    send_interval=0.5,
)


def test_dtn_scenario_delivery_and_reproducibility(tmp_path):
    on = run_dtn_scenario(custody=True, **SCALE)
    off = run_dtn_scenario(custody=False, **SCALE)

    # Chaos actually happened: duty cycles plus the partition/heal pair.
    assert on.faults_applied >= 4
    for kind in ("link-down", "link-up", "partition", "heal"):
        assert kind in on.fault_kinds

    # Both runs saw the same traffic and the same faults.
    assert on.messages_sent == off.messages_sent > 0
    assert on.fault_kinds == off.fault_kinds

    # The acceptance bar: custody strictly raises the delivery ratio...
    assert on.delivery_ratio > off.delivery_ratio
    assert on.delivery_ratio >= 0.7
    # ...the custody machinery actually ran...
    assert on.custody_accepted > 0
    assert on.custody_released > 0
    assert off.custody_accepted == 0
    # ...every payload taken into custody is accounted for: released,
    # lapsed, or evicted — nothing vanishes...
    assert on.custody_accepted == (
        on.custody_released
        + on.drops_custody_expired
        + on.drops_custody_evicted
    )
    # ...and after the heal plus the convergence bound, the post-heal
    # invariants — custody-drained among them — hold in both runs.
    assert on.converged_violations == ()
    assert off.converged_violations == ()

    # Payloads that waited out the partition dominate the latency tail;
    # the baseline only delivers what never had to wait.
    assert on.latency_max > off.latency_max

    # The satellite fix: the graced expiry readmitted the partitioned
    # service's post-heal refresh as a fast path, and it was counted.
    assert on.expiry_grace_readmissions > 0

    # Bit-reproducibility: same seed, same parameters, same run.
    again = run_dtn_scenario(custody=True, **SCALE)
    assert again.fingerprint() == on.fingerprint()


def test_bench_dtn_artifact_schema(tmp_path):
    rows = run_dtn_sweep(
        seed=3,
        disruptions=(6.0,),
        duty_window=6.0,
        send_interval=0.5,
        observe_first=True,
    )
    path = tmp_path / "BENCH_dtn.json"
    payload = write_bench_dtn_json(path, rows)

    on_disk = json.loads(path.read_text())
    # JSON rendering turns tuples into lists; normalize before comparing.
    assert on_disk == json.loads(json.dumps(payload))
    assert on_disk["benchmark"] == "dtn-chaos"
    assert on_disk["schema_version"] == 1
    (row,) = on_disk["rows"]
    assert row["delivery_ratio_delta"] > 0
    for key in ("custody_on", "custody_off"):
        report = row[key]
        assert report["messages_sent"] > 0
        assert report["converged_violations"] == []
        for field in (
            "delivery_ratio",
            "latency_p50",
            "custody_accepted",
            "drops_custody_expired",
            "drops_custody_evicted",
            "drops_custody_transfer_failed",
            "expiry_grace_readmissions",
        ):
            assert field in report
    # The observed run contributed span-backed drop attribution.
    assert "observability" in on_disk
    (observed,) = on_disk["observability"].values()
    assert observed
