"""The grand tour: every major subsystem in one scenario.

A domain with a replicated DSR, two virtual spaces, reliable-delta
updates, all four applications, mobility, a resolver crash and a
partition — asserting at each stage that the INS abstractions keep
holding. If this test passes, the pieces compose.
"""

import pytest

from repro.apps import (
    CameraReceiver,
    CameraTransmitter,
    DeviceController,
    FloorplanApp,
    Locator,
    PrinterClient,
    PrinterSpooler,
    RemoteControl,
)
from repro.client import MobilityManager
from repro.experiments import InsDomain
from repro.naming import NameSpecifier
from repro.resolver import InrConfig

from ..conftest import parse


@pytest.fixture(scope="module")
def tour():
    config = InrConfig(
        refresh_interval=3.0,
        record_lifetime=9.0,
        update_mode="reliable-delta",
    )
    domain = InsDomain(seed=999, config=config)
    domain.add_dsr_replica(address="dsr-2")
    inr_a = domain.add_inr(address="inr-a", vspaces=("default", "building"))
    inr_b = domain.add_inr(address="inr-b", vspaces=("default",))

    def app(cls, host, resolver, **kwargs):
        node = domain.network.add_node(host)
        instance = cls(node, domain.ports.allocate(),
                       resolver=resolver.address, dsr_address="dsr-host",
                       refresh_interval=3.0, lifetime=9.0, **kwargs)
        instance.start()
        return instance

    locator = app(Locator, "h-loc", inr_a)
    locator.add_map("floor-5", "MAP-5")
    camera = app(CameraTransmitter, "h-cam", inr_a, camera_id="a",
                 room="510", cache_lifetime=30)
    viewer = app(CameraReceiver, "h-view", inr_b, receiver_id="r1",
                 room="510")
    printer = app(PrinterSpooler, "h-prn", inr_b, printer_id="lw1",
                  room="510")
    tv = app(DeviceController, "h-tv", inr_a, kind="tv", device_id="tv1",
             room="510")
    remote = app(RemoteControl, "h-rem", inr_b, user="dana")
    user = app(FloorplanApp, "h-tab", inr_b, user="dana", region="floor-5")
    alice = app(PrinterClient, "h-alice", inr_a, user="alice")
    domain.run(3.0)
    return domain, (inr_a, inr_b), {
        "locator": locator, "camera": camera, "viewer": viewer,
        "printer": printer, "tv": tv, "remote": remote, "user": user,
        "alice": alice,
    }


class TestGrandTour:
    def test_01_floorplan_sees_the_whole_building(self, tour):
        domain, inrs, apps = tour
        apps["user"].move_to_region("floor-5")
        domain.run(1.0)
        assert apps["user"].map_data == "MAP-5"
        labels = apps["user"].visible_services()
        for expected in ("camera/transmitter@510", "printer/spooler@510",
                         "controller/tv@510", "locator/server@?"):
            assert expected in labels

    def test_02_request_response_and_caching(self, tour):
        domain, (inr_a, inr_b), apps = tour
        reply = apps["viewer"].request_frame()
        domain.run(1.0)
        assert "frame" in reply.value
        for i in range(3):
            domain.sim.schedule(i * 0.5, apps["viewer"].request_frame,
                                None, True)
        served_before = apps["camera"].requests_served
        domain.run(3.0)
        cache_hits = (inr_a.stats.packets_answered_from_cache
                      + inr_b.stats.packets_answered_from_cache)
        assert cache_hits >= 2
        assert apps["camera"].requests_served - served_before <= 1

    def test_03_printing_and_device_control(self, tour):
        domain, inrs, apps = tour
        job = apps["alice"].submit_best("510", size=50)
        domain.run(1.0)
        assert job.value["ok"]
        power = apps["remote"].power(
            parse("[service=controller[entity=tv]][room=510]"), on=True
        )
        domain.run(1.0)
        assert power.value["powered"]

    def test_04_mobility_mid_session(self, tour):
        domain, inrs, apps = tour
        MobilityManager(apps["camera"].node).migrate("cam-roamed")
        domain.run(1.0)
        reply = apps["viewer"].request_frame()
        domain.run(1.0)
        assert "frame" in reply.value

    def test_05_resolver_crash_heals(self, tour):
        domain, (inr_a, inr_b), apps = tour
        inr_b.crash()
        for name in ("viewer", "printer", "remote", "user", "alice"):
            apps[name].reattach()
        domain.run(90.0)  # re-attachment, expiry, re-advertisement
        reply = apps["viewer"].request_frame()
        domain.run(1.0)
        assert reply.done and "frame" in reply.value

    def test_06_partition_and_heal(self, tour):
        domain, (inr_a, inr_b), apps = tour
        side_a = [node.address for node in domain.network.nodes
                  if node.address not in ("h-alice",)]
        domain.network.partition(side_a, ["h-alice"])
        domain.run(10.0)
        domain.network.heal(side_a, ["h-alice"])
        domain.run(5.0)
        job = apps["alice"].submit_best("510", size=10)
        domain.run(2.0)
        assert job.done and job.value["ok"]

    def test_07_names_consistent_across_survivors(self, tour):
        domain, (inr_a, inr_b), apps = tour
        reply = apps["user"].discover(NameSpecifier())
        domain.run(1.0)
        wires = {name.to_wire() for name, _ in reply.value}
        assert any("service=camera" in w and "entity=transmitter" in w
                   for w in wires)
        assert any("service=printer" in w for w in wires)
