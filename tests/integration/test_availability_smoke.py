"""Availability smoke: the acceptance scenario for request resilience.

Tiny-scale version of the availability chaos benchmark: steady client
lookup traffic through one seeded fault plan (INR crash+restart, a mesh
partition, lossy links, CPU overload), once with the resilience layer
on and once off. The resilient run must achieve a strictly higher
success rate, leave zero Reply objects permanently hanging, emit the
``BENCH_availability.json`` artifact, and be bit-reproducible from its
seed.
"""

import json
import math
import time

from repro.chaos import run_availability_scenario, write_bench_availability_json

SCALE = dict(
    seed=7,
    n_inrs=4,
    n_services=3,
    n_clients=3,
    duration=20.0,
)


def test_availability_scenario_resilience_and_reproducibility(tmp_path):
    started = time.perf_counter()
    resilient = run_availability_scenario(resilience=True, **SCALE)
    bare = run_availability_scenario(resilience=False, **SCALE)

    # Chaos actually happened, over the full fault vocabulary.
    assert resilient.faults_applied >= 5
    for kind in ("crash-inr", "restart-inr", "partition", "link-faults",
                 "cpu-degrade"):
        assert kind in resilient.fault_kinds

    # Both runs saw the same traffic and the same faults.
    assert resilient.requests_attempted == bare.requests_attempted > 0
    assert resilient.fault_kinds == bare.fault_kinds

    # The acceptance bar: resilience strictly raises the success rate...
    assert resilient.success_rate > bare.success_rate
    assert resilient.success_rate >= 0.75
    # ...the retry machinery actually ran...
    assert resilient.retries > 0
    assert resilient.failovers > 0
    # ...and no Reply was left permanently pending, while the
    # fire-and-forget baseline hangs under loss (the bug being fixed).
    assert resilient.requests_hung == 0
    assert bare.requests_hung > 0
    assert bare.retries == bare.failovers == 0

    # Latency percentiles are well-formed: the resilient tail is longer
    # because retried requests succeed late instead of never.
    assert math.isfinite(resilient.latency_p99)
    assert resilient.latency_p99 >= resilient.latency_p50 > 0

    # Every recovery the tracker watched completed in finite time.
    for kind, stats in resilient.mttr.items():
        assert stats["unrecovered"] == 0.0, kind
        assert math.isfinite(stats["p100"]), kind

    # The artifact is emitted and carries the comparison.
    path = tmp_path / "BENCH_availability.json"
    payload = write_bench_availability_json(path, resilient, bare)
    on_disk = json.loads(path.read_text())
    assert on_disk == json.loads(json.dumps(payload))
    assert on_disk["benchmark"] == "availability-chaos"
    assert on_disk["resilience_on"]["success_rate"] >= 0.75
    assert on_disk["resilience_on"]["requests_hung"] == 0
    assert on_disk["success_rate_delta"] > 0

    # Same seed, same run — determinism extends to the new scenario.
    replay = run_availability_scenario(resilience=True, **SCALE)
    assert replay.fingerprint() == resilient.fingerprint()

    # Smoke budget: all three runs well under five wall-clock seconds.
    assert time.perf_counter() - started < 5.0
