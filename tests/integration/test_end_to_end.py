"""Whole-system integration tests across all layers."""

import pytest

from repro.experiments import InsDomain
from repro.naming import NameSpecifier
from repro.resolver import InrConfig

from ..conftest import parse


class TestFullDomain:
    """A domain with several INRs and mixed applications."""

    @pytest.fixture
    def world(self):
        domain = InsDomain(seed=200)
        inrs = [domain.add_inr() for _ in range(4)]
        services = {}
        for index, inr in enumerate(inrs):
            service = domain.add_service(
                f"[service=sensor[entity=node][id=s{index}]]"
                f"[building=ne43[floor={index % 2}]]",
                resolver=inr, metric=float(index),
            )
            services[f"s{index}"] = service
        domain.run(3.0)
        return domain, inrs, services

    def test_every_inr_knows_every_name(self, world):
        domain, inrs, services = world
        for inr in inrs:
            assert inr.name_count() == 4

    def test_anycast_finds_global_minimum_from_any_inr(self, world):
        domain, inrs, services = world
        received = []
        for sid, service in services.items():
            service.on_message(lambda m, s, sid=sid: received.append(sid))
        for inr in inrs:
            client = domain.add_client(resolver=inr)
            client.send_anycast(parse("[service=sensor]"), b"x")
            domain.run(1.0)
        assert received == ["s0"] * 4  # metric 0 is the global best

    def test_multicast_covers_the_whole_group_from_any_inr(self, world):
        domain, inrs, services = world
        received = []
        for sid, service in services.items():
            service.on_message(lambda m, s, sid=sid: received.append(sid))
        client = domain.add_client(resolver=inrs[-1])
        client.send_multicast(parse("[building=ne43]"), b"all")
        domain.run(1.0)
        assert sorted(received) == ["s0", "s1", "s2", "s3"]

    def test_hierarchical_narrowing(self, world):
        domain, inrs, services = world
        client = domain.add_client(resolver=inrs[0])
        reply = client.discover(parse("[building=ne43[floor=1]]"))
        domain.run(1.0)
        found = {name.root("service").child("id").value
                 for name, _ in reply.value}
        assert found == {"s1", "s3"}

    def test_resolution_consistent_across_resolvers(self, world):
        domain, inrs, services = world
        replies = []
        for inr in inrs:
            client = domain.add_client(resolver=inr)
            replies.append(client.resolve_early(parse("[service=sensor]")))
        domain.run(1.0)
        endpoint_sets = [
            {str(e) for e, _ in reply.value} for reply in replies
        ]
        assert all(s == endpoint_sets[0] for s in endpoint_sets)
        assert len(endpoint_sets[0]) == 4


class TestDynamicWorld:
    def test_churn(self):
        """Services arriving and leaving; the system converges to the
        live set everywhere."""
        domain = InsDomain(
            seed=201, config=InrConfig(refresh_interval=2.0, record_lifetime=6.0)
        )
        a = domain.add_inr()
        b = domain.add_inr()
        stable = domain.add_service("[service=churn[id=stable]]", resolver=a,
                                    refresh_interval=2.0, lifetime=6.0)
        doomed = [
            domain.add_service(f"[service=churn[id=doomed{i}]]", resolver=b,
                               refresh_interval=2.0, lifetime=6.0)
            for i in range(3)
        ]
        domain.run(3.0)
        assert a.name_count() == 4
        for service in doomed:
            service.stop()
        late = domain.add_service("[service=churn[id=late]]", resolver=b,
                                  refresh_interval=2.0, lifetime=6.0)
        domain.run(20.0)
        for inr in (a, b):
            names = {name.root("service").child("id").value
                     for name, _ in inr.trees["default"].names()}
            assert names == {"stable", "late"}

    def test_late_binding_vs_early_binding_under_change(self):
        """The paper's core claim: late binding keeps working across a
        location change that invalidates an early-bound address."""
        domain = InsDomain(
            seed=202, config=InrConfig(refresh_interval=2.0, record_lifetime=6.0)
        )
        inr = domain.add_inr()
        service = domain.add_service("[service=mv[id=1]]", resolver=inr,
                                     refresh_interval=2.0, lifetime=6.0)
        inbox = []
        service.on_message(lambda m, s: inbox.append(m.data))
        client = domain.add_client(resolver=inr)
        domain.run(1.0)
        early = client.resolve_early(parse("[service=mv]"))
        domain.run(0.5)
        [(old_endpoint, _)] = early.value

        from repro.client import MobilityManager

        MobilityManager(service.node).migrate("moved-away")
        domain.run(1.0)
        # Early binding's cached address is now dead...
        client.send(old_endpoint.host, old_endpoint.port, b"to-old-address")
        # ...but intentional anycast still reaches the service.
        client.send_anycast(parse("[service=mv]"), b"via-late-binding")
        domain.run(1.0)
        assert inbox == [b"via-late-binding"]
        assert domain.network.undeliverable >= 1


class TestScaleSmoke:
    def test_hundred_services_three_inrs(self):
        domain = InsDomain(seed=203)
        inrs = [domain.add_inr() for _ in range(3)]
        for i in range(100):
            domain.add_service(
                f"[service=fleet[entity=node][id=n{i:03d}]][rack=r{i % 10}]",
                resolver=inrs[i % 3], metric=float(i),
            )
        domain.run(5.0)
        for inr in inrs:
            assert inr.name_count() == 100
        client = domain.add_client(resolver=inrs[0])
        reply = client.discover(parse("[rack=r7]"))
        domain.run(1.0)
        assert len(reply.value) == 10
