"""Every shipped example must run to completion.

Examples are documentation that executes; a broken example is a broken
README. Each is run in-process via runpy for speed.
"""

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "printer_pool.py",
    "camera_network.py",
    "floorplan_tour.py",
    "mobility_handoff.py",
    "vspace_partitioning.py",
    "load_balancing.py",
    "reliable_updates.py",
    "figures_preview.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_quickstart_shows_all_services(capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "quickstart.py"))
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert "early binding:" in output
    assert "discovered names:" in output
    assert "[service=printer[entity=spooler][id=lw1]][room=517]" in output


def test_mobility_handoff_never_loses_the_service(capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "mobility_handoff.py"))
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert "NOBODY" not in output


def test_module_demo_runs(capsys):
    """`python -m repro` — the guided demo — must run to completion."""
    import repro.__main__ as demo

    demo.main()
    output = capsys.readouterr().out
    assert "self-configured" in output
    assert "operator view" in output
    assert "name-tree vspace='default'" in output


def test_readme_quickstart_executes(capsys):
    """The README's quickstart code block must run verbatim."""
    import re

    readme_path = os.path.abspath(
        os.path.join(EXAMPLES_DIR, "..", "README.md")
    )
    readme = open(readme_path).read()
    block = re.search(r"## Quickstart\n\n```python\n(.*?)```", readme, re.S)
    assert block is not None, "README lost its quickstart block"
    exec(block.group(1), {})
    output = capsys.readouterr().out
    assert "udp://" in output  # the early-binding loop printed endpoints
