"""Network-partition tests: INS heals when connectivity returns."""

import pytest

from repro.experiments import DSR_HOST, InsDomain
from repro.resolver import InrConfig

from ..conftest import parse


@pytest.fixture
def split_world():
    """Two INRs with a service on each, then a partition between the
    INR sides (the DSR stays reachable from side A only)."""
    domain = InsDomain(
        seed=400, config=InrConfig(refresh_interval=2.0, record_lifetime=6.0)
    )
    a = domain.add_inr(address="inr-a")
    b = domain.add_inr(address="inr-b")
    svc_a = domain.add_service("[service=side[id=a]]", address="host-a",
                               resolver=a, refresh_interval=2.0, lifetime=6.0)
    svc_b = domain.add_service("[service=side[id=b]]", address="host-b",
                               resolver=b, refresh_interval=2.0, lifetime=6.0)
    domain.run(2.0)
    return domain, a, b, svc_a, svc_b


class TestPartitionBehaviour:
    def test_remote_names_expire_during_partition(self, split_world):
        domain, a, b, svc_a, svc_b = split_world
        assert a.name_count() == 2
        side_a = ("inr-a", "host-a")
        side_b = ("inr-b", "host-b")
        domain.network.partition(side_a, side_b)
        domain.run(20.0)
        # Each side keeps its own service, loses the other's.
        a_names = {n.root("service").child("id").value
                   for n, _ in a.trees["default"].names()}
        b_names = {n.root("service").child("id").value
                   for n, _ in b.trees["default"].names()}
        assert a_names == {"a"}
        assert b_names == {"b"}

    def test_local_resolution_keeps_working_during_partition(self, split_world):
        domain, a, b, svc_a, svc_b = split_world
        domain.network.partition(("inr-a", "host-a"), ("inr-b", "host-b"))
        domain.run(20.0)
        client = domain.add_client(address="client-a", resolver=a)
        inbox = []
        svc_a.on_message(lambda m, s: inbox.append(m.data))
        client.send_anycast(parse("[service=side]"), b"local-only")
        domain.run(1.0)
        assert inbox == [b"local-only"]

    def test_names_reconverge_after_heal(self, split_world):
        domain, a, b, svc_a, svc_b = split_world
        side_a = ("inr-a", "host-a", DSR_HOST)
        side_b = ("inr-b", "host-b")
        domain.network.partition(side_a, side_b)
        domain.run(60.0)  # long enough for peerings to time out too
        domain.network.heal(side_a, side_b)
        domain.run(60.0)  # rejoin + refresh rounds
        assert a.name_count() == 2
        assert b.name_count() == 2

    def test_cross_side_delivery_resumes_after_heal(self, split_world):
        domain, a, b, svc_a, svc_b = split_world
        side_a = ("inr-a", "host-a", DSR_HOST)
        side_b = ("inr-b", "host-b")
        domain.network.partition(side_a, side_b)
        domain.run(60.0)
        domain.network.heal(side_a, side_b)
        domain.run(60.0)
        client = domain.add_client(address="client-a", resolver=a)
        inbox = []
        svc_b.on_message(lambda m, s: inbox.append(m.data))
        client.send_anycast(parse("[service=side[id=b]]"), b"hello-again")
        domain.run(2.0)
        assert inbox == [b"hello-again"]


class TestLinkFlap:
    def test_link_down_counts_drops(self):
        domain = InsDomain(seed=401)
        a = domain.add_inr(address="inr-a")
        link = domain.network.link("inr-a", "client-x")
        client = domain.add_client(address="client-x", resolver=a)
        link.up = False
        client.resolve_early(parse("[service=any]"))
        domain.run(1.0)
        assert link.stats.drops >= 1
        link.up = True
        reply = client.resolve_early(parse("[service=any]"))
        domain.run(1.0)
        assert reply.done  # empty result, but the round trip worked
