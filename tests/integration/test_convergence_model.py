"""Model-based convergence testing.

Hypothesis drives random operation sequences — start/stop services,
rename them, change metrics, crash resolvers — against a live domain,
then lets the protocols quiesce and checks the system against a trivial
model: every surviving resolver's view equals the set of services that
are still alive and attached to a live resolver.

This is the strongest statement the paper makes about robustness
("inconsistencies ... are healed by soft state") turned into an
executable property.
"""

from hypothesis import given, settings, strategies as st

from repro.experiments import InsDomain
from repro.naming import NameSpecifier
from repro.resolver import InrConfig


class Operation:
    START, STOP, RENAME, METRIC, CRASH_INR = range(5)


@st.composite
def operation_scripts(draw):
    length = draw(st.integers(min_value=1, max_value=12))
    return [
        (
            draw(st.integers(min_value=0, max_value=4)),  # op kind
            draw(st.integers(min_value=0, max_value=5)),  # subject index
            draw(st.integers(min_value=0, max_value=99)),  # parameter
        )
        for _ in range(length)
    ]


@given(script=operation_scripts(), seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=40, deadline=None)
def test_every_live_resolver_converges_to_the_live_service_set(script, seed):
    config = InrConfig(refresh_interval=2.0, record_lifetime=6.0)
    domain = InsDomain(seed=seed, config=config)
    inrs = [domain.add_inr(address=f"inr-{i}") for i in range(3)]
    crashed = set()
    services = {}  # sid -> (service, alive)
    next_sid = 0
    domain.run(1.0)

    for kind, subject, parameter in script:
        kind = kind % 5
        if kind == Operation.START:
            resolver = inrs[subject % len(inrs)]
            if resolver.address in crashed:
                continue  # a service would not attach to a dead INR
            sid = f"s{next_sid}"
            next_sid += 1
            service = domain.add_service(
                f"[service=conv[id={sid}]][tag=t{parameter % 3}]",
                resolver=resolver, refresh_interval=2.0, lifetime=6.0,
            )
            services[sid] = service
        elif kind == Operation.STOP and services:
            sid = sorted(services)[subject % len(services)]
            services.pop(sid).stop()
        elif kind == Operation.RENAME and services:
            sid = sorted(services)[subject % len(services)]
            services[sid].rename(NameSpecifier.parse(
                f"[service=conv[id={sid}]][tag=t{parameter % 3}]"
            ))
        elif kind == Operation.METRIC and services:
            sid = sorted(services)[subject % len(services)]
            services[sid].set_metric(float(parameter))
        elif kind == Operation.CRASH_INR and len(crashed) < len(inrs) - 1:
            victim = inrs[subject % len(inrs)]
            if victim.address in crashed:
                continue
            crashed.add(victim.address)
            victim.crash()
            # services attached to it die with their resolver (they
            # would need reattachment, which this model does not do)
            for sid in [s for s, svc in services.items()
                        if svc.resolver == victim.address]:
                services.pop(sid).stop()
        domain.run(0.5)

    # Let soft state quiesce: neighbor timeouts, re-joins, expiry
    # cascades (one lifetime per overlay hop), refresh rounds.
    domain.run(120.0)

    expected = set(services)
    for inr in inrs:
        if inr.address in crashed:
            continue
        found = {
            name.root("service").child("id").value
            for name, _ in inr.trees["default"].names()
        }
        assert found == expected, (
            f"{inr.address} sees {sorted(found)}, expected {sorted(expected)}"
        )
