"""Tests for the Section 5.1.1 analytic lookup model."""

import pytest

from repro.analysis import (
    fit_parameters,
    linear_search_time,
    lookup_time_closed_form,
    lookup_time_recurrence,
    relative_error,
)


class TestRecurrence:
    def test_base_case(self):
        assert lookup_time_recurrence(0, 2, 1.0, 5.0) == 5.0

    def test_one_level(self):
        # T(1) = n_a (t + b)
        assert lookup_time_recurrence(1, 2, 1.0, 5.0) == 12.0

    @pytest.mark.parametrize("d", range(0, 6))
    @pytest.mark.parametrize("n_a", [1, 2, 3])
    def test_closed_form_equals_recurrence(self, d, n_a):
        t, b = 0.7, 2.3
        assert lookup_time_closed_form(d, n_a, t, b) == pytest.approx(
            lookup_time_recurrence(d, n_a, t, b)
        )

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            lookup_time_recurrence(-1, 2, 1.0, 1.0)
        with pytest.raises(ValueError):
            lookup_time_closed_form(-1, 2, 1.0, 1.0)

    def test_growth_is_exponential_in_depth(self):
        shallow = lookup_time_closed_form(2, 2, 1.0, 1.0)
        deep = lookup_time_closed_form(4, 2, 1.0, 1.0)
        assert deep / shallow > 3.0  # ~n_a^2


class TestLinearSearch:
    def test_linear_search_slower_than_hash(self):
        """The paper's point: hashing makes t constant instead of
        proportional to r_a + r_v."""
        hash_time = lookup_time_closed_form(3, 2, 1.0, 1.0)
        linear_time = linear_search_time(3, 2, r_a=5, r_v=5, per_comparison=1.0, b=1.0)
        assert linear_time > hash_time

    def test_linear_search_scales_with_ranges(self):
        small = linear_search_time(2, 2, 3, 3, 1.0, 1.0)
        large = linear_search_time(2, 2, 30, 30, 1.0, 1.0)
        assert large > small


class TestFitting:
    def test_exact_data_recovers_parameters(self):
        t_true, b_true = 0.4, 1.9
        observations = [
            (d, 2, lookup_time_closed_form(d, 2, t_true, b_true))
            for d in (1, 2, 3, 4)
        ]
        fit = fit_parameters(observations)
        assert fit.t == pytest.approx(t_true, rel=1e-6)
        assert fit.b == pytest.approx(b_true, rel=1e-6)
        assert fit.residual == pytest.approx(0.0, abs=1e-9)

    def test_noisy_data_still_predicts_well(self):
        """The t and b columns are nearly collinear (both ~ n_a^d), so
        individual parameters are ill-conditioned under noise — but the
        *predictions* stay accurate, which is what the model check in
        the ablation benchmark relies on."""
        t_true, b_true = 0.4, 1.9
        observations = []
        for index, d in enumerate((1, 2, 3, 4, 5)):
            noise = 1.0 + (0.05 if index % 2 else -0.05)
            observations.append(
                (d, 2, lookup_time_closed_form(d, 2, t_true, b_true) * noise)
            )
        fit = fit_parameters(observations)
        for d in (1, 2, 3, 4, 5):
            assert fit.predict(d, 2) == pytest.approx(
                lookup_time_closed_form(d, 2, t_true, b_true), rel=0.2
            )

    def test_too_few_observations_rejected(self):
        with pytest.raises(ValueError):
            fit_parameters([(1, 2, 1.0)])


class TestRelativeError:
    def test_basic(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_zero_measured(self):
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == float("inf")
