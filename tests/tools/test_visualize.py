"""Tests for the visualization tooling."""

from repro.experiments import InsDomain
from repro.nametree import NameTree
from repro.tools import (
    domain_report,
    render_name_tree,
    render_overlay,
    resolver_report,
)

from ..conftest import OVAL_OFFICE_CAMERA, make_record, parse


class TestNameTreeRendering:
    def test_empty_tree(self):
        text = render_name_tree(NameTree(vspace="cams"))
        assert "vspace='cams'" in text
        assert "records=0" in text

    def test_alternating_layers_shown(self):
        tree = NameTree()
        tree.insert(parse("[service=camera[entity=transmitter]]"), make_record())
        text = render_name_tree(tree)
        assert "service:" in text
        assert "= camera" in text
        assert "entity:" in text
        assert "= transmitter  (1 record)" in text

    def test_figure_4_style_tree(self):
        tree = NameTree()
        tree.insert(parse(OVAL_OFFICE_CAMERA), make_record("a"))
        tree.insert(parse("[city=rome][service=camera[data-type=movie]]"),
                    make_record("b"))
        text = render_name_tree(tree)
        assert "= washington" in text
        assert "= rome" in text
        assert text.index("city:") < text.index("= rome")

    def test_rendering_is_deterministic(self):
        def build():
            tree = NameTree()
            tree.insert(parse("[b=2]"), make_record("x"))
            tree.insert(parse("[a=1]"), make_record("y"))
            return render_name_tree(tree)

        assert build() == build()

    def test_depth_limit(self):
        tree = NameTree()
        tree.insert(parse("[a=1[b=2[c=3[d=4]]]]"), make_record())
        text = render_name_tree(tree, max_depth=1)
        assert "..." in text


class TestOverlayRendering:
    def test_tree_shape_shown(self):
        domain = InsDomain(seed=300)
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        text = render_overlay(domain)
        assert "2 INRs" in text
        assert "inr-a" in text
        assert "inr-b" in text
        # the child is indented under its parent
        assert text.index("inr-a") < text.index("inr-b")

    def test_terminated_inrs_omitted(self):
        domain = InsDomain(seed=301)
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        b.terminate()
        domain.run(1.0)
        assert "inr-b" not in render_overlay(domain)


class TestReports:
    def test_resolver_report_fields(self):
        domain = InsDomain(seed=302)
        inr = domain.add_inr(address="inr-a")
        domain.add_service("[service=x[id=1]]", resolver=inr)
        domain.run(1.0)
        text = resolver_report(inr)
        assert "INR inr-a (active)" in text
        assert "names: 1" in text
        assert "cache:" in text

    def test_domain_report_includes_everything(self):
        domain = InsDomain(seed=303)
        domain.add_inr(address="inr-a")
        domain.add_inr(address="inr-b")
        text = domain_report(domain)
        assert "2 active INRs" in text
        assert "INR inr-a" in text
        assert "INR inr-b" in text


class TestRouteTable:
    def test_local_and_remote_routes_rendered(self):
        from repro.tools import render_route_table

        domain = InsDomain(seed=304)
        a = domain.add_inr(address="inr-a")
        b = domain.add_inr(address="inr-b")
        domain.add_service("[service=x[id=local]]", resolver=a, metric=2.5)
        domain.add_service("[service=x[id=remote]]", resolver=b)
        domain.run(1.0)
        text = render_route_table(a)
        assert "[service=x[id=local]]" in text
        assert "via <local>" in text
        assert "via inr-b" in text
        assert "anycast-metric=2.5" in text

    def test_empty_vspace_rendered(self):
        from repro.tools import render_route_table

        domain = InsDomain(seed=305)
        a = domain.add_inr(vspaces=("empty-space",))
        text = render_route_table(a)
        assert "(empty)" in text
