"""Tests for the protocol tracer."""

import pytest

from repro.experiments import InsDomain
from repro.tools import ProtocolTrace

from ..conftest import parse


@pytest.fixture
def traced_domain():
    domain = InsDomain(seed=310)
    trace = ProtocolTrace(keep_payloads=True).attach(domain.network)
    inr = domain.add_inr()
    service = domain.add_service("[service=x[id=1]]", resolver=inr)
    client = domain.add_client(resolver=inr)
    domain.run(1.0)
    return domain, trace, inr, service, client


class TestTracing:
    def test_advertisements_are_observed(self, traced_domain):
        domain, trace, inr, service, client = traced_domain
        assert trace.count("Advertisement") >= 1

    def test_data_path_observed(self, traced_domain):
        domain, trace, inr, service, client = traced_domain
        before = trace.count("DataPacket")
        client.send_anycast(parse("[service=x]"), b"payload")
        domain.run(1.0)
        # client -> INR plus INR -> service tunnel
        assert trace.count("DataPacket") == before + 2

    def test_between_filters_endpoints(self, traced_domain):
        domain, trace, inr, service, client = traced_domain
        client.send_anycast(parse("[service=x]"), b"payload")
        domain.run(1.0)
        hops = trace.between(client.address, inr.address)
        assert any(event.kind == "DataPacket" for event in hops)

    def test_payload_retention_switch(self):
        domain = InsDomain(seed=311)
        trace = ProtocolTrace(keep_payloads=False).attach(domain.network)
        domain.add_inr()
        assert all(event.payload is None for event in trace.events)

    def test_since_filters_by_time(self, traced_domain):
        domain, trace, inr, service, client = traced_domain
        cutoff = domain.now
        client.send_anycast(parse("[service=x]"), b"p")
        domain.run(1.0)
        assert all(event.time >= cutoff for event in trace.since(cutoff))

    def test_total_bytes_accumulates(self, traced_domain):
        domain, trace, inr, service, client = traced_domain
        assert trace.total_bytes() > 0
        assert trace.total_bytes("Advertisement") > 0

    def test_detach_restores_send(self):
        domain = InsDomain(seed=312)
        trace = ProtocolTrace().attach(domain.network)
        trace.detach()
        count = trace.count()
        domain.add_inr()
        assert trace.count() == count  # no longer recording

    def test_double_attach_rejected(self):
        domain = InsDomain(seed=313)
        trace = ProtocolTrace().attach(domain.network)
        with pytest.raises(RuntimeError):
            trace.attach(domain.network)

    def test_render_shows_events(self, traced_domain):
        domain, trace, inr, service, client = traced_domain
        text = trace.render(limit=5)
        assert "->" in text

    def test_capacity_bounds_memory(self):
        domain = InsDomain(seed=314)
        trace = ProtocolTrace(capacity=3).attach(domain.network)
        domain.add_inr()
        domain.run(5.0)
        assert len(trace.events) == 3
