"""Tests for the protocol tracer."""

import pytest

from repro.experiments import InsDomain
from repro.tools import ProtocolTrace, TraceOverflow

from ..conftest import parse


@pytest.fixture
def traced_domain():
    domain = InsDomain(seed=310)
    trace = ProtocolTrace(keep_payloads=True).attach(domain.network)
    inr = domain.add_inr()
    service = domain.add_service("[service=x[id=1]]", resolver=inr)
    client = domain.add_client(resolver=inr)
    domain.run(1.0)
    return domain, trace, inr, service, client


class TestTracing:
    def test_advertisements_are_observed(self, traced_domain):
        domain, trace, inr, service, client = traced_domain
        assert trace.count("Advertisement") >= 1

    def test_data_path_observed(self, traced_domain):
        domain, trace, inr, service, client = traced_domain
        before = trace.count("DataPacket")
        client.send_anycast(parse("[service=x]"), b"payload")
        domain.run(1.0)
        # client -> INR plus INR -> service tunnel
        assert trace.count("DataPacket") == before + 2

    def test_between_filters_endpoints(self, traced_domain):
        domain, trace, inr, service, client = traced_domain
        client.send_anycast(parse("[service=x]"), b"payload")
        domain.run(1.0)
        hops = trace.between(client.address, inr.address)
        assert any(event.kind == "DataPacket" for event in hops)

    def test_payload_retention_switch(self):
        domain = InsDomain(seed=311)
        trace = ProtocolTrace(keep_payloads=False).attach(domain.network)
        domain.add_inr()
        assert all(event.payload is None for event in trace.events)

    def test_since_filters_by_time(self, traced_domain):
        domain, trace, inr, service, client = traced_domain
        cutoff = domain.now
        client.send_anycast(parse("[service=x]"), b"p")
        domain.run(1.0)
        assert all(event.time >= cutoff for event in trace.since(cutoff))

    def test_total_bytes_accumulates(self, traced_domain):
        domain, trace, inr, service, client = traced_domain
        assert trace.total_bytes() > 0
        assert trace.total_bytes("Advertisement") > 0

    def test_detach_restores_send(self):
        domain = InsDomain(seed=312)
        trace = ProtocolTrace().attach(domain.network)
        trace.detach()
        count = trace.count()
        domain.add_inr()
        assert trace.count() == count  # no longer recording

    def test_double_attach_rejected(self):
        domain = InsDomain(seed=313)
        trace = ProtocolTrace().attach(domain.network)
        with pytest.raises(RuntimeError):
            trace.attach(domain.network)

    def test_render_shows_events(self, traced_domain):
        domain, trace, inr, service, client = traced_domain
        text = trace.render(limit=5)
        assert "->" in text

    def test_capacity_bounds_memory(self):
        domain = InsDomain(seed=314)
        trace = ProtocolTrace(capacity=3).attach(domain.network)
        domain.add_inr()
        domain.run(5.0)
        assert len(trace.events) == 3


class TestOverflow:
    """Past capacity the trace counts what it lost and refuses to lie."""

    @pytest.fixture
    def overflowed(self):
        domain = InsDomain(seed=315)
        trace = ProtocolTrace(capacity=3).attach(domain.network)
        domain.add_inr()
        domain.run(5.0)
        assert trace.dropped > 0
        return trace

    def test_dropped_counts_the_overflow(self, overflowed):
        assert len(overflowed.events) == 3
        assert overflowed.dropped > 0

    def test_queries_raise_on_truncated_trace(self, overflowed):
        with pytest.raises(TraceOverflow):
            overflowed.count()
        with pytest.raises(TraceOverflow):
            overflowed.of_kind("DataPacket")
        with pytest.raises(TraceOverflow):
            overflowed.between("a", "b")
        with pytest.raises(TraceOverflow):
            overflowed.since(0.0)
        with pytest.raises(TraceOverflow):
            overflowed.total_bytes()

    def test_allow_dropped_opts_into_truncated_view(self, overflowed):
        assert overflowed.count(allow_dropped=True) == 3
        assert overflowed.total_bytes(allow_dropped=True) > 0

    def test_render_never_raises_and_notes_the_loss(self, overflowed):
        text = overflowed.render()
        assert "overflowed" in text
        assert str(overflowed.dropped) in text

    def test_no_overflow_means_no_raise(self):
        domain = InsDomain(seed=316)
        trace = ProtocolTrace().attach(domain.network)
        domain.add_inr()
        assert trace.dropped == 0
        assert trace.count() > 0
        assert "overflowed" not in trace.render()
