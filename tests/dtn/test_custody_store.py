"""CustodyStore: deterministic FIFO-within-priority eviction, TTL
expiry, release accounting, and the snapshot/adopt transfer pattern."""

import pytest

from repro.dtn import (
    PRIORITY_KNOWN_NAME,
    PRIORITY_UNKNOWN_NAME,
    CustodyStore,
)
from repro.message import InsMessage
from repro.naming import NameSpecifier


def name(index):
    return NameSpecifier.parse(f"[service=custody[id={index}]]")


def raw(index):
    return InsMessage(destination=name(index), data=f"p{index}".encode()).encode()


def accept(store, index, now=0.0, ttl=10.0, priority=PRIORITY_KNOWN_NAME, **kw):
    return store.accept(
        raw(index), name(index), "default", now, ttl=ttl, priority=priority, **kw
    )


class TestAdmission:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            CustodyStore(0)

    def test_accept_under_capacity(self):
        store = CustodyStore(4)
        entry, evicted = accept(store, 1)
        assert entry is not None
        assert evicted == []
        assert entry.sequence == 1
        assert entry.deadline == 10.0
        assert len(store) == 1
        assert store.counts.accepted == 1

    def test_explicit_deadline_overrides_ttl(self):
        """A handoff must not reset the payload's custody clock."""
        store = CustodyStore(4)
        entry, _ = accept(store, 1, now=5.0, ttl=10.0, deadline=7.5)
        assert entry.deadline == 7.5


class TestEvictionOrder:
    def test_fifo_within_priority(self):
        """Same tier: the oldest admission is evicted first."""
        store = CustodyStore(2)
        first, _ = accept(store, 1)
        second, _ = accept(store, 2)
        third, evicted = accept(store, 3)
        assert [e.sequence for e in evicted] == [first.sequence]
        assert store.counts.evicted == 1
        held = [e.sequence for e in store.entries()]
        assert held == [second.sequence, third.sequence]

    def test_lowest_value_tier_evicted_first(self):
        """An unknown-name payload goes before any known-name one,
        regardless of admission order."""
        store = CustodyStore(2)
        known, _ = accept(store, 1, priority=PRIORITY_KNOWN_NAME)
        unknown, _ = accept(store, 2, priority=PRIORITY_UNKNOWN_NAME)
        _, evicted = accept(store, 3, priority=PRIORITY_KNOWN_NAME)
        assert [e.sequence for e in evicted] == [unknown.sequence]
        assert known.sequence in [e.sequence for e in store.entries()]

    def test_arrival_refused_when_store_outranks_it(self):
        """A full store of known-name payloads refuses an unknown-name
        arrival at the door; the refusal still counts as an eviction."""
        store = CustodyStore(1)
        accept(store, 1, priority=PRIORITY_KNOWN_NAME)
        entry, evicted = accept(store, 2, priority=PRIORITY_UNKNOWN_NAME)
        assert entry is None
        assert evicted == []
        assert store.counts.evicted == 1
        assert len(store) == 1

    def test_equal_priority_arrival_is_admitted(self):
        """A tie goes to the newcomer (FIFO: the oldest stored entry of
        the tier is the victim), so fresh payloads keep flowing."""
        store = CustodyStore(1)
        old, _ = accept(store, 1, priority=PRIORITY_UNKNOWN_NAME)
        entry, evicted = accept(store, 2, priority=PRIORITY_UNKNOWN_NAME)
        assert entry is not None
        assert [e.sequence for e in evicted] == [old.sequence]

    def test_eviction_order_is_deterministic(self):
        """Two stores fed the identical admission sequence make the
        identical eviction decisions — the same-seed reproducibility
        the chaos fingerprints rely on."""
        def run():
            store = CustodyStore(3)
            fates = []
            for index in range(10):
                priority = (
                    PRIORITY_UNKNOWN_NAME
                    if index % 3 == 0
                    else PRIORITY_KNOWN_NAME
                )
                entry, evicted = accept(
                    store, index, now=float(index), priority=priority
                )
                fates.append(
                    (
                        entry.sequence if entry else None,
                        tuple(e.sequence for e in evicted),
                    )
                )
            return fates, tuple(e.sequence for e in store.entries())

        assert run() == run()


class TestLifecycle:
    def test_expire_removes_overdue_entries(self):
        store = CustodyStore(4)
        early, _ = accept(store, 1, now=0.0, ttl=5.0)
        late, _ = accept(store, 2, now=0.0, ttl=20.0)
        lapsed = store.expire(10.0)
        assert [e.sequence for e in lapsed] == [early.sequence]
        assert store.counts.expired == 1
        assert [e.sequence for e in store.entries()] == [late.sequence]

    def test_release_removes_once(self):
        store = CustodyStore(4)
        entry, _ = accept(store, 1)
        assert store.release(entry) is True
        assert store.release(entry) is False
        assert store.counts.released == 1
        assert len(store) == 0

    def test_entries_filters_by_vspace(self):
        store = CustodyStore(4)
        store.accept(raw(1), name(1), "alpha", 0.0, ttl=5.0, priority=0)
        store.accept(raw(2), name(2), "beta", 0.0, ttl=5.0, priority=0)
        assert [e.vspace for e in store.entries("alpha")] == ["alpha"]

    def test_drain_empties_the_store(self):
        store = CustodyStore(4)
        accept(store, 1)
        accept(store, 2)
        drained = store.drain()
        assert len(drained) == 2
        assert len(store) == 0

    def test_counts_snapshot_shape(self):
        store = CustodyStore(4)
        accept(store, 1)
        assert store.counts.snapshot() == {
            "accepted": 1,
            "released": 0,
            "expired": 0,
            "evicted": 0,
            "adopted": 0,
        }


class TestSnapshotAdopt:
    def test_adopt_preserves_deadlines(self):
        store = CustodyStore(4)
        accept(store, 1, now=0.0, ttl=10.0)
        successor = CustodyStore(4)
        lapsed, evicted = successor.adopt(store.snapshot(), now=4.0)
        assert lapsed == [] and evicted == []
        (entry,) = successor.entries()
        assert entry.deadline == 10.0
        assert successor.counts.adopted == 1

    def test_adopt_drops_already_lapsed_payloads(self):
        store = CustodyStore(4)
        accept(store, 1, now=0.0, ttl=5.0)
        successor = CustodyStore(4)
        lapsed, _ = successor.adopt(store.snapshot(), now=6.0)
        assert len(lapsed) == 1
        assert lapsed[0].destination == name(1)
        assert successor.counts.expired == 1
        assert len(successor) == 0

    def test_adopt_respects_capacity(self):
        """Adoption re-runs normal admission: a small successor evicts
        (or refuses) exactly as live accepts would, and every refused
        payload is surfaced for drop attribution."""
        store = CustodyStore(4)
        for index in range(3):
            accept(store, index, now=0.0, ttl=10.0)
        successor = CustodyStore(2)
        lapsed, evicted = successor.adopt(store.snapshot(), now=1.0)
        assert lapsed == []
        assert len(evicted) == 1
        assert len(successor) == 2
