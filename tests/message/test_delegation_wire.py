"""Wire tests for the DELEGATE-* handoff codec.

Three families, per the delegation acceptance bar: exact round-trips
for every frame kind (including a multi-record TRANSFER), seeded
mutation fuzz where every corruption either still decodes or raises the
controlled :class:`DelegationWireError` — never an IndexError or
struct.error escaping to the event loop — and byte-identical same-seed
encodings, because the chaos fingerprints hash wire traffic.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.message import (
    DELEGATION_VERSION,
    DelegateAbort,
    DelegateAccept,
    DelegateCommit,
    DelegateOffer,
    DelegateRecord,
    DelegateTransfer,
    DelegationWireError,
    MAX_RECORDS_PER_TRANSFER,
    OFFER_ACCEPTED,
    compose_handoff_id,
    decode_delegation,
)
from repro.naming import NameSpecifier


def _record(index=0):
    return DelegateRecord(
        name=NameSpecifier.parse(
            f"[service=bulk[id=n{index}]][vspace=bulk]"
        ),
        announcer_host=f"host-{index}",
        announcer_startup=12.5 + index,
        endpoints=(("10.0.0.%d" % (index + 1), 5000 + index, "udp"),),
        anycast_metric=0.25 * index,
        route_metric=1.5,
        lifetime=30.0 - index,
    )


def _sample_messages():
    handoff = compose_handoff_id(3, 41)
    return [
        DelegateOffer(sender="inr-donor", handoff_id=handoff,
                      vspace="bulk", total_records=24),
        DelegateAccept(sender="inr-spare", handoff_id=handoff,
                       ack_seq=OFFER_ACCEPTED),
        DelegateAccept(sender="inr-spare", handoff_id=handoff, ack_seq=2),
        DelegateTransfer(sender="inr-donor", handoff_id=handoff,
                         vspace="bulk", seq=1, final=False,
                         records=tuple(_record(i) for i in range(3))),
        DelegateTransfer(sender="inr-donor", handoff_id=handoff,
                         vspace="bulk", seq=2, final=True, records=()),
        DelegateCommit(sender="inr-spare", handoff_id=handoff,
                       vspace="bulk"),
        DelegateAbort(sender="inr-donor", handoff_id=handoff,
                      vspace="bulk", reason="offer-timeout"),
    ]


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------
def test_every_frame_kind_round_trips():
    for message in _sample_messages():
        assert decode_delegation(message.encode()) == message


def test_transfer_round_trip_preserves_record_payload():
    original = _record(7)
    transfer = DelegateTransfer(
        sender="inr-donor", handoff_id=compose_handoff_id(0, 1),
        vspace="bulk", seq=0, final=True, records=(original,),
    )
    decoded = decode_delegation(transfer.encode())
    (record,) = decoded.records
    assert record == original
    assert record.name.canonical_key() == original.name.canonical_key()
    assert "bulk" in record.name.vspaces()


def test_decode_accepts_memoryview():
    message = _sample_messages()[0]
    assert decode_delegation(memoryview(message.encode())) == message


def test_wire_size_tracks_encoding():
    small = DelegateCommit(sender="a", handoff_id=1, vspace="v")
    large = _sample_messages()[3]
    assert small.wire_size() < large.wire_size()
    assert large.wire_size() > len(large.encode()) - 28


# ----------------------------------------------------------------------
# The fence arithmetic
# ----------------------------------------------------------------------
def test_handoff_ids_monotonic_across_incarnations():
    """A restarted donor's first id beats anything its previous
    incarnation issued — the property the recipient fence rests on."""
    last_before_crash = compose_handoff_id(4, 0xFFFF)
    first_after_restart = compose_handoff_id(5, 0)
    assert first_after_restart > last_before_crash


def test_handoff_id_range_checks():
    for incarnation, sequence in ((-1, 0), (0x10000, 0), (0, -1),
                                  (0, 0x10000)):
        with pytest.raises(DelegationWireError):
            compose_handoff_id(incarnation, sequence)


# ----------------------------------------------------------------------
# Controlled rejection of malformed frames
# ----------------------------------------------------------------------
def test_header_malformations_rejected():
    frame = bytearray(_sample_messages()[0].encode())
    for mutate, label in (
        (lambda b: b[:4], "truncated header"),
        (lambda b: bytes([0x00]) + bytes(b[1:]), "bad magic"),
        (lambda b: bytes(b[:2]) + bytes([DELEGATION_VERSION + 1])
         + bytes(b[3:]), "bad version"),
        (lambda b: bytes(b[:3]) + bytes([7]) + bytes(b[4:]),
         "nonzero reserved"),
        (lambda b: bytes(b[:1]) + bytes([99]) + bytes(b[2:]),
         "unknown kind"),
        (lambda b: bytes(b) + b"\x00", "trailing bytes"),
    ):
        with pytest.raises(DelegationWireError):
            decode_delegation(mutate(frame))
            raise AssertionError(f"{label} decoded")


def test_encode_guards_oversized_fields():
    with pytest.raises(DelegationWireError, match="string too long"):
        DelegateOffer(sender="x" * 70000, handoff_id=1, vspace="v",
                      total_records=1).encode()
    too_many = DelegateTransfer(
        sender="d", handoff_id=1, vspace="v", seq=0, final=True,
        records=tuple(
            _record(0) for _ in range(MAX_RECORDS_PER_TRANSFER + 1)
        ),
    )
    with pytest.raises(DelegationWireError, match="too many records"):
        too_many.encode()
    with pytest.raises(DelegationWireError, match="out of range"):
        DelegateCommit(sender="d", handoff_id=1 << 32, vspace="v").encode()


@given(
    message_index=st.integers(min_value=0, max_value=6),
    flip_position=st.integers(min_value=0, max_value=10_000),
    flip_bits=st.integers(min_value=1, max_value=255),
)
@settings(max_examples=300, deadline=None)
def test_seeded_mutations_raise_only_controlled_errors(
    message_index, flip_position, flip_bits
):
    """Flip bits anywhere in a valid frame: decode either succeeds (the
    mutation hit a byte the codec tolerates, e.g. inside a metric) or
    raises the one controlled error family."""
    encoded = bytearray(_sample_messages()[message_index].encode())
    encoded[flip_position % len(encoded)] ^= flip_bits
    try:
        decode_delegation(bytes(encoded))
    # lint: disable=no-silent-except -- fuzz oracle: the controlled error family IS the pass condition
    except DelegationWireError:
        pass


@given(data=st.binary(max_size=300))
@settings(max_examples=300, deadline=None)
def test_arbitrary_bytes_raise_only_controlled_errors(data):
    try:
        decode_delegation(data)
    # lint: disable=no-silent-except -- fuzz oracle: the controlled error family IS the pass condition
    except DelegationWireError:
        pass


# ----------------------------------------------------------------------
# Deterministic encodings
# ----------------------------------------------------------------------
def _seeded_transfer(seed):
    rng = random.Random(seed)
    records = tuple(
        DelegateRecord(
            name=NameSpecifier.parse(
                f"[service=s{rng.randrange(16)}[id=n{i}]][vspace=bulk]"
            ),
            announcer_host=f"h{rng.randrange(8)}",
            announcer_startup=rng.random() * 100.0,
            endpoints=(
                (f"10.0.{rng.randrange(256)}.{rng.randrange(256)}",
                 rng.randrange(1, 65536), "udp"),
            ),
            anycast_metric=rng.random(),
            route_metric=rng.random() * 4.0,
            lifetime=rng.random() * 60.0,
        )
        for i in range(rng.randrange(1, 9))
    )
    return DelegateTransfer(
        sender="inr-donor",
        handoff_id=compose_handoff_id(rng.randrange(16), rng.randrange(64)),
        vspace="bulk", seq=rng.randrange(4),
        final=bool(rng.randrange(2)), records=records,
    )


def test_same_seed_encodings_are_byte_identical():
    """Chaos fingerprints hash wire traffic, so the codec must be a
    pure function of the message — same seed, same bytes."""
    for seed in range(5):
        first = _seeded_transfer(seed).encode()
        second = _seeded_transfer(seed).encode()
        assert first == second
        assert decode_delegation(first) == decode_delegation(second)
    assert _seeded_transfer(1).encode() != _seeded_transfer(2).encode()
