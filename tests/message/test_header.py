"""Tests for the fixed INS packet header (Figure 10)."""

import pytest

from repro.message import (
    Binding,
    Delivery,
    HEADER_SIZE,
    Header,
    HeaderError,
    INS_VERSION,
)


def make_header(**overrides) -> Header:
    fields = dict(
        version=INS_VERSION,
        binding=Binding.LATE,
        delivery=Delivery.ANYCAST,
        source_offset=HEADER_SIZE,
        destination_offset=HEADER_SIZE + 5,
        data_offset=HEADER_SIZE + 12,
        hop_limit=32,
        cache_lifetime=0,
    )
    fields.update(overrides)
    return Header(**fields)


class TestPackUnpack:
    def test_fixed_size(self):
        assert len(make_header().pack()) == HEADER_SIZE

    def test_round_trip_defaults(self):
        header = make_header()
        packed = header.pack() + b"x" * 12
        assert Header.unpack(packed) == header

    @pytest.mark.parametrize("binding", list(Binding))
    @pytest.mark.parametrize("delivery", list(Delivery))
    def test_flag_combinations_round_trip(self, binding, delivery):
        header = make_header(binding=binding, delivery=delivery)
        unpacked = Header.unpack(header.pack() + b"x" * 12)
        assert unpacked.binding is binding
        assert unpacked.delivery is delivery

    def test_accept_cached_flag_round_trips(self):
        header = make_header(accept_cached=True)
        assert Header.unpack(header.pack() + b"x" * 12).accept_cached

    def test_hop_limit_and_cache_lifetime_round_trip(self):
        header = make_header(hop_limit=7, cache_lifetime=300)
        unpacked = Header.unpack(header.pack() + b"x" * 12)
        assert unpacked.hop_limit == 7
        assert unpacked.cache_lifetime == 300


class TestValidation:
    def test_short_packet_rejected(self):
        with pytest.raises(HeaderError, match="too short"):
            Header.unpack(b"\x01\x00\x00")

    def test_unknown_version_rejected(self):
        bad = bytearray(make_header().pack() + b"x" * 12)
        bad[0] = 99
        with pytest.raises(HeaderError, match="version"):
            Header.unpack(bytes(bad))

    def test_out_of_order_offsets_rejected(self):
        header = make_header(
            source_offset=HEADER_SIZE + 12, destination_offset=HEADER_SIZE
        )
        with pytest.raises(HeaderError, match="offsets"):
            Header.unpack(header.pack() + b"x" * 12)

    def test_offsets_beyond_packet_rejected(self):
        header = make_header(data_offset=10_000)
        with pytest.raises(HeaderError):
            Header.unpack(header.pack())
