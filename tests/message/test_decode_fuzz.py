"""Fuzz tests: arbitrary bytes must never crash the packet decoder with
anything other than a controlled error type."""

from hypothesis import given, settings, strategies as st

from repro.message import HEADER_SIZE, HeaderError, InsMessage
from repro.naming import NameSpecifier, NamingError


@given(data=st.binary(max_size=200))
@settings(max_examples=300, deadline=None)
def test_decode_raises_only_controlled_errors(data):
    """A resolver feeds received datagrams straight into decode; a
    malformed packet must surface as ValueError-family, never as an
    IndexError/KeyError/UnicodeDecodeError escaping to the event loop."""
    try:
        InsMessage.decode(data)
    # lint: disable=no-silent-except -- fuzz oracle: these error families ARE the pass condition
    except (HeaderError, NamingError, ValueError):
        pass  # includes UnicodeDecodeError (a ValueError subclass)


@given(data=st.binary(min_size=1, max_size=100))
@settings(max_examples=200, deadline=None)
def test_valid_prefix_with_garbage_data_section_decodes(data):
    """The data section is opaque: any bytes there must decode fine."""
    message = InsMessage(destination=NameSpecifier.parse("[a=b]"), data=data)
    decoded = InsMessage.decode(message.encode())
    assert decoded.data == data


@given(flip_position=st.integers(min_value=0, max_value=HEADER_SIZE - 1),
       flip_bits=st.integers(min_value=1, max_value=255))
@settings(max_examples=200, deadline=None)
def test_corrupted_headers_never_crash(flip_position, flip_bits):
    message = InsMessage(destination=NameSpecifier.parse("[a=b[c=d]]"),
                         data=b"payload")
    encoded = bytearray(message.encode())
    encoded[flip_position] ^= flip_bits
    try:
        InsMessage.decode(bytes(encoded))
    # lint: disable=no-silent-except -- fuzz oracle: these error families ARE the pass condition
    except (HeaderError, NamingError, ValueError):
        pass
