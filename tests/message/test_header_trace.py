"""Tests for the trace-context header extension (PROTOCOL.md §9)."""

import pytest

from repro.message import (
    Binding,
    Delivery,
    HEADER_SIZE,
    Header,
    HeaderError,
    INS_VERSION,
    InsMessage,
)
from repro.naming import NameSpecifier
from repro.obs import NO_PARENT, TRACE_CONTEXT_SIZE, TraceContext

CONTEXT = TraceContext(trace_id=7, span_id=42, parent_span_id=3)


def make_header(**overrides) -> Header:
    floor = HEADER_SIZE + (
        TRACE_CONTEXT_SIZE if overrides.get("trace") is not None else 0
    )
    fields = dict(
        version=INS_VERSION,
        binding=Binding.LATE,
        delivery=Delivery.ANYCAST,
        source_offset=floor,
        destination_offset=floor + 5,
        data_offset=floor + 12,
        hop_limit=32,
        cache_lifetime=0,
    )
    fields.update(overrides)
    return Header(**fields)


class TestHeaderTraceRoundTrip:
    def test_traced_header_is_exactly_24_bytes_longer(self):
        bare = make_header()
        traced = make_header(trace=CONTEXT)
        assert len(traced.pack()) == len(bare.pack()) + TRACE_CONTEXT_SIZE
        assert traced.wire_length == HEADER_SIZE + TRACE_CONTEXT_SIZE
        assert bare.wire_length == HEADER_SIZE

    def test_untraced_header_is_byte_identical_to_pre_extension_format(self):
        # The flag byte must stay clear and nothing may follow the fixed
        # header: old decoders keep working on untraced frames.
        packed = make_header().pack()
        assert len(packed) == HEADER_SIZE
        assert packed[1] & 0x08 == 0

    def test_round_trip_preserves_the_context(self):
        header = make_header(trace=CONTEXT)
        unpacked = Header.unpack(header.pack() + b"x" * 12)
        assert unpacked == header
        assert unpacked.trace == CONTEXT

    def test_root_context_round_trips(self):
        root = TraceContext(trace_id=1, span_id=1, parent_span_id=NO_PARENT)
        unpacked = Header.unpack(make_header(trace=root).pack() + b"x" * 12)
        assert unpacked.trace == root
        assert unpacked.trace.parent_span_id == NO_PARENT


class TestHeaderTraceValidation:
    def test_flag_without_context_bytes_rejected(self):
        packed = bytearray(make_header().pack())
        packed[1] |= 0x08  # claim a trace context that is not there
        with pytest.raises(HeaderError, match="trace"):
            Header.unpack(bytes(packed))

    def test_offsets_inside_trace_context_rejected(self):
        # A traced frame whose source offset points into the trace bytes
        # would let the names overlap the context.
        header = make_header(trace=CONTEXT, source_offset=HEADER_SIZE)
        with pytest.raises(HeaderError, match="offsets"):
            Header.unpack(header.pack() + b"x" * 12)


class TestMessageTraceRoundTrip:
    def _message(self, trace=None) -> InsMessage:
        return InsMessage(
            destination=NameSpecifier.parse("[service=camera[id=1]]"),
            source=NameSpecifier.parse("[service=viewer]"),
            data=b"payload",
            trace=trace,
        )

    def test_untraced_encoding_unchanged(self):
        assert self._message().encode() == self._message().encode()
        assert self._message(trace=None).wire_size() + TRACE_CONTEXT_SIZE == \
            self._message(trace=CONTEXT).wire_size()

    def test_traced_message_round_trips(self):
        decoded = InsMessage.decode(self._message(trace=CONTEXT).encode())
        assert decoded.trace == CONTEXT
        assert decoded.data == b"payload"

    def test_wire_size_matches_encoding(self):
        for trace in (None, CONTEXT):
            message = self._message(trace=trace)
            assert message.wire_size() == len(message.encode())

    def test_reply_template_does_not_inherit_the_trace(self):
        # Replies open their own spans; inheriting the request context
        # verbatim would fake a second span with the same id.
        decoded = InsMessage.decode(self._message(trace=CONTEXT).encode())
        assert decoded.reply_template().trace is None
