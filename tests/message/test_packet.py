"""Tests for whole INS messages (encode/decode, forwarding helpers)."""

import pytest

from repro.message import (
    Binding,
    DEFAULT_HOP_LIMIT,
    Delivery,
    HEADER_SIZE,
    HeaderError,
    InsMessage,
)
from repro.naming import NameSpecifier

from ..conftest import parse


def sample_message(**overrides) -> InsMessage:
    fields = dict(
        destination=parse("[service=camera[entity=transmitter]][room=510]"),
        source=parse("[service=camera[entity=receiver][id=r]]"),
        data=b"image-bytes",
        binding=Binding.LATE,
        delivery=Delivery.ANYCAST,
    )
    fields.update(overrides)
    return InsMessage(**fields)


class TestEncodeDecode:
    def test_round_trip(self):
        message = sample_message()
        decoded = InsMessage.decode(message.encode())
        assert decoded.destination == message.destination
        assert decoded.source == message.source
        assert decoded.data == message.data
        assert decoded.binding is message.binding
        assert decoded.delivery is message.delivery

    def test_empty_source_round_trips(self):
        message = sample_message(source=NameSpecifier())
        decoded = InsMessage.decode(message.encode())
        assert decoded.source.is_empty

    def test_binary_data_survives(self):
        payload = bytes(range(256))
        decoded = InsMessage.decode(sample_message(data=payload).encode())
        assert decoded.data == payload

    def test_empty_destination_rejected_on_decode(self):
        message = sample_message(destination=parse("[a=b]"))
        encoded = bytearray(message.encode())
        # Forge destination_offset == data_offset (empty destination).
        forged = sample_message()
        forged.destination = NameSpecifier()
        with pytest.raises((HeaderError, ValueError)):
            InsMessage.decode(forged.encode())

    def test_wire_size_matches_encoding(self):
        message = sample_message()
        assert message.wire_size() == len(message.encode())

    def test_layout_order(self):
        """Header, then source, then destination, then data."""
        message = sample_message()
        encoded = message.encode()
        source_wire = message.source.to_wire().encode()
        destination_wire = message.destination.to_wire().encode()
        assert encoded[HEADER_SIZE:HEADER_SIZE + len(source_wire)] == source_wire
        offset = HEADER_SIZE + len(source_wire)
        assert encoded[offset:offset + len(destination_wire)] == destination_wire
        assert encoded.endswith(message.data)

    def test_caching_fields_round_trip(self):
        message = sample_message(cache_lifetime=120, accept_cached=True)
        decoded = InsMessage.decode(message.encode())
        assert decoded.cache_lifetime == 120
        assert decoded.accept_cached
        assert decoded.wants_caching

    def test_zero_cache_lifetime_disallows_caching(self):
        assert not sample_message(cache_lifetime=0).wants_caching


class TestForwardingHelpers:
    def test_hop_decrement(self):
        message = sample_message(hop_limit=5)
        forwarded = message.hop_decremented()
        assert forwarded.hop_limit == 4
        assert message.hop_limit == 5  # original untouched

    def test_hop_exhaustion_raises(self):
        with pytest.raises(ValueError):
            sample_message(hop_limit=0).hop_decremented()

    def test_reply_template_inverts_names(self):
        message = sample_message()
        reply = message.reply_template()
        assert reply.destination == message.source
        assert reply.source == message.destination
        assert reply.delivery is Delivery.ANYCAST
        assert reply.hop_limit == DEFAULT_HOP_LIMIT
        assert reply.data == b""

    def test_reply_template_names_are_copies(self):
        message = sample_message()
        reply = message.reply_template()
        reply.destination.add("extra", "1")
        assert message.source != reply.destination
