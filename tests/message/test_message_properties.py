"""Property-based tests for the packet format."""

from hypothesis import given, settings, strategies as st

from repro.message import Binding, Delivery, InsMessage

from ..naming.test_naming_properties import name_specifiers


@given(
    destination=name_specifiers(),
    source=name_specifiers(),
    data=st.binary(max_size=300),
    binding=st.sampled_from(list(Binding)),
    delivery=st.sampled_from(list(Delivery)),
    hop_limit=st.integers(min_value=0, max_value=65535),
    cache_lifetime=st.integers(min_value=0, max_value=65535),
    accept_cached=st.booleans(),
)
@settings(max_examples=150, deadline=None)
def test_encode_decode_is_identity(
    destination, source, data, binding, delivery, hop_limit, cache_lifetime,
    accept_cached,
):
    message = InsMessage(
        destination=destination,
        source=source,
        data=data,
        binding=binding,
        delivery=delivery,
        hop_limit=hop_limit,
        cache_lifetime=cache_lifetime,
        accept_cached=accept_cached,
    )
    decoded = InsMessage.decode(message.encode())
    assert decoded.destination == destination
    assert decoded.source == source
    assert decoded.data == data
    assert decoded.binding is binding
    assert decoded.delivery is delivery
    assert decoded.hop_limit == hop_limit
    assert decoded.cache_lifetime == cache_lifetime
    assert decoded.accept_cached == accept_cached
    assert message.wire_size() == len(message.encode())
