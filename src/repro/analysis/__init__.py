"""Analytic models from the paper's Section 5.1.1."""

from .lookup_model import (
    ModelFit,
    fit_parameters,
    linear_search_time,
    lookup_time_closed_form,
    lookup_time_recurrence,
    relative_error,
)

__all__ = [
    "ModelFit",
    "fit_parameters",
    "linear_search_time",
    "lookup_time_closed_form",
    "lookup_time_recurrence",
    "relative_error",
]
