"""The Section 5.1.1 analytic model of LOOKUP-NAME's running time.

The paper derives, for name-specifiers grown uniformly with ``n_a``
attributes per level and ``d`` av-pair levels,

    T(d) = n_a (t_a + t_v + T(d-1)),   T(0) = b

which solves to

    T(d) = t * n_a (n_a^d - 1) / (n_a - 1) + n_a^d * b
         = Theta(n_a^d (t + b))

with ``t`` the time to find an attribute and value (constant for the
hash-table implementation, proportional to ``r_a + r_v`` for linear
search) and ``b`` the base-case set-intersection cost.

This module evaluates the recurrence and closed form, and fits ``t``
and ``b`` from measured lookup times: the closed form is linear in both
parameters, so the fit is ordinary least squares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


def lookup_time_recurrence(d: int, n_a: int, t: float, b: float) -> float:
    """Evaluate T(d) by direct recursion (the paper's recurrence)."""
    if d < 0:
        raise ValueError("depth must be non-negative")
    if d == 0:
        return b
    return n_a * (t + lookup_time_recurrence(d - 1, n_a, t, b))


def lookup_time_closed_form(d: int, n_a: int, t: float, b: float) -> float:
    """Evaluate the closed form of T(d)."""
    if d < 0:
        raise ValueError("depth must be non-negative")
    if n_a == 1:
        return d * t + b
    power = float(n_a) ** d
    return t * n_a * (power - 1) / (n_a - 1) + power * b


def linear_search_time(
    d: int, n_a: int, r_a: int, r_v: int, per_comparison: float, b: float
) -> float:
    """T(d) when attributes/values are found by linear scan:
    t proportional to r_a + r_v (the strawman of Section 5.1.1)."""
    return lookup_time_closed_form(d, n_a, per_comparison * (r_a + r_v), b)


@dataclass
class ModelFit:
    """Least-squares estimates of the model parameters."""

    t: float
    b: float
    residual: float

    def predict(self, d: int, n_a: int) -> float:
        return lookup_time_closed_form(d, n_a, self.t, self.b)


def fit_parameters(
    observations: Sequence[Tuple[int, int, float]],
) -> ModelFit:
    """Fit (t, b) from measured lookup times.

    ``observations`` is a sequence of (d, n_a, measured_seconds). The
    closed form is linear in t and b:

        T = [n_a (n_a^d - 1)/(n_a - 1)] * t + [n_a^d] * b

    so this is a two-column least-squares problem.
    """
    if len(observations) < 2:
        raise ValueError("need at least two observations to fit two parameters")
    rows = []
    times = []
    for d, n_a, measured in observations:
        if n_a == 1:
            t_coefficient = float(d)
            b_coefficient = 1.0
        else:
            power = float(n_a) ** d
            t_coefficient = n_a * (power - 1) / (n_a - 1)
            b_coefficient = power
        rows.append((t_coefficient, b_coefficient))
        times.append(measured)
    matrix = np.asarray(rows, dtype=float)
    target = np.asarray(times, dtype=float)
    solution, residuals, _rank, _sv = np.linalg.lstsq(matrix, target, rcond=None)
    residual = float(residuals[0]) if len(residuals) else 0.0
    return ModelFit(t=float(solution[0]), b=float(solution[1]), residual=residual)


def relative_error(predicted: float, measured: float) -> float:
    """|predicted - measured| / measured (guarding zero)."""
    if measured == 0:
        return float("inf") if predicted else 0.0
    return abs(predicted - measured) / abs(measured)
