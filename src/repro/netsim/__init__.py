"""Discrete-event network substrate.

Stands in for the paper's testbed: nodes with serial CPUs, point-to-
point links with latency/bandwidth/loss, UDP-like datagram delivery,
and a deterministic event loop with virtual time.
"""

from .cpu import Cpu
from .network import Link, LinkStats, Network, Node
from .process import PeriodicTimer, Process
from .simulator import Event, Simulator

__all__ = [
    "Cpu",
    "Event",
    "Link",
    "LinkStats",
    "Network",
    "Node",
    "PeriodicTimer",
    "Process",
    "Simulator",
]
