"""A serial CPU model for simulated nodes.

The paper finds INS is CPU-bound: the Pentium II saturates before a
1 Mbit/s link does (Figure 8). To reproduce that, every node owns one
CPU that processes work strictly serially; message handlers declare a
processing cost and the CPU queues them, tracking cumulative busy time
so experiments can report utilization over a window.
"""

from __future__ import annotations

from typing import Callable

from .simulator import Simulator


class Cpu:
    """One serial processor attached to a node.

    ``speed`` scales costs: a cost of ``c`` seconds occupies the CPU for
    ``c / speed`` seconds, so a two-machine experiment can model faster
    or slower hardware without touching the cost model.
    """

    def __init__(self, sim: Simulator, speed: float = 1.0) -> None:
        if speed <= 0:
            raise ValueError(f"cpu speed must be positive, got {speed}")
        self._sim = sim
        self.speed = speed
        #: the virtual time at which the CPU finishes already-queued work
        self.free_at = 0.0
        #: cumulative seconds spent processing since construction
        self.busy_seconds = 0.0
        #: number of work items executed
        self.jobs_executed = 0

    def execute(self, cost: float, callback: Callable[[], None]) -> float:
        """Queue ``cost`` seconds of work; run ``callback`` on completion.

        Returns the virtual time at which the work completes. Work is
        serialized: it starts when the CPU is next free, never earlier
        than now.
        """
        if cost < 0:
            raise ValueError(f"cpu cost must be non-negative, got {cost}")
        scaled = cost / self.speed
        start = max(self._sim.now, self.free_at)
        finish = start + scaled
        self.free_at = finish
        self.busy_seconds += scaled
        self.jobs_executed += 1
        self._sim.at(finish, callback)
        return finish

    def utilization(self, window_start: float, busy_at_start: float) -> float:
        """Fraction of the window since ``window_start`` spent busy.

        Callers snapshot ``busy_seconds`` at the window start and pass
        it back; this keeps the CPU stateless about measurement windows.
        The result may exceed 1.0 when queued work overflows the window,
        which is exactly the saturation signal Figure 8 looks for.
        """
        elapsed = self._sim.now - window_start
        if elapsed <= 0:
            return 0.0
        return (self.busy_seconds - busy_at_start) / elapsed

    @property
    def backlog(self) -> float:
        """Seconds of queued work not yet completed."""
        return max(0.0, self.free_at - self._sim.now)

    def __repr__(self) -> str:
        return (
            f"Cpu(speed={self.speed}, busy={self.busy_seconds:.3f}s, "
            f"backlog={self.backlog:.3f}s)"
        )
