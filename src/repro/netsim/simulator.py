"""A deterministic discrete-event simulator.

This is the substrate standing in for the paper's testbed (Pentium II
machines on 1-5 Mbps wireless links). Virtual time advances only when
events fire, so experiments are repeatable and independent of host
speed; all protocol code runs unmodified on top of it.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, List, Optional


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "sequence", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call repeatedly."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, {state}, {self.callback!r})"


class Simulator:
    """Event loop with virtual time and a seeded RNG.

    The RNG is owned by the simulator so every random decision in an
    experiment (loss, workload generation, jitter) derives from one
    seed, making whole-system runs reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now = 0.0
        self.rng = random.Random(seed)
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        #: Optional profiling hook, called with each Event just before
        #: it fires (``repro.obs`` installs one to count events per
        #: callback). None costs a single comparison per event.
        self.event_hook: Optional[Callable[[Event], None]] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.at(self.now + delay, callback, *args)

    def at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute virtual ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        event = Event(time, next(self._sequence), callback, args)
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event; False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            if self.event_hook is not None:
                self.event_hook(event)
            event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Drain the event queue.

        ``until`` bounds virtual time (events after it stay queued and
        ``now`` advances exactly to ``until``); ``max_events`` bounds
        the number of callbacks fired, as a runaway guard in tests.

        Foot-gun warning: a :class:`~repro.netsim.process.PeriodicTimer`
        reschedules itself forever, so an unbounded ``run()`` over any
        system with periodic protocol activity (an INR, the DSR, a
        Service) never returns. Use ``until=`` / :meth:`run_for` there;
        plain ``run()`` is for event sets that naturally drain.
        """
        queue = self._queue
        pop = heapq.heappop
        fired = 0
        while queue:
            head = queue[0]
            if head.cancelled:
                pop(queue)
                continue
            batch_time = head.time
            if until is not None and batch_time > until:
                break
            # Fire the whole same-timestamp batch in one inner loop: the
            # clock is assigned once per distinct time and each event
            # costs one heappop, not a step() call with its own re-peek.
            # Callbacks that schedule new events at this same timestamp
            # enqueue them with later sequence numbers, so the batch
            # picks them up in deterministic (time, sequence) order.
            self.now = batch_time
            # Exact equality is the batching criterion: only events whose
            # float timestamp is bit-identical share a clock assignment; a
            # near-equal time is a later instant and starts its own batch.
            while queue and queue[0].time == batch_time:  # lint: disable=no-float-time-eq -- identity batching, not a tolerance comparison
                if max_events is not None and fired >= max_events:
                    return
                event = pop(queue)
                if event.cancelled:
                    continue
                self._events_processed += 1
                fired += 1
                if self.event_hook is not None:
                    self.event_hook(event)
                event.callback(*event.args)
        if until is not None:
            self.now = max(self.now, until)

    def run_for(self, duration: float) -> None:
        """Advance virtual time by ``duration`` seconds."""
        self.run(until=self.now + duration)

    @property
    def events_processed(self) -> int:
        """Total callbacks fired since construction."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Events still queued (including cancelled tombstones)."""
        return len(self._queue)

    def __repr__(self) -> str:
        return f"Simulator(now={self.now:.6f}, pending={self.pending_events})"
