"""The process abstraction protocol code runs as.

A :class:`Process` lives on a node, is bound to a port, receives
datagrams through :meth:`handle_message` (after the node's CPU has
charged :meth:`processing_cost`), and owns timers. INRs, the DSR,
services and clients are all processes.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .network import Network, Node
from .simulator import Event, Simulator


class PeriodicTimer:
    """A repeating timer with optional multiplicative jitter.

    Jitter desynchronizes periodic protocol traffic (soft-state refresh
    floods) the way real deployments drift apart; a fraction of 0.1
    means each period is drawn uniformly from [0.9, 1.1] x interval.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        jitter_fraction: float = 0.0,
        fire_immediately: bool = False,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError(f"jitter fraction must be in [0, 1), got {jitter_fraction}")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._jitter_fraction = jitter_fraction
        self._event: Optional[Event] = None
        self._stopped = False
        if fire_immediately:
            self._event = sim.schedule(0.0, self._fire)
        else:
            self._schedule_next()

    def _next_delay(self) -> float:
        if self._jitter_fraction == 0.0:
            return self.interval
        spread = self._jitter_fraction * self.interval
        return self.interval + self._sim.rng.uniform(-spread, spread)

    def _schedule_next(self) -> None:
        if not self._stopped:
            self._event = self._sim.schedule(self._next_delay(), self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        self._schedule_next()

    def stop(self) -> None:
        """Cancel the timer; no further firings."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped


class Process:
    """Base class for everything that runs on a simulated node."""

    def __init__(self, node: Node, port: int) -> None:
        self.node = node
        self.port = port
        node.bind(port, self)
        self._timers: list = []

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def network(self) -> Network:
        return self.node.network

    @property
    def sim(self) -> Simulator:
        return self.node.network.sim

    @property
    def address(self) -> str:
        """The node's current network address (may change on mobility)."""
        return self.node.address

    @property
    def now(self) -> float:
        return self.sim.now

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Hook for subclasses: called once the process should go live."""

    def stop(self) -> None:
        """Cancel timers and unbind from the node's port."""
        for timer in self._timers:
            if isinstance(timer, PeriodicTimer):
                timer.stop()
            else:
                timer.cancel()
        self._timers = []
        self.node.unbind(self.port)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(
        self,
        destination: str,
        port: int,
        payload: Any,
        size_bytes: Optional[int] = None,
    ) -> None:
        """Send a datagram from this node.

        ``size_bytes`` defaults to the payload's ``wire_size()`` when it
        provides one, else zero (pure control messages in tests).
        """
        if size_bytes is None:
            sizer = getattr(payload, "wire_size", None)
            size_bytes = int(sizer()) if callable(sizer) else 0
        self.network.send(self.address, destination, port, payload, size_bytes)

    def processing_cost(self, payload: Any, size_bytes: int) -> float:
        """CPU seconds charged before :meth:`handle_message` runs."""
        return 0.0

    def admit(self, payload: Any, source: str) -> bool:
        """Accept or shed an arriving datagram *before* any CPU work is
        queued for it. Returning False drops the message at the door —
        the admission-control hook an overloaded resolver uses to bound
        its pending-work queue. The default accepts everything."""
        return True

    def handle_message(self, payload: Any, source: str) -> None:
        """Receive a datagram; subclasses override."""

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timer(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """One-shot timer; returns the cancellable event."""
        event = self.sim.schedule(delay, callback, *args)
        self._timers.append(event)
        return event

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        jitter_fraction: float = 0.0,
        fire_immediately: bool = False,
    ) -> PeriodicTimer:
        """Repeating timer; returns it for :meth:`PeriodicTimer.stop`."""
        timer = PeriodicTimer(
            self.sim,
            interval,
            callback,
            jitter_fraction=jitter_fraction,
            fire_immediately=fire_immediately,
        )
        self._timers.append(timer)
        return timer

    def __repr__(self) -> str:
        return f"{type(self).__name__}(node={self.address}, port={self.port})"
