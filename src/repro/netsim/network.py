"""Simulated nodes, links and datagram delivery.

The network models exactly what INS relies on from the real world:
unicast IP datagrams (Section 1: "the only network layer service that we
rely upon is IP unicast"). Each pair of nodes communicates over a link
with latency, bandwidth and an optional loss rate; each node owns a
serial CPU (see :mod:`.cpu`) through which all received messages pass,
and demultiplexes messages to processes by port.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

from .cpu import Cpu
from .simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from .process import Process


@dataclass
class LinkStats:
    """Cumulative traffic counters for one link."""

    messages: int = 0
    bytes: int = 0
    drops: int = 0
    duplicates: int = 0
    reorders: int = 0

    def snapshot(self) -> dict:
        """Every counter in declaration order — the uniform shape the
        metrics registry ingests and artifacts embed."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class Link:
    """A symmetric point-to-point channel between two nodes."""

    __slots__ = (
        "latency",
        "bandwidth_bps",
        "loss_rate",
        "duplicate_rate",
        "reorder_rate",
        "reorder_delay",
        "up",
        "stats",
    )

    def __init__(
        self,
        latency: float,
        bandwidth_bps: float,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        reorder_delay: float = 0.05,
    ) -> None:
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        for label, rate in (("loss", loss_rate), ("duplicate", duplicate_rate),
                            ("reorder", reorder_rate)):
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{label} rate must be in [0, 1), got {rate}")
        if reorder_delay < 0:
            raise ValueError(f"reorder delay must be non-negative, got {reorder_delay}")
        self.latency = latency
        self.bandwidth_bps = bandwidth_bps
        self.loss_rate = loss_rate
        #: Probability a datagram is delivered twice (duplicated in
        #: flight, e.g. by a link-layer retransmission whose ack died).
        self.duplicate_rate = duplicate_rate
        #: Probability a datagram is held back so later traffic on the
        #: same direction overtakes it (multi-path reordering).
        self.reorder_rate = reorder_rate
        #: Maximum extra holding time of a reordered datagram.
        self.reorder_delay = reorder_delay
        #: False models a partition: every datagram on the link is lost.
        self.up = True
        self.stats = LinkStats()

    def transfer_delay(self, size_bytes: int) -> float:
        """Propagation plus transmission delay for ``size_bytes``."""
        return self.latency + (size_bytes * 8.0) / self.bandwidth_bps

    def __repr__(self) -> str:
        return (
            f"Link(latency={self.latency * 1000:.1f}ms, "
            f"bandwidth={self.bandwidth_bps / 1e6:.2f}Mbps, "
            f"loss={self.loss_rate:.3f})"
        )


class Node:
    """A host: an address, a serial CPU and port-bound processes."""

    def __init__(self, network: "Network", address: str, cpu_speed: float = 1.0) -> None:
        self.network = network
        self.address = address
        self.cpu = Cpu(network.sim, speed=cpu_speed)
        self._ports: Dict[int, "Process"] = {}

    def bind(self, port: int, process: "Process") -> None:
        """Attach ``process`` to ``port``; one process per port."""
        if port in self._ports:
            raise ValueError(f"port {port} already bound on {self.address}")
        self._ports[port] = process

    def unbind(self, port: int) -> None:
        self._ports.pop(port, None)

    def process_on(self, port: int) -> Optional["Process"]:
        return self._ports.get(port)

    @property
    def processes(self) -> Tuple["Process", ...]:
        return tuple(self._ports.values())

    def __repr__(self) -> str:
        return f"Node({self.address}, ports={sorted(self._ports)})"


class Network:
    """The datagram fabric connecting simulated nodes.

    Links are created lazily with the network-wide defaults and can be
    overridden per pair with :meth:`configure_link`. Delivery applies
    link loss, latency + transmission delay, then the receiving node's
    CPU cost before the handler runs — the same path every INS message
    takes in the paper's implementation (NodeListener then processing).
    """

    def __init__(
        self,
        sim: Simulator,
        default_latency: float = 0.002,
        default_bandwidth_bps: float = 1_000_000.0,
        default_loss_rate: float = 0.0,
    ) -> None:
        self.sim = sim
        self.default_latency = default_latency
        self.default_bandwidth_bps = default_bandwidth_bps
        self.default_loss_rate = default_loss_rate
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        #: per-direction last-arrival times enforcing link FIFO order:
        #: a small datagram must not overtake a large one sent earlier.
        self._last_arrival: Dict[Tuple[str, str], float] = {}
        #: datagrams addressed to hosts that do not exist (e.g. a node
        #: that moved away); they vanish silently like real UDP.
        self.undeliverable = 0
        self.delivered = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(self, address: str, cpu_speed: float = 1.0) -> Node:
        if address in self._nodes:
            raise ValueError(f"node {address!r} already exists")
        node = Node(self, address, cpu_speed=cpu_speed)
        self._nodes[address] = node
        return node

    def node(self, address: str) -> Node:
        return self._nodes[address]

    def has_node(self, address: str) -> bool:
        return address in self._nodes

    @property
    def nodes(self) -> Tuple[Node, ...]:
        return tuple(self._nodes.values())

    def rename_node(self, old_address: str, new_address: str) -> Node:
        """Move a node to a new network location (node mobility).

        Datagrams already in flight to the old address are lost, exactly
        as they would be for a host that changed IP address.
        """
        if new_address in self._nodes:
            raise ValueError(f"node {new_address!r} already exists")
        node = self._nodes.pop(old_address)
        node.address = new_address
        self._nodes[new_address] = node
        return node

    @staticmethod
    def _link_key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def configure_link(
        self,
        a: str,
        b: str,
        latency: Optional[float] = None,
        bandwidth_bps: Optional[float] = None,
        loss_rate: Optional[float] = None,
        duplicate_rate: Optional[float] = None,
        reorder_rate: Optional[float] = None,
        reorder_delay: Optional[float] = None,
    ) -> Link:
        """Create or update the link between ``a`` and ``b``."""
        # Updates bypass Link.__init__, so validate up front (before any
        # mutation): a rate of 1.0 would turn the RNG draw into an
        # unconditional branch.
        for label, rate in (("loss", loss_rate), ("duplicate", duplicate_rate),
                            ("reorder", reorder_rate)):
            if rate is not None and not 0.0 <= rate < 1.0:
                raise ValueError(f"{label} rate must be in [0, 1), got {rate}")
        if reorder_delay is not None and reorder_delay < 0:
            raise ValueError(
                f"reorder delay must be non-negative, got {reorder_delay}"
            )
        key = self._link_key(a, b)
        link = self._links.get(key)
        if link is None:
            link = Link(
                latency if latency is not None else self.default_latency,
                bandwidth_bps if bandwidth_bps is not None else self.default_bandwidth_bps,
                loss_rate if loss_rate is not None else self.default_loss_rate,
            )
            self._links[key] = link
        else:
            if latency is not None:
                link.latency = latency
            if bandwidth_bps is not None:
                link.bandwidth_bps = bandwidth_bps
            if loss_rate is not None:
                link.loss_rate = loss_rate
        if duplicate_rate is not None:
            link.duplicate_rate = duplicate_rate
        if reorder_rate is not None:
            link.reorder_rate = reorder_rate
        if reorder_delay is not None:
            link.reorder_delay = reorder_delay
        return link

    def link(self, a: str, b: str) -> Link:
        """The link between ``a`` and ``b``, created lazily."""
        key = self._link_key(a, b)
        link = self._links.get(key)
        if link is None:
            link = self.configure_link(a, b)
        return link

    @property
    def links(self) -> Tuple[Tuple[Tuple[str, str], Link], ...]:
        """Every instantiated link with its (sorted) endpoint pair."""
        return tuple(self._links.items())

    def partition(self, side_a, side_b) -> None:
        """Cut every link between the two groups of addresses."""
        for a in side_a:
            for b in side_b:
                self.link(a, b).up = False

    def heal(self, side_a, side_b) -> None:
        """Restore every link between the two groups of addresses."""
        for a in side_a:
            for b in side_b:
                self.link(a, b).up = True

    # ------------------------------------------------------------------
    # Datagram delivery
    # ------------------------------------------------------------------
    def send(
        self,
        source: str,
        destination: str,
        port: int,
        payload: Any,
        size_bytes: int,
    ) -> None:
        """Send a datagram; best-effort, like UDP.

        Local delivery (source == destination) skips the link but still
        pays the receiver's CPU cost.
        """
        if size_bytes < 0:
            raise ValueError(f"size must be non-negative, got {size_bytes}")
        if source == destination:
            self.sim.schedule(
                0.0, self._deliver, destination, port, payload, source, size_bytes
            )
            return
        link = self.link(source, destination)
        link.stats.messages += 1
        link.stats.bytes += size_bytes
        if not link.up:
            link.stats.drops += 1
            return
        if link.loss_rate > 0 and self.sim.rng.random() < link.loss_rate:
            link.stats.drops += 1
            return
        delay = link.transfer_delay(size_bytes)
        direction = (source, destination)
        if link.reorder_rate > 0 and self.sim.rng.random() < link.reorder_rate:
            # Reordering: hold this datagram back without advancing the
            # direction's FIFO clamp, so traffic sent later overtakes it.
            link.stats.reorders += 1
            held = self.sim.now + delay + self.sim.rng.uniform(0.0, link.reorder_delay)
            self.sim.at(
                held, self._deliver, destination, port, payload, source, size_bytes
            )
            return
        # FIFO per direction: arrival times on one path never decrease,
        # so a short datagram cannot overtake a long one sent earlier.
        arrival = max(self.sim.now + delay, self._last_arrival.get(direction, 0.0))
        self._last_arrival[direction] = arrival
        self.sim.at(
            arrival, self._deliver, destination, port, payload, source, size_bytes
        )
        if link.duplicate_rate > 0 and self.sim.rng.random() < link.duplicate_rate:
            # Duplication: a second copy arrives one transmission later,
            # as if a link-layer retransmission fired despite delivery.
            link.stats.duplicates += 1
            self.sim.at(
                arrival + link.transfer_delay(size_bytes) - link.latency,
                self._deliver, destination, port, payload, source, size_bytes,
            )

    def _deliver(
        self, destination: str, port: int, payload: Any, source: str, size_bytes: int
    ) -> None:
        node = self._nodes.get(destination)
        if node is None:
            self.undeliverable += 1
            return
        process = node.process_on(port)
        if process is None:
            self.undeliverable += 1
            return
        if not process.admit(payload, source):
            # Application-level shedding (admission control): the
            # datagram arrived but the receiver refused to queue work
            # for it, so no CPU cost is charged.
            return
        cost = process.processing_cost(payload, size_bytes)
        self.delivered += 1
        node.cpu.execute(cost, lambda: process.handle_message(payload, source))

    def __repr__(self) -> str:
        return f"Network(nodes={len(self._nodes)}, links={len(self._links)})"
