"""Application-independent packet caching at INRs (Section 3.2).

The paper's Camera application motivated letting INRs cache data
packets: intentional names are structured enough to serve as cache
handles without any application-specific knowledge. A packet whose
header carries a non-zero cache lifetime may have its data cached under
the packet's *source* name (the name of the object's producer); a later
request whose destination name matches a cached source name can be
answered from the cache without travelling to the origin.

We reuse a :class:`NameTree` as the cache index so cache lookups have
exactly the matching semantics of name resolution (wild-cards included).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..naming import NameSpecifier
from ..nametree import AnnouncerID, NameRecord, NameTree


@dataclass
class CacheEntry:
    """One cached data object and its expiry.

    ``stored_at`` dates the data (freshness selection among multiple
    matches); ``last_used`` dates the entry's usefulness (LRU
    eviction). A lookup hit touches ``last_used`` only.
    """

    name: NameSpecifier
    data: bytes
    stored_at: float
    expires_at: float
    last_used: float = 0.0


class PacketCache:
    """An INR's cache of intentional-named data packets."""

    def __init__(self, max_entries: int = 128) -> None:
        self._index = NameTree(vspace="__cache__")
        self._entries: Dict[AnnouncerID, CacheEntry] = {}
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def __len__(self) -> int:
        return len(self._entries)

    def store(self, name: NameSpecifier, data: bytes, now: float, lifetime: float) -> None:
        """Cache ``data`` under ``name`` for ``lifetime`` seconds.

        Names that are not concrete cannot index a cache entry and are
        ignored; so are zero/negative lifetimes (caching disallowed).
        """
        if lifetime <= 0 or not name.is_concrete() or name.is_empty:
            return
        # One entry per distinct name: replace any existing entry.
        existing = self._find_record(name)
        if existing is not None:
            entry = self._entries[existing.announcer]
            entry.data = data
            entry.stored_at = now
            entry.expires_at = now + lifetime
            entry.last_used = now
            existing.expires_at = entry.expires_at
            self.stores += 1
            return
        if len(self._entries) >= self._max_entries:
            self._evict_lru()
        announcer = AnnouncerID.generate("cache")
        record = NameRecord(announcer=announcer, expires_at=now + lifetime)
        self._index.insert(name, record)
        self._entries[announcer] = CacheEntry(
            name=name.copy(),
            data=data,
            stored_at=now,
            expires_at=now + lifetime,
            last_used=now,
        )
        self.stores += 1

    def lookup(self, query: NameSpecifier, now: float) -> Optional[CacheEntry]:
        """The freshest unexpired entry matching ``query``, or None."""
        self._expire(now)
        records = self._index.lookup(query)
        if not records:
            self.misses += 1
            return None
        best = max(records, key=lambda r: self._entries[r.announcer].stored_at)
        self.hits += 1
        entry = self._entries[best.announcer]
        entry.last_used = now
        return entry

    def _find_record(self, name: NameSpecifier) -> Optional[NameRecord]:
        for record in self._index.lookup(name):
            if self._entries[record.announcer].name == name:
                return record
        return None

    def _expire(self, now: float) -> None:
        for record in self._index.expire(now):
            self._entries.pop(record.announcer, None)

    def _evict_lru(self) -> None:
        victim = min(self._entries, key=lambda a: self._entries[a].last_used)
        self._entries.pop(victim)
        self._index.remove_announcer(victim)

    @property
    def index(self) -> NameTree:
        """The cache's index tree (read-only use: memo statistics)."""
        return self._index
