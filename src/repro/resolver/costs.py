"""The resolver CPU cost model, calibrated to the paper's measurements.

The simulator charges CPU time for protocol work so the paper's
CPU-bound behaviour reappears. Constants are calibrated against the
numbers the paper reports for its Java implementation on a Pentium II
450 MHz (Section 5); EXPERIMENTS.md discusses the calibration:

- Figure 8 saturates the CPU near 13k names refreshed every 15 s, i.e.
  about 870 names/s of update processing -> ~1.15 ms per name.
- Figure 15's remote same-vspace case is ~9.8 ms per packet of pure
  lookup-and-forward; the local case grows from 3.1 ms (250 names) to
  19 ms (5000 names) because the end-application delivery code of their
  implementation "happens to vary linearly with the number of names" —
  we reproduce that artifact deliberately, with a switch to turn it off.
- Figure 15's cross-vspace case is ~3.8 ms per packet: no local lookup,
  just forwarding toward the cached vspace resolver.
- Figure 14's discovery slope is < 10 ms/hop = lookup + graft + update
  processing + one-way link delay.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostModel:
    """CPU seconds charged for each resolver operation.

    All values model the paper's reference hardware; scale a node's
    ``cpu_speed`` to model faster machines instead of editing these.
    """

    #: Processing one name in an inter-INR update (lookup the
    #: AnnouncerID, refresh or graft, bookkeeping). Fig. 8 calibration.
    update_per_name: float = 1.15e-3

    #: One LOOKUP-NAME invocation on a name-tree. Fig. 12 reports
    #: 700-900 lookups/s for the measured tree shapes.
    lookup: float = 1.2e-3

    #: Grafting a newly discovered name into the tree (Fig. 14's Tg).
    graft: float = 2.0e-3

    #: Tunnelling a packet to a next-hop INR or a remote end-node
    #: (socket and header work, no delivery code). Fig. 15 remote case:
    #: lookup + forward ~ 9.8 ms.
    forward: float = 8.6e-3

    #: Fixed part of delivering to a directly-attached application.
    local_delivery_base: float = 1.1e-3

    #: The paper's delivery-code artifact: per-name linear term in local
    #: delivery. Fit to Fig. 15's local curve (3.1 ms at 250 names,
    #: 19 ms at 5000).
    local_delivery_per_name: float = 3.35e-6

    #: Forwarding a packet for a vspace this INR does not route: no
    #: lookup, just a cache hit and a send. Fig. 15 cross-vspace case.
    vspace_forward: float = 3.8e-3

    #: Handling an INR-ping (parse the small probe name, respond).
    ping: float = 0.5e-3

    #: Serving a name-discovery or early-binding request (lookup plus
    #: response construction); response size also charges the link.
    query: float = 1.5e-3

    #: Receiving any datagram (socket read, header decode).
    receive: float = 0.1e-3

    #: When False, the Fig. 15 delivery artifact is disabled and local
    #: delivery costs only ``local_delivery_base`` (the ablation).
    model_delivery_artifact: bool = True

    def update_batch(self, name_count: int) -> float:
        """Cost of processing an update batch of ``name_count`` names."""
        return self.receive + self.update_per_name * name_count

    def local_delivery(self, names_in_vspace: int) -> float:
        """Cost of handing a packet to a directly-attached application."""
        if not self.model_delivery_artifact:
            return self.local_delivery_base
        return self.local_delivery_base + self.local_delivery_per_name * names_in_vspace


#: The model used unless an experiment overrides it.
DEFAULT_COSTS = CostModel()
