"""Well-known ports of the INS control and data planes.

The paper has each INR listen for periodic service announcements on a
well-known port (Section 2.2); we give the DSR its own, and clients and
services bind ephemeral ports above ``EPHEMERAL_BASE``.
"""

#: Port every INR listens on (advertisements, updates, queries, data).
INR_PORT = 5678

#: Port the Domain Space Resolver listens on.
DSR_PORT = 5679

#: First port handed out to client and service processes.
EPHEMERAL_BASE = 20000


class PortAllocator:
    """Hands out unique ephemeral ports for one simulation."""

    def __init__(self, base: int = EPHEMERAL_BASE) -> None:
        self._next = base

    def allocate(self) -> int:
        port = self._next
        self._next += 1
        return port
