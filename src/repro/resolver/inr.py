"""The Intentional Name Resolver (Sections 2, 2.2-2.5).

An INR integrates name resolution with message routing. It keeps one
name-tree per virtual space it routes, discovers names through
soft-state periodic and triggered updates exchanged with its overlay
neighbors, answers early-binding and discovery queries, and forwards
late-binding data messages by intentional anycast or multicast.

Self-configuration (Section 2.4): a starting INR asks the DSR for the
active list, INR-pings each active resolver, and peers with the one
with the minimum round-trip metric — by construction the overlay is a
spanning tree. Load balancing (Section 2.5): an INR that is
lookup-overloaded spawns a helper on a candidate node; one that is
update-overloaded delegates a virtual space to a freshly spawned INR.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..dtn import (
    PRIORITY_KNOWN_NAME,
    PRIORITY_UNKNOWN_NAME,
    CustodyEntry,
    CustodyStore,
)
from ..message import (
    Binding,
    CustodyRecord,
    CustodyTransfer,
    DelegateAbort,
    DelegateAccept,
    DelegateCommit,
    DelegateOffer,
    DelegateTransfer,
    Delivery,
    InsMessage,
)
from ..naming import NameSpecifier
from ..nametree import Endpoint, NameRecord, NameTree, Route
from ..netsim import Node, Process
from ..obs import DROP_PREFIX, STATUS_OK
from ..message.dsr import (
    DsrClaimCandidate,
    DsrClaimResponse,
    DsrDeregister,
    DsrHeartbeat,
    DsrListRequest,
    DsrListResponse,
    DsrRegisterActive,
    DsrRegisterCandidate,
    DsrVspaceRequest,
    DsrVspaceResponse,
)
from .cache import PacketCache
from .config import InrConfig
from .costs import DEFAULT_COSTS, CostModel
from .delegation import DelegationCoordinator
from .loadbalance import LoadMonitor
from .neighbors import NeighborTable
from .ports import DSR_PORT, INR_PORT
from .protocol import (
    Advertisement,
    DataPacket,
    DiscoveryRequest,
    DiscoveryResponse,
    NameUpdate,
    NameWithdraw,
    PeerAccept,
    PeerGoodbye,
    PeerRequest,
    PingRequest,
    PingResponse,
    Pushback,
    ResolutionRequest,
    ResolutionResponse,
    UpdateBatch,
)
from .reliable import ReliableAck, ReliableChannel, ReliableFrame

#: The probe name INR-pings carry: small, as the paper describes.
_PING_PROBE = NameSpecifier.from_dict({"service": "inr-ping"})


@dataclass
class InrStats:
    """Operation counters exposed for experiments and tests.

    Packet drops are kept per cause so chaos runs can attribute loss:
    a burst of ``drops_no_route`` during a crash means routes were
    flushed before refreshes re-installed them, while
    ``drops_expired_record`` means soft state aged out faster than the
    service refreshed. ``packets_dropped`` stays available as the sum.
    """

    lookups: int = 0
    update_names_processed: int = 0
    advertisements_processed: int = 0
    packets_delivered_locally: int = 0
    packets_forwarded: int = 0
    packets_forwarded_foreign_vspace: int = 0
    packets_answered_from_cache: int = 0
    triggered_updates_sent: int = 0
    periodic_updates_sent: int = 0
    queries_served: int = 0
    #: no record matched the destination name
    drops_no_route: int = 0
    #: records matched but every one had outlived its soft-state lifetime
    drops_expired_record: int = 0
    #: foreign-vspace payload with no DSR or no resolver for the vspace
    drops_foreign_vspace: int = 0
    #: packet reached a crashed/terminated resolver process
    drops_terminated: int = 0
    #: unparsable packet, or early binding without a source name
    drops_malformed: int = 0
    #: matched record carried no endpoints to deliver to
    drops_no_endpoint: int = 0
    #: hop limit reached zero before delivery
    drops_hop_limit: int = 0
    #: payload type no dispatch arm recognizes (wire-format skew or a
    #: message class added without a handler)
    drops_unknown_message: int = 0

    #: --- LOOKUP-NAME memo (resolution fast path) ---------------------
    #: Aggregated over every name-tree this INR routes plus the packet
    #: cache's index tree; refreshed after each lookup-serving path.
    lookup_memo_hits: int = 0
    lookup_memo_misses: int = 0
    lookup_memo_invalidations: int = 0

    #: --- Admission control (overload shedding) -----------------------
    #: periodic refreshes (non-triggered batches/ads) shed at the door
    shed_periodic: int = 0
    #: triggered updates/withdrawals shed under heavier backlog
    shed_triggered: int = 0
    #: client requests answered with an explicit Pushback
    pushbacks_sent: int = 0

    #: --- Disruption tolerance (custody store-and-forward) ------------
    #: payloads taken into custody instead of being dropped
    custody_accepted: int = 0
    #: payloads released back into forwarding when a route returned
    custody_released: int = 0
    #: CUSTODY-TRANSFER handoffs sent (terminating-INR migration)
    custody_transfers_sent: int = 0
    #: CUSTODY-TRANSFER handoffs received
    custody_transfers_received: int = 0
    #: expired records re-admitted by a refresh inside the partition
    #: grace window (the soft-state fast path after a heal)
    expiry_grace_readmissions: int = 0
    #: custody lapsed: the payload's TTL deadline passed unresolved
    drops_custody_expired: int = 0
    #: custody pushed out by capacity pressure or refused at the door
    drops_custody_evicted: int = 0
    #: custody handoff with no surviving recipient, or the payloads
    #: arrived at a resolver that runs no custody store
    drops_custody_transfer_failed: int = 0

    #: --- Crash-safe vspace delegation (two-phase handoff) ------------
    #: handoffs this resolver initiated as donor
    delegations_started: int = 0
    #: handoffs that committed (donor side: the vspace left)
    delegations_committed: int = 0
    #: handoffs the donor aborted (timeout, crash, termination)
    delegations_aborted: int = 0
    #: vspaces this resolver adopted as recipient
    delegations_adopted: int = 0
    #: adoptions rolled back by an abort-after-commit (donor crashed
    #: before finalizing; abort wins)
    delegation_rollbacks: int = 0
    #: name-records sent in DELEGATE-TRANSFER chunks
    delegate_records_sent: int = 0
    #: name-records received in DELEGATE-TRANSFER chunks
    delegate_records_received: int = 0
    #: fenced delegation frames (stale retransmissions) dropped —
    #: control-plane drops, deliberately not in ``packets_dropped``
    delegate_stale_dropped: int = 0

    @property
    def packets_dropped(self) -> int:
        """Total packets dropped, across every cause."""
        return (
            self.drops_no_route
            + self.drops_expired_record
            + self.drops_foreign_vspace
            + self.drops_terminated
            + self.drops_malformed
            + self.drops_no_endpoint
            + self.drops_hop_limit
            + self.drops_unknown_message
            + self.drops_custody_expired
            + self.drops_custody_evicted
            + self.drops_custody_transfer_failed
        )

    def drops_by_cause(self) -> Dict[str, int]:
        """Nonzero drop counters keyed by cause name."""
        causes = {
            "no-route": self.drops_no_route,
            "expired-record": self.drops_expired_record,
            "foreign-vspace": self.drops_foreign_vspace,
            "terminated": self.drops_terminated,
            "malformed": self.drops_malformed,
            "no-endpoint": self.drops_no_endpoint,
            "hop-limit": self.drops_hop_limit,
            "unknown-message": self.drops_unknown_message,
            "custody-expired": self.drops_custody_expired,
            "custody-evicted": self.drops_custody_evicted,
            "custody-transfer-failed": self.drops_custody_transfer_failed,
        }
        return {cause: count for cause, count in causes.items() if count}

    def snapshot(self) -> Dict[str, object]:
        """Every counter in declaration order, plus the derived sum and
        the per-cause drop breakdown — the uniform shape the metrics
        registry ingests and artifacts embed."""
        out: Dict[str, object] = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        out["packets_dropped"] = self.packets_dropped
        out["drops_by_cause"] = self.drops_by_cause()
        return out


@dataclass
class _PendingPing:
    address: str
    sent_at: float
    purpose: str


class INR(Process):
    """One Intentional Name Resolver process.

    ``spawner`` is the hook through which load balancing creates a new
    INR on a candidate node: ``spawner(candidate_address, vspaces)``
    must instantiate and start an INR there. Experiments provide it; if
    absent, spawn/delegate decisions are skipped.
    """

    def __init__(
        self,
        node: Node,
        dsr_address: Optional[str] = None,
        vspaces: Tuple[str, ...] = ("default",),
        config: Optional[InrConfig] = None,
        costs: Optional[CostModel] = None,
        spawner: Optional[Callable[[str, Tuple[str, ...]], "INR"]] = None,
        was_spawned: bool = False,
    ) -> None:
        super().__init__(node, INR_PORT)
        self.config = config or InrConfig()
        self.costs = costs or DEFAULT_COSTS
        self.dsr_address = dsr_address
        self.spawner = spawner
        self.was_spawned = was_spawned
        #: the vspaces this resolver was configured with; a restart after
        #: a crash comes back routing these (delegations are forgotten).
        self._initial_vspaces: Tuple[str, ...] = tuple(vspaces)
        #: how many times this resolver was restarted after a crash
        self.restarts = 0
        self.trees: Dict[str, NameTree] = {v: NameTree(vspace=v) for v in vspaces}
        self.neighbors = NeighborTable()
        self.monitor = LoadMonitor(ewma_alpha=self.config.load_ewma_alpha)
        self.stats = InrStats()
        #: Two-phase vspace handoff state machines (PROTOCOL.md §11).
        self.delegation = DelegationCoordinator(self)
        #: Finalized delegation facts preserved across a crash, like
        #: the custody snapshot (re-adopted in restart()).
        self._delegation_snapshot: tuple = ()
        # Load-hysteresis state (defaults make it transparent).
        self._last_load_action = float("-inf")
        self._overload_lookup_streak = 0
        self._overload_update_streak = 0
        self._underload_streak = 0
        #: Observability hook: a ``repro.obs.Tracer`` when the domain is
        #: being observed, None otherwise. Every instrumentation site
        #: guards on it so tracing costs nothing when off.
        self.tracer = None
        self.cache = (
            PacketCache(self.config.packet_cache_size)
            if self.config.packet_cache_size > 0
            else None
        )
        #: Disruption tolerance: the custody store, when enabled.
        self.custody: Optional[CustodyStore] = (
            CustodyStore(self.config.custody_capacity)
            if self.config.enable_custody
            else None
        )
        #: Custody is stable storage — a crash snapshot survives the
        #: process and is re-adopted on restart (DSR snapshot pattern).
        self._custody_snapshot: tuple = ()
        self.active = False
        self._started_at = 0.0
        self._terminated = False
        # Bootstrap / ping state
        self._pending_pings: Dict[int, _PendingPing] = {}
        self._join_rtts: Dict[str, float] = {}
        self._join_attempts = 0
        self._joining = False
        self._earlier_inrs: Tuple[str, ...] = ()
        # vspace -> resolver cache plus payloads parked on a DSR answer
        self._vspace_cache: Dict[str, str] = {}
        self._vspace_waiting: Dict[str, List[object]] = {}
        self._spawn_pending = False
        self._termination_votes: Optional[Dict[str, Optional[bool]]] = None
        self._pending_peer: Optional[str] = None
        self._peer_attempts = 0
        if self.config.update_mode not in ("soft-state", "reliable-delta"):
            raise ValueError(
                f"unknown update mode: {self.config.update_mode!r}"
            )
        self._reliable: Optional[ReliableChannel] = None
        if self.config.update_mode == "reliable-delta":
            self._reliable = ReliableChannel(
                transmit=lambda neighbor, payload: self.send(
                    neighbor, INR_PORT, payload
                ),
                deliver=self._deliver_reliable,
                set_timer=self.set_timer,
                retransmit_timeout=self.config.reliable_retransmit_timeout,
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Join the overlay and begin periodic protocol activity."""
        self._started_at = self.now
        jitter = self.config.timer_jitter
        self.every(self.config.refresh_interval, self._send_periodic_updates, jitter)
        self.every(self.config.expiry_sweep_interval, self._sweep, jitter)
        if self.custody is not None:
            self.every(
                self.config.custody_retry_interval, self._custody_tick, jitter
            )
        if self.dsr_address is not None:
            self.every(self.config.heartbeat_interval, self._heartbeat, jitter)
            if self.config.enable_load_balancing:
                self.every(self.config.load_check_interval, self._check_load, jitter)
            if self.config.enable_relaxation:
                self.every(self.config.relaxation_interval, self._relax, jitter)
            self._begin_join()
        else:
            self.active = True

    def terminate(self) -> None:
        """Leave the overlay: tell peers and the DSR, then stop."""
        if self._terminated:
            return
        # A retiring donor must not leave its recipient staging chunks
        # that will never arrive: abort the in-flight handoff first
        # (the flag flips after, so the abort message still sends).
        self.delegation.shutdown()
        self._terminated = True
        if self.custody is not None and len(self.custody):
            # Held payloads must not die with their custodian: hand
            # them to a surviving neighbor before saying goodbye.
            self._custody_handoff()
        for neighbor in self.neighbors:
            self.send(neighbor.address, INR_PORT, PeerGoodbye(self.address))
        if self.dsr_address is not None:
            self.send(self.dsr_address, DSR_PORT, DsrDeregister(self.address))
            if self.was_spawned:
                # A retiring helper returns its node to the candidate
                # pool so a later overload can spawn onto it again.
                self.send(
                    self.dsr_address,
                    DSR_PORT,
                    DsrRegisterCandidate(self.address),
                )
        self.stop()

    def crash(self) -> None:
        """Fail silently: no goodbye, no deregistration (for fault
        injection). Peers and the DSR recover through soft state."""
        self._terminated = True
        if self.custody is not None:
            # Custody is stable storage: the payloads a custodian
            # accepted responsibility for survive its process and are
            # re-adopted when the operator restarts it.
            self._custody_snapshot = self.custody.snapshot()
        # Finalized delegation facts are stable storage too: which
        # vspaces left and which were adopted survive the process.
        # In-flight handoffs do NOT — the protocol aborts them.
        self._delegation_snapshot = self.delegation.crash_snapshot()
        self.stop()

    def restart(self) -> None:
        """Come back up on the same node after a crash.

        Models the operator restarting a resolver process on a host
        that rebooted: all in-memory state is gone. The restarted INR
        re-registers with the DSR, rejoins the overlay as if starting
        fresh, and rebuilds its name-trees from the periodic service
        advertisements and neighbor updates that soft state keeps
        flowing (Section 2.2) — no recovery protocol is needed.
        """
        if not self._terminated:
            raise RuntimeError("restart() is only valid after crash() or terminate()")
        if self.node.process_on(self.port) is not None:
            raise RuntimeError(
                f"port {self.port} on {self.address} was taken while this INR was down"
            )
        self._terminated = False
        self.active = False
        self.restarts += 1
        self.trees = {v: NameTree(vspace=v) for v in self._initial_vspaces}
        self.neighbors = NeighborTable()
        # The monitor's window starts NOW, not at t=0: a default-
        # constructed LoadMonitor would stretch the first post-restart
        # window back to the epoch, diluting (or faking) a load signal.
        self.monitor = LoadMonitor(
            now=self.now, ewma_alpha=self.config.load_ewma_alpha
        )
        self.stats = InrStats()
        self._last_load_action = float("-inf")
        self._overload_lookup_streak = 0
        self._overload_update_streak = 0
        self._underload_streak = 0
        # self.tracer survives a restart on purpose: the collector
        # observing the run outlives any one process incarnation.
        self.cache = (
            PacketCache(self.config.packet_cache_size)
            if self.config.packet_cache_size > 0
            else None
        )
        self.custody = (
            CustodyStore(self.config.custody_capacity)
            if self.config.enable_custody
            else None
        )
        self._pending_pings = {}
        self._join_rtts = {}
        self._join_attempts = 0
        self._joining = False
        self._earlier_inrs = ()
        self._vspace_cache = {}
        self._vspace_waiting = {}
        self._spawn_pending = False
        self._termination_votes = None
        self._pending_peer = None
        self._peer_attempts = 0
        if self._reliable is not None:
            # Fresh channel state: sequence numbers from a previous
            # incarnation must not be mistaken for the new one's.
            self._reliable = ReliableChannel(
                transmit=lambda neighbor, payload: self.send(
                    neighbor, INR_PORT, payload
                ),
                deliver=self._deliver_reliable,
                set_timer=self.set_timer,
                retransmit_timeout=self.config.reliable_retransmit_timeout,
            )
        # Fresh handoff state machines (in-flight handoffs died with the
        # process), then re-apply the finalized facts: delegated-away
        # vspaces leave the rebuilt tree set again, adopted ones come
        # back as empty trees that soft state refills.
        self.delegation = DelegationCoordinator(self)
        self.delegation.adopt_snapshot(self._delegation_snapshot)
        self._delegation_snapshot = ()
        self.node.bind(self.port, self)
        if self.custody is not None and self._custody_snapshot:
            # Re-adopt the crash snapshot, preserving each payload's
            # absolute deadline; payloads that lapsed while the process
            # was down are attributed as custody-expired drops.
            before = self.custody.counts.accepted
            lapsed, evicted = self.custody.adopt(self._custody_snapshot, self.now)
            self._custody_snapshot = ()
            self.stats.custody_accepted += self.custody.counts.accepted - before
            for entry in lapsed:
                self._custody_drop(entry, "custody-expired")
            for entry in evicted:
                self._custody_drop(entry, "custody-evicted")
        self.start()

    @property
    def terminated(self) -> bool:
        """True after crash()/terminate() and before any restart()."""
        return self._terminated

    @property
    def vspaces(self) -> Tuple[str, ...]:
        return tuple(self.trees)

    def routes_vspace(self, vspace: str) -> bool:
        return vspace in self.trees

    def name_count(self, vspace: Optional[str] = None) -> int:
        """Live names in one vspace, or across all of them."""
        if vspace is not None:
            tree = self.trees.get(vspace)
            return len(tree) if tree is not None else 0
        return sum(len(tree) for tree in self.trees.values())

    # ------------------------------------------------------------------
    # CPU cost model hook
    # ------------------------------------------------------------------
    def processing_cost(self, payload: object, size_bytes: int) -> float:
        costs = self.costs
        if isinstance(payload, ReliableFrame):
            payload = payload.inner  # charge for the carried update
        if isinstance(payload, UpdateBatch):
            return costs.update_batch(len(payload.updates))
        if isinstance(payload, NameWithdraw):
            return costs.receive + costs.update_per_name
        if isinstance(payload, CustodyTransfer):
            return costs.receive + costs.update_per_name * len(payload.records)
        if isinstance(payload, DelegateTransfer):
            # A handoff chunk costs what installing its names costs.
            return costs.receive + costs.update_per_name * len(payload.records)
        if isinstance(payload, Advertisement):
            return costs.receive + costs.update_per_name
        if isinstance(payload, (ResolutionRequest, DiscoveryRequest)):
            return costs.query
        if isinstance(payload, PingRequest):
            return costs.ping
        return costs.receive

    def _work(self, cost: float, continuation: Callable[[], None]) -> None:
        """Charge ``cost`` CPU seconds, then run ``continuation``."""
        self.node.cpu.execute(cost, continuation)

    def _sync_memo_stats(self) -> None:
        """Mirror the per-tree LOOKUP-NAME memo counters into InrStats."""
        hits = misses = invalidations = 0
        trees = list(self.trees.values())
        if self.cache is not None:
            trees.append(self.cache.index)
        for tree in trees:
            hits += tree.memo_hits
            misses += tree.memo_misses
            invalidations += tree.memo_invalidations
        self.stats.lookup_memo_hits = hits
        self.stats.lookup_memo_misses = misses
        self.stats.lookup_memo_invalidations = invalidations

    # ------------------------------------------------------------------
    # Tracing hooks (repro.obs)
    # ------------------------------------------------------------------
    def _span_start(self, name: str, context, **tags):
        """Open a hop span joining ``context``'s trace.

        Returns None (and costs one attribute test) when the domain is
        untraced or the message carried no context — every span-taking
        path below accepts that None.
        """
        if self.tracer is None or context is None:
            return None
        return self.tracer.start_span(
            name, node=self.address, parent=context, tags=tags or None
        )

    def _span_end(self, span, status: str = STATUS_OK) -> None:
        if span is not None:
            self.tracer.end_span(span, status)

    def _span_note(self, span, text: str) -> None:
        if span is not None:
            self.tracer.annotate(span, text)

    # ------------------------------------------------------------------
    # Admission control (overload shedding)
    # ------------------------------------------------------------------
    def admit(self, payload: object, source: str) -> bool:
        """Bound the pending-work queue with priority shedding.

        Work already accepted sits in the node CPU's serial queue; its
        backlog (seconds of queued work) is the queue depth. Past the
        configured thresholds, arriving work is shed cheapest-loss
        first: periodic soft-state refreshes (they recur anyway), then
        triggered updates (the next refresh re-delivers the state), and
        only under the heaviest backlog client lookups — which are
        answered with an explicit :class:`Pushback` carrying a
        retry-after hint, so the client backs off instead of declaring
        the resolver dead.
        """
        config = self.config
        if not config.admission_control or self._terminated:
            return True
        backlog = self.node.cpu.backlog
        if backlog <= config.admission_shed_backlog:
            return True
        periodic = (
            isinstance(payload, UpdateBatch) and not payload.triggered
        ) or (isinstance(payload, Advertisement) and not payload.triggered)
        if periodic:
            self.stats.shed_periodic += 1
            return False
        if backlog <= config.admission_trigger_backlog:
            return True
        if isinstance(payload, (UpdateBatch, Advertisement, NameWithdraw)):
            self.stats.shed_triggered += 1
            return False
        if backlog <= config.admission_pushback_backlog:
            return True
        if isinstance(payload, (ResolutionRequest, DiscoveryRequest)):
            self.stats.pushbacks_sent += 1
            span = self._span_start("inr.pushback", payload.trace)
            self.send(
                payload.reply_to,
                payload.reply_port,
                Pushback(
                    request_id=payload.request_id,
                    responder=self.address,
                    retry_after=min(backlog, config.admission_retry_after_max),
                ),
            )
            self._span_end(span, "pushback")
            return False
        return True

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def handle_message(self, payload: object, source: str) -> None:
        if self._terminated:
            if isinstance(payload, DataPacket):
                self.stats.drops_terminated += 1
                if self.tracer is not None:
                    try:
                        context = payload.message.trace
                    except ValueError:
                        context = None
                    self._span_end(
                        self._span_start("inr.hop", context),
                        DROP_PREFIX + "terminated",
                    )
            return
        self.neighbors.heard_from(source, self.now)
        if isinstance(payload, ReliableFrame):
            if self._reliable is not None:
                ack = self._reliable.on_frame(source, payload)
                if ack is not None:
                    self.send(source, INR_PORT, ack)
            return
        if isinstance(payload, ReliableAck):
            if self._reliable is not None:
                self._reliable.on_ack(source, payload)
            return
        if isinstance(payload, NameWithdraw):
            self._handle_withdraw(payload, source)
        elif isinstance(
            payload,
            (
                DelegateOffer,
                DelegateAccept,
                DelegateTransfer,
                DelegateCommit,
                DelegateAbort,
            ),
        ):
            self.delegation.on_message(payload, source)
        elif isinstance(payload, CustodyTransfer):
            self._handle_custody_transfer(payload)
        elif isinstance(payload, UpdateBatch):
            self._handle_update_batch(payload)
        elif isinstance(payload, Advertisement):
            self._handle_advertisement(payload, source)
        elif isinstance(payload, DataPacket):
            self._handle_data(payload, source)
        elif isinstance(payload, ResolutionRequest):
            self._handle_resolution(payload)
        elif isinstance(payload, DiscoveryRequest):
            self._handle_discovery(payload)
        elif isinstance(payload, PingRequest):
            self.send(
                payload.reply_to,
                payload.reply_port,
                PingResponse(token=payload.token, responder=self.address),
            )
        elif isinstance(payload, PingResponse):
            self._handle_ping_response(payload)
        elif isinstance(payload, PeerRequest):
            self._handle_peer_request(payload)
        elif isinstance(payload, PeerAccept):
            self.neighbors.heard_from(payload.accepter, self.now)
            if payload.accepter == self._pending_peer:
                self._pending_peer = None
        elif isinstance(payload, PeerGoodbye):
            self._drop_neighbor(payload.sender, rejoin=True)
        elif isinstance(payload, DsrListResponse):
            self._handle_dsr_list(payload)
        elif isinstance(payload, DsrVspaceResponse):
            self._handle_vspace_response(payload)
        elif isinstance(payload, DsrClaimResponse):
            self._handle_claim_response(payload)
        else:
            # Terminal arm: an unrecognized payload must be counted and
            # trace-attributed, not silently swallowed — this is how
            # wire-format skew between resolver versions surfaces.
            self.stats.drops_unknown_message += 1
            if self.tracer is not None:
                try:
                    context = getattr(payload, "trace", None)
                except ValueError:
                    context = None
                self._span_end(
                    self._span_start(
                        "inr.hop", context,
                        payload_type=type(payload).__name__,
                    ),
                    DROP_PREFIX + "unknown-message",
                )

    # ------------------------------------------------------------------
    # Overlay self-configuration (Section 2.4)
    # ------------------------------------------------------------------
    def _begin_join(self) -> None:
        self._joining = True
        self._join_rtts = {}
        self._join_attempts += 1
        self._join_epoch = getattr(self, "_join_epoch", 0) + 1
        self._join_list_seen = False
        self.send(
            self.dsr_address,
            DSR_PORT,
            DsrListRequest(reply_to=self.address, reply_port=self.port),
        )
        # Watchdog: on a lossy link the DSR's answer may never arrive;
        # a join attempt must not hang forever (robustness, goal iii).
        self.set_timer(2.0, self._join_watchdog, self._join_epoch)

    def _join_watchdog(self, epoch: int) -> None:
        if not self._joining or epoch != self._join_epoch:
            return
        if self._join_list_seen:
            return  # the per-ping timeout path is already in control
        if self._join_attempts < 5:
            self._begin_join()
        else:
            # Give up for now; the expiry sweep's lonely-overlay check
            # keeps retrying in the background.
            self._finish_join(peer=None)

    def _handle_dsr_list(self, response: DsrListResponse) -> None:
        if self._joining:
            self._join_list_seen = True
            others = tuple(a for a in response.active if a != self.address)
            if self.address in response.active:
                prefix = response.active[: response.active.index(self.address)]
                self._earlier_inrs = prefix
            else:
                self._earlier_inrs = others
            if not others:
                self._finish_join(peer=None)
                return
            for address in others:
                self._ping(address, purpose="join")
            self.set_timer(self.config.join_ping_timeout, self._pick_join_peer)
            return
        # A list response outside a join: relaxation probing.
        self._relax_with_list(response)

    def _pick_join_peer(self) -> None:
        if not self._joining:
            return
        if not self._join_rtts:
            if self._join_attempts < 3:
                self.set_timer(1.0, self._begin_join)
            else:
                # No resolver answered: proceed alone; soft state heals
                # the overlay when connectivity returns.
                self._finish_join(peer=None)
            return
        peer = min(self._join_rtts, key=lambda a: (self._join_rtts[a], a))
        self._finish_join(peer=peer, rtt=self._join_rtts[peer])

    def _finish_join(self, peer: Optional[str], rtt: float = 0.0) -> None:
        self._joining = False
        if peer is not None:
            self._join_attempts = 0
            self._request_peering(peer, rtt)
        self.active = True
        self._register()

    def _request_peering(self, peer: str, rtt: float) -> None:
        """Establish (or re-establish) the parent peering.

        The request is retried until the peer's accept arrives — on
        lossy wireless links a single lost datagram must not strand an
        INR outside the overlay (design goal iii, robustness).
        """
        self.neighbors.add(peer, rtt=rtt, is_parent=True)
        self._pending_peer = peer
        self._peer_attempts = 0
        self._send_peer_request(peer, rtt)

    def _send_peer_request(self, peer: str, rtt: float) -> None:
        if self._pending_peer != peer:
            return
        self._peer_attempts += 1
        if self._peer_attempts > 5:
            self._pending_peer = None
            self._begin_join()
            return
        self.send(peer, INR_PORT, PeerRequest(self.address, measured_rtt=rtt))
        self._send_full_table(peer)
        self.set_timer(1.0, self._send_peer_request, peer, rtt)

    def _register(self) -> None:
        if self.dsr_address is not None:
            self.send(
                self.dsr_address,
                DSR_PORT,
                DsrRegisterActive(self.address, self.vspaces),
            )

    def _heartbeat(self) -> None:
        if self.active:
            self.send(
                self.dsr_address,
                DSR_PORT,
                DsrHeartbeat(self.address, self.vspaces),
            )

    def _handle_peer_request(self, request: PeerRequest) -> None:
        self.neighbors.add(request.requester, rtt=request.measured_rtt)
        self.neighbors.heard_from(request.requester, self.now)
        if self._reliable is not None:
            # A peering (re-)request starts a fresh conversation: the
            # requester may be a restarted incarnation with no memory of
            # our sequence numbers. Reset so the full table below goes
            # out under a new epoch from sequence 1, which the peer can
            # always accept.
            self._reliable.reset(request.requester)
        self.send(request.requester, INR_PORT, PeerAccept(self.address))
        self._send_full_table(request.requester)

    def _drop_neighbor(self, address: str, rejoin: bool) -> None:
        neighbor = self.neighbors.remove(address)
        if neighbor is None:
            return
        self._flush_routes_via(address)
        if neighbor.is_parent and rejoin and self.dsr_address is not None:
            self._begin_join()

    def _flush_routes_via(self, address: str) -> None:
        """Remove records learned through a dead neighbor immediately.

        Soft state would expire them anyway; flushing now restores
        responsiveness, and periodic updates from live neighbors
        re-install any name still reachable another way. In
        reliable-delta mode there are no periodic re-floods, so the
        flush is also propagated as withdrawals downstream.
        """
        if self._reliable is not None:
            self._reliable.reset(address)
        for tree in self.trees.values():
            for record in list(tree.records()):
                if record.route.next_hop == address:
                    tree.remove(record)
                    if self._reliable is not None:
                        self._propagate_withdraw(
                            record.announcer, tree.vspace, exclude=address
                        )

    # ------------------------------------------------------------------
    # INR-pings
    # ------------------------------------------------------------------
    def _ping(self, address: str, purpose: str) -> None:
        request = PingRequest(
            probe=_PING_PROBE, reply_to=self.address, reply_port=self.port
        )
        self._pending_pings[request.token] = _PendingPing(
            address=address, sent_at=self.now, purpose=purpose
        )
        self.send(address, INR_PORT, request)

    def _handle_ping_response(self, response: PingResponse) -> None:
        pending = self._pending_pings.pop(response.token, None)
        if pending is None:
            return
        rtt = self.now - pending.sent_at
        if pending.purpose == "join":
            self._join_rtts[pending.address] = rtt
        elif pending.purpose == "parent-refresh":
            # Relaxation re-measures the parent link so a degraded path
            # is seen at its current cost, not its historical best.
            neighbor = self.neighbors.get(pending.address)
            if neighbor is not None:
                neighbor.observe_rtt(rtt)
            return
        elif pending.purpose == "relax":
            self._maybe_switch_parent(pending.address, rtt)
        neighbor = self.neighbors.get(pending.address)
        if neighbor is not None:
            neighbor.observe_rtt(rtt)

    # ------------------------------------------------------------------
    # Overlay relaxation (extension: Section 2.4 future work)
    # ------------------------------------------------------------------
    def _relax(self) -> None:
        parent = self.neighbors.parent
        if self.active and parent is not None:
            self._ping(parent.address, purpose="parent-refresh")
            self.send(
                self.dsr_address,
                DSR_PORT,
                DsrListRequest(reply_to=self.address, reply_port=self.port),
            )

    def _relax_with_list(self, response: DsrListResponse) -> None:
        if self.address in response.active:
            self._earlier_inrs = response.active[
                : response.active.index(self.address)
            ]
        parent = self.neighbors.parent
        if parent is None or not self._earlier_inrs:
            return
        candidates = [
            a
            for a in self._earlier_inrs
            if a != parent.address and a not in self.neighbors
        ]
        if not candidates:
            return
        probe = self.sim.rng.choice(candidates)
        self._ping(probe, purpose="relax")

    def _maybe_switch_parent(self, candidate: str, rtt: float) -> None:
        parent = self.neighbors.parent
        if parent is None or candidate == parent.address:
            return
        if rtt >= parent.rtt * self.config.relaxation_improvement:
            return
        # Better parent found: swap the tree edge. Only earlier-ordered
        # INRs are probed, so the topology remains acyclic.
        self.send(parent.address, INR_PORT, PeerGoodbye(self.address))
        self.neighbors.remove(parent.address)
        self._flush_routes_via(parent.address)
        self._request_peering(candidate, rtt)

    # ------------------------------------------------------------------
    # Name discovery protocol (Section 2.2)
    # ------------------------------------------------------------------
    def _handle_advertisement(self, ad: Advertisement, source: str) -> None:
        self.stats.advertisements_processed += 1
        self.monitor.count_update_names(1)
        changed: List[Tuple[str, NameSpecifier, NameRecord]] = []
        for vspace in ad.name.vspaces():
            tree = self.trees.get(vspace)
            if tree is None:
                self._forward_foreign_payload(vspace, ad)
                continue
            endpoints = ad.endpoints or (Endpoint(host=source),)
            record = NameRecord(
                announcer=ad.announcer,
                endpoints=list(endpoints),
                anycast_metric=ad.anycast_metric,
                route=Route(next_hop=None, metric=0.0),
                expires_at=self.now + ad.lifetime,
            )
            readmitted = False
            if self.config.partition_grace > 0:
                existing = tree.record_for(ad.announcer)
                readmitted = existing is not None and existing.is_expired(
                    self.now
                )
            outcome = tree.insert(ad.name, record)
            if readmitted:
                # A graced record came back to life: the payload-equal
                # fast path would suppress the triggered update, but
                # neighbors believed the name dead — force propagation.
                self.stats.expiry_grace_readmissions += 1
            if outcome.changed or readmitted:
                changed.append((vspace, ad.name, outcome.record))
        if changed:
            self._send_triggered(changed, exclude=None)
            self._custody_retry()

    def _deliver_reliable(self, neighbor: str, payload: object) -> None:
        """In-order application delivery from the reliable channel."""
        if isinstance(payload, UpdateBatch):
            self._handle_update_batch(payload)
        elif isinstance(payload, NameWithdraw):
            self._handle_withdraw(payload, neighbor)
        elif isinstance(payload, CustodyTransfer):
            self._handle_custody_transfer(payload)

    def _handle_withdraw(self, withdraw: NameWithdraw, source: str) -> None:
        """Explicit name removal (reliable-delta mode)."""
        tree = self.trees.get(withdraw.vspace)
        if tree is None:
            return
        record = tree.record_for(withdraw.announcer)
        if record is None or record.route.is_local:
            return
        if record.route.next_hop != source:
            return  # only the route's source may withdraw it
        tree.remove(record)
        self._propagate_withdraw(withdraw.announcer, withdraw.vspace,
                                 exclude=source)

    def _propagate_withdraw(self, announcer, vspace: str,
                            exclude: Optional[str]) -> None:
        for neighbor in self.neighbors:
            if neighbor.address == exclude:
                continue
            self._send_control(
                neighbor.address,
                NameWithdraw(sender=self.address, announcer=announcer,
                             vspace=vspace),
            )

    def _send_control(self, neighbor_address: str, payload: object) -> None:
        """Send a name-state message to a neighbor on the configured
        transport (raw datagram, or the reliable channel)."""
        if self._reliable is not None:
            self._reliable.send(neighbor_address, payload)
        else:
            self.send(neighbor_address, INR_PORT, payload)

    def _handle_update_batch(self, batch: UpdateBatch) -> None:
        self.monitor.count_update_names(len(batch.updates))
        self.stats.update_names_processed += len(batch.updates)
        link_rtt = self.neighbors.rtt_to(batch.sender)
        changed: List[Tuple[str, NameSpecifier, NameRecord]] = []
        # One tree epoch per delivered batch, not per name: each touched
        # tree's batch is opened lazily the first time an update lands in
        # it (updates stay in arrival order — no regrouping by vspace)
        # and closed once the whole batch has been applied, so N periodic
        # refreshes invalidate lookup memo/subtree state at most once.
        opened: Dict[str, NameTree] = {}
        try:
            for update in batch.updates:
                tree = self.trees.get(update.vspace)
                if tree is None:
                    continue
                if update.vspace not in opened:
                    opened[update.vspace] = tree
                    tree.begin_batch()
                if self._apply_update(tree, update, batch.sender, link_rtt):
                    record = tree.record_for(update.announcer)
                    if record is not None:
                        changed.append((update.vspace, update.name, record))
        finally:
            for tree in opened.values():
                tree.end_batch()
        if changed:
            self._send_triggered(changed, exclude=batch.sender)
            self._custody_retry()

    def _apply_update(
        self, tree: NameTree, update: NameUpdate, sender: str, link_rtt: float
    ) -> bool:
        """Distributed Bellman-Ford acceptance; True when state changed
        in a way neighbors should hear about."""
        new_metric = update.route_metric + link_rtt
        existing = tree.record_for(update.announcer)
        incoming = NameRecord(
            announcer=update.announcer,
            endpoints=list(update.endpoints),
            anycast_metric=update.anycast_metric,
            route=Route(next_hop=sender, metric=new_metric),
            expires_at=self.now + update.lifetime,
        )
        if existing is None:
            tree.insert(update.name, incoming)
            return True
        if existing.route.is_local:
            # Never let a reflected update displace a directly-attached
            # service; the local announcement is authoritative.
            return False
        if self.config.partition_grace > 0 and existing.is_expired(self.now):
            # A graced record names a route that died with the
            # partition; comparing metrics against the corpse would
            # wrongly favor it. Any fresh news re-admits the name.
            tree.insert(update.name, incoming)
            self.stats.expiry_grace_readmissions += 1
            return True
        if existing.route.next_hop == sender:
            # News from the current next hop is always accepted, even if
            # the metric worsened (standard distance-vector rule).
            outcome = tree.insert(update.name, incoming)
            return outcome.changed
        if new_metric < existing.route.metric:
            outcome = tree.insert(update.name, incoming)
            return outcome.changed
        return False

    def _updates_for(
        self,
        entries: List[Tuple[str, NameSpecifier, NameRecord]],
        neighbor_address: str,
    ) -> List[NameUpdate]:
        updates = []
        for vspace, name, record in entries:
            if record.route.next_hop == neighbor_address:
                continue  # split horizon: never echo a route to its source
            updates.append(
                NameUpdate(
                    name=name,
                    announcer=record.announcer,
                    endpoints=tuple(record.endpoints),
                    anycast_metric=record.anycast_metric,
                    route_metric=record.route.metric,
                    # Reliable-delta entries are hard state: they live
                    # until withdrawn or their neighbor dies.
                    lifetime=(
                        1e12 if self._reliable is not None
                        else self.config.record_lifetime
                    ),
                    vspace=vspace,
                )
            )
        return updates

    def _all_entries(self) -> List[Tuple[str, NameSpecifier, NameRecord]]:
        entries = []
        for vspace, tree in self.trees.items():
            for name, record in tree.names():
                entries.append((vspace, name, record))
        return entries

    def _send_periodic_updates(self) -> None:
        if not self.active or self._terminated:
            return
        if self._reliable is not None:
            # Reliable-delta mode: names moved when they changed; the
            # periodic message degenerates to an empty keepalive that
            # feeds the neighbor liveness timeout.
            for neighbor in self.neighbors:
                self.send(
                    neighbor.address,
                    INR_PORT,
                    UpdateBatch(self.address, [], triggered=False),
                )
                self.stats.periodic_updates_sent += 1
            return
        entries = self._all_entries()
        for neighbor in self.neighbors:
            updates = self._updates_for(entries, neighbor.address)
            self.send(
                neighbor.address,
                INR_PORT,
                UpdateBatch(self.address, updates, triggered=False),
            )
            self.stats.periodic_updates_sent += 1

    def _send_triggered(
        self,
        entries: List[Tuple[str, NameSpecifier, NameRecord]],
        exclude: Optional[str],
    ) -> None:
        for neighbor in self.neighbors:
            if neighbor.address == exclude:
                continue
            updates = self._updates_for(entries, neighbor.address)
            if not updates:
                continue
            self._send_control(
                neighbor.address,
                UpdateBatch(self.address, updates, triggered=True),
            )
            self.stats.triggered_updates_sent += 1

    def _send_full_table(self, neighbor_address: str) -> None:
        entries = self._all_entries()
        updates = self._updates_for(entries, neighbor_address)
        self._send_control(
            neighbor_address,
            UpdateBatch(self.address, updates, triggered=True),
        )

    def _sweep(self) -> None:
        for tree in self.trees.values():
            expired = tree.expire(self.now, grace=self.config.partition_grace)
            if self._reliable is not None:
                # Explicitly withdraw locally announced names that died
                # (the service stopped refreshing its advertisement).
                for record in expired:
                    if record.route.is_local:
                        self._propagate_withdraw(
                            record.announcer, tree.vspace, exclude=None
                        )
        cutoff = self.now - self.config.neighbor_timeout
        for neighbor in self.neighbors.silent_since(cutoff):
            self._drop_neighbor(neighbor.address, rejoin=True)
        if (
            self.active
            and not self._terminated
            and len(self.neighbors) == 0
            and self.dsr_address is not None
            and not self._joining
            and self._pending_peer is None
        ):
            # A lonely resolver (lost handshakes, dead peers) keeps
            # trying to rejoin the overlay; if it really is the only
            # INR in the domain this is a cheap no-op.
            self._begin_join()

    # ------------------------------------------------------------------
    # Early binding and discovery queries
    # ------------------------------------------------------------------
    def _query_records(
        self, tree: NameTree, name: NameSpecifier
    ) -> List[NameRecord]:
        """Matches of ``name`` that a query answer may bind to.

        With a partition grace configured, expired records linger in
        the tree well past their lifetime; they must stay out of query
        answers — grace preserves state for fast readmission, it does
        not resurrect bindings. With grace off, the raw lookup set is
        returned untouched so baseline behavior stays byte-identical.
        """
        records = tree.lookup(name)
        if self.config.partition_grace > 0:
            return [r for r in records if not r.is_expired(self.now)]
        return list(records)

    def _handle_resolution(self, request: ResolutionRequest) -> None:
        span = self._span_start("inr.resolve", request.trace)
        vspace = request.name.vspaces()[0]
        tree = self.trees.get(vspace)
        if tree is None:
            self._span_note(span, f"foreign vspace {vspace}")
            self._forward_foreign_payload(vspace, request, span=span)
            return
        self.monitor.count_lookup()
        self.stats.lookups += 1
        self.stats.queries_served += 1
        bindings = []
        for record in self._query_records(tree, request.name):
            for endpoint in record.endpoints:
                bindings.append((endpoint, record.anycast_metric))
        bindings.sort(key=lambda pair: (pair[1], pair[0]))
        self.send(
            request.reply_to,
            request.reply_port,
            ResolutionResponse(request_id=request.request_id, bindings=bindings),
        )
        self._span_end(span)
        self._sync_memo_stats()

    def _handle_discovery(self, request: DiscoveryRequest) -> None:
        from ..naming import VSPACE_ATTRIBUTE

        span = self._span_start("inr.discover", request.trace)
        if request.filter.root(VSPACE_ATTRIBUTE) is not None:
            # An explicit vspace constrains the search — and may need
            # forwarding to the resolver that routes it.
            vspace = request.filter.vspaces()[0]
            tree = self.trees.get(vspace)
            if tree is None:
                self._span_note(span, f"foreign vspace {vspace}")
                self._forward_foreign_payload(vspace, request, span=span)
                return
            searched = [tree]
        else:
            # Section 2.2: a discovery message matches against "all the
            # names it knows about" — every vspace this INR routes.
            searched = list(self.trees.values())
        self.monitor.count_lookup()
        self.stats.lookups += 1
        self.stats.queries_served += 1
        names = []
        for tree in searched:
            names.extend(
                (tree.get_name(record), record.anycast_metric)
                for record in self._query_records(tree, request.filter)
            )
        names.sort(key=lambda pair: pair[0].to_wire())
        self.send(
            request.reply_to,
            request.reply_port,
            DiscoveryResponse(request_id=request.request_id, names=names),
        )
        self._span_end(span)
        self._sync_memo_stats()

    # ------------------------------------------------------------------
    # The forwarding agent: late binding (Section 2.3)
    # ------------------------------------------------------------------
    def _handle_data(self, packet: DataPacket, source: str) -> None:
        try:
            message = packet.message
        except ValueError:
            # Malformed packet (bad header, unparsable names): a robust
            # resolver drops it rather than dying (design goal iii).
            # No span either — an undecodable frame has no context.
            self.stats.drops_malformed += 1
            return
        span = self._span_start("inr.hop", message.trace)
        vspace = message.destination.vspaces()[0]
        tree = self.trees.get(vspace)
        if tree is None:
            self.stats.packets_forwarded_foreign_vspace += 1
            self._span_note(span, f"foreign vspace {vspace}")
            self._forward_foreign_payload(vspace, packet, span=span)
            return
        self.monitor.count_lookup()
        self.stats.lookups += 1
        # Charge one LOOKUP-NAME per packet per INR, then route.
        self._work(
            self.costs.lookup, lambda: self._route(tree, packet, source, span)
        )

    def _route(
        self, tree: NameTree, packet: DataPacket, source: str, span=None
    ) -> None:
        message = packet.message
        if message.binding is Binding.EARLY:
            # The B bit-flag (Figure 10): the sender wants the
            # name-to-location bindings back, not payload forwarding.
            self._answer_early_binding(tree, message, span)
            return
        if self.cache is not None and message.accept_cached:
            entry = self.cache.lookup(message.destination, self.now)
            if entry is not None:
                self._answer_from_cache(message, entry, span)
                return
        records = tree.lookup(message.destination)
        if self.cache is not None and message.wants_caching:
            if message.source.is_concrete() and not message.source.is_empty:
                self.cache.store(
                    message.source, message.data, self.now, message.cache_lifetime
                )
        if not records:
            if self._custody_take(
                tree.vspace, packet, "no-route", PRIORITY_UNKNOWN_NAME, span
            ):
                return
            self.stats.drops_no_route += 1
            self._span_end(span, DROP_PREFIX + "no-route")
            return
        # lookup() returns a set; order the survivors deterministically
        # before any scheduling/emission decision observes hash order.
        live = sorted(
            (r for r in records if not r.is_expired(self.now)),
            key=lambda r: str(r.announcer),
        )
        if not live:
            # Every match outlived its soft-state lifetime but the sweep
            # has not collected it yet; routing through it would target
            # a service presumed dead. The name *was* known here, so a
            # custodian holds the payload at the highest priority.
            if self._custody_take(
                tree.vspace, packet, "expired-record", PRIORITY_KNOWN_NAME, span
            ):
                return
            self.stats.drops_expired_record += 1
            self._span_end(span, DROP_PREFIX + "expired-record")
            return
        records = live
        if message.delivery is Delivery.ANYCAST:
            self._route_anycast(tree, packet, records, span)
        else:
            self._route_multicast(
                tree, packet, records, arrived_from=source, span=span
            )
        self._sync_memo_stats()

    def _answer_early_binding(
        self, tree: NameTree, message: InsMessage, span=None
    ) -> None:
        """Resolve the destination and send the [ip, [port, transport]]
        list (plus metrics) back to the requester's intentional name."""
        import json

        if message.source.is_empty or not message.source.is_concrete():
            # Nowhere to send the answer: early binding over the data
            # path requires an addressable source name.
            self.stats.drops_malformed += 1
            self._span_end(span, DROP_PREFIX + "malformed")
            return
        bindings = []
        for record in self._query_records(tree, message.destination):
            for endpoint in record.endpoints:
                bindings.append(
                    {
                        "host": endpoint.host,
                        "port": endpoint.port,
                        "transport": endpoint.transport,
                        "metric": record.anycast_metric,
                    }
                )
        bindings.sort(key=lambda b: (b["metric"], b["host"], b["port"]))
        reply = InsMessage(
            destination=message.source.copy(),
            source=message.destination.copy(),
            data=json.dumps({"bindings": bindings}).encode("utf-8"),
            binding=Binding.LATE,
            delivery=Delivery.ANYCAST,
        )
        self.stats.queries_served += 1
        self.handle_message(DataPacket(raw=reply.encode()), self.address)
        self._span_end(span, "early-binding")

    def _answer_from_cache(
        self, message: InsMessage, entry, span=None
    ) -> None:
        """Reply to a request directly from the packet cache."""
        self.stats.packets_answered_from_cache += 1
        reply = InsMessage(
            destination=message.source.copy(),
            source=entry.name.copy(),
            data=entry.data,
            binding=Binding.LATE,
            delivery=Delivery.ANYCAST,
        )
        self.handle_message(DataPacket(raw=reply.encode()), self.address)
        self._span_end(span, "cache-hit")

    def _route_anycast(
        self,
        tree: NameTree,
        packet: DataPacket,
        records: Sequence[NameRecord],
        span=None,
    ) -> None:
        best = min(
            records, key=lambda r: (r.anycast_metric, r.route.metric, str(r.announcer))
        )
        if best.route.is_local:
            self._deliver_local(tree, packet, best, span)
            return
        if self._next_hop_suspect(best.route.next_hop):
            # The route exists but its next hop has gone silent —
            # forwarding would feed the payload to a dead link long
            # before the neighbor timeout flushes the route.
            if self._custody_take(
                tree.vspace, packet, "next-hop-suspect", PRIORITY_KNOWN_NAME, span
            ):
                return
        self._forward_to_inr(packet, best.route.next_hop, span)

    def _route_multicast(
        self,
        tree: NameTree,
        packet: DataPacket,
        records: Sequence[NameRecord],
        arrived_from: str,
        span=None,
    ) -> None:
        # Reverse-path rule: never forward a copy back over the link the
        # packet arrived on. The overlay is a tree, so this suffices to
        # keep the per-name shortest-path forwarding loop-free.
        # A multicast hop shares one span across its fan-out; the first
        # branch outcome settles the status (end_span is idempotent) and
        # the remaining branches land as annotations.
        next_hops: Set[str] = set()
        for record in records:
            if record.route.is_local:
                self._deliver_local(tree, packet, record, span)
            elif record.route.next_hop != arrived_from:
                next_hops.add(record.route.next_hop)
        for next_hop in sorted(next_hops):
            self._span_note(span, f"multicast copy to {next_hop}")
            self._forward_to_inr(packet, next_hop, span)

    def _deliver_local(
        self, tree: NameTree, packet: DataPacket, record, span=None
    ) -> None:
        if not record.endpoints:
            self.stats.drops_no_endpoint += 1
            self._span_end(span, DROP_PREFIX + "no-endpoint")
            return
        endpoint = record.endpoints[0]
        self.stats.packets_delivered_locally += 1

        def deliver() -> None:
            self.send(endpoint.host, endpoint.port, packet)
            self._span_end(span, "delivered")

        self._work(self.costs.local_delivery(len(tree)), deliver)

    def _forward_to_inr(
        self, packet: DataPacket, next_hop: str, span=None
    ) -> None:
        message = packet.message
        if message.hop_limit <= 0:
            self.stats.drops_hop_limit += 1
            self._span_end(span, DROP_PREFIX + "hop-limit")
            return
        outgoing = message.hop_decremented()
        if span is not None:
            # Re-parent the context so the next hop's span nests under
            # this one: the exported tree then mirrors the actual path.
            outgoing.trace = span.context
        forwarded = DataPacket(raw=outgoing.encode())
        self.stats.packets_forwarded += 1

        def forward() -> None:
            self.send(next_hop, INR_PORT, forwarded)
            self._span_end(span, "forwarded")

        self._work(self.costs.forward, forward)

    # ------------------------------------------------------------------
    # Disruption tolerance: custody store-and-forward (repro.dtn)
    # ------------------------------------------------------------------
    def _next_hop_suspect(self, next_hop: Optional[str]) -> bool:
        """True when forwarding to ``next_hop`` would likely feed a dead
        link: the neighbor vanished, or has been silent longer than the
        configured suspicion threshold. Only consulted when custody is
        on — without a custodian there is nothing better to do than try."""
        silence = self.config.custody_suspect_silence
        if self.custody is None or silence <= 0 or next_hop is None:
            return False
        neighbor = self.neighbors.get(next_hop)
        if neighbor is None:
            return True
        return self.now - neighbor.last_heard > silence

    def _custody_take(
        self,
        vspace: str,
        packet: DataPacket,
        cause: str,
        priority: int,
        span=None,
    ) -> bool:
        """Take custody of an unroutable payload instead of dropping it.

        Returns True when the payload's fate was settled here — held,
        or evicted at the door (which is itself an attributed drop) —
        and False when custody does not apply, in which case the caller
        falls through to the paper's drop behavior. Only late-binding
        anycast is eligible: early binding answers from current state
        by design, and a multicast payload has no single custodian.
        """
        if self.custody is None:
            return False
        message = packet.message
        if message.binding is not Binding.LATE:
            return False
        if message.delivery is not Delivery.ANYCAST:
            return False
        entry, evicted = self.custody.accept(
            packet.raw,
            message.destination,
            vspace,
            self.now,
            ttl=self.config.custody_ttl,
            priority=priority,
            cause=cause,
            trace=message.trace,
        )
        for victim in evicted:
            self._custody_drop(victim, "custody-evicted")
        if entry is None:
            # Refused at the door: the store is full of higher-priority
            # payloads, so the newcomer is the cheapest loss.
            self.stats.drops_custody_evicted += 1
            self._span_end(span, DROP_PREFIX + "custody-evicted")
            return True
        self.stats.custody_accepted += 1
        self._span_note(span, f"custody cause={cause} priority={priority}")
        self._span_end(span, "custody-accepted")
        return True

    def _custody_drop(self, entry: CustodyEntry, cause: str) -> None:
        """Attribute the final loss of a custodied payload: a distinct
        drop counter per cause, and a span status a trace query can
        find (satellite: every drop path stays attributable)."""
        if cause == "custody-expired":
            self.stats.drops_custody_expired += 1
        elif cause == "custody-evicted":
            self.stats.drops_custody_evicted += 1
        else:
            self.stats.drops_custody_transfer_failed += 1
        span = self._span_start("inr.custody", entry.trace, cause=entry.cause)
        self._span_end(span, DROP_PREFIX + cause)

    def _custody_tick(self) -> None:
        """Periodic custody maintenance: lapse overdue payloads, then
        re-attempt the rest. The timer is the backstop that catches
        link heals no triggered update announces."""
        if self.custody is None or self._terminated:
            return
        for entry in self.custody.expire(self.now):
            self._custody_drop(entry, "custody-expired")
        self._custody_retry()

    def _custody_retry(self) -> None:
        """Release every held payload whose destination is resolvable
        again, re-injecting it through the normal forwarding path (late
        binding: the name is re-resolved at release time, so the
        payload goes wherever the service is *now*)."""
        if self.custody is None or not len(self.custody):
            return
        for entry in self.custody.entries():
            tree = self.trees.get(entry.vspace)
            if tree is None:
                continue
            live = [
                r
                for r in tree.lookup(entry.destination)
                if not r.is_expired(self.now)
            ]
            if not live:
                continue
            best = min(
                live,
                key=lambda r: (r.anycast_metric, r.route.metric, str(r.announcer)),
            )
            if not best.route.is_local and self._next_hop_suspect(
                best.route.next_hop
            ):
                continue
            if self.custody.release(entry):
                self.stats.custody_released += 1
                span = self._span_start(
                    "inr.custody", entry.trace, cause=entry.cause
                )
                self._span_end(span, "custody-released")
                self._handle_data(DataPacket(raw=entry.raw), self.address)

    def _custody_handoff(self) -> None:
        """Migrate held payloads to a surviving neighbor (termination
        path). Deadlines ride along unchanged — a handoff must not
        reset a payload's custody clock. Best-effort by nature: the
        sender is about to stop and cannot retransmit past its death."""
        entries = self.custody.drain()
        if not entries:
            return
        parent = self.neighbors.parent
        if parent is not None:
            recipient: Optional[str] = parent.address
        else:
            addresses = sorted(self.neighbors.addresses)
            recipient = addresses[0] if addresses else None
        if recipient is None:
            # Nobody left to hand custody to; the payloads die with us.
            for entry in entries:
                self._custody_drop(entry, "custody-transfer-failed")
            return
        records = tuple(
            CustodyRecord(
                raw=entry.raw,
                vspace=entry.vspace,
                deadline=entry.deadline,
                priority=entry.priority,
                transfers=entry.transfers + 1,
            )
            for entry in entries
        )
        self._send_control(
            recipient, CustodyTransfer(sender=self.address, records=records)
        )
        self.stats.custody_transfers_sent += 1
        for entry in entries:
            span = self._span_start("inr.custody", entry.trace, cause=entry.cause)
            self._span_note(span, f"handoff to {recipient}")
            self._span_end(span, "custody-transferred")

    def _handle_custody_transfer(self, transfer: CustodyTransfer) -> None:
        """Adopt payloads from a departing custodian, preserving each
        absolute deadline, then immediately re-attempt them — this
        resolver may well have the route its predecessor lacked."""
        self.stats.custody_transfers_received += 1
        if self.custody is None:
            # No custody store here: the handoff's payloads have no
            # custodian left and are lost, attributably.
            for record in transfer.records:
                try:
                    context = InsMessage.decode(record.raw).trace
                except Exception:
                    context = None
                self.stats.drops_custody_transfer_failed += 1
                span = self._span_start("inr.custody", context)
                self._span_end(span, DROP_PREFIX + "custody-transfer-failed")
            return
        snapshot = tuple(
            (
                record.raw,
                record.vspace,
                record.deadline,
                record.priority,
                "transferred",
                record.transfers,
            )
            for record in transfer.records
        )
        before = self.custody.counts.accepted
        lapsed, evicted = self.custody.adopt(snapshot, self.now)
        self.stats.custody_accepted += self.custody.counts.accepted - before
        for entry in lapsed:
            self._custody_drop(entry, "custody-expired")
        for entry in evicted:
            self._custody_drop(entry, "custody-evicted")
        self._custody_retry()

    # ------------------------------------------------------------------
    # Foreign virtual spaces (Section 2.5)
    # ------------------------------------------------------------------
    def _forward_foreign_payload(
        self, vspace: str, payload: object, span=None
    ) -> None:
        resolver = self._vspace_cache.get(vspace)
        if resolver is not None:
            self._forward_foreign_to(resolver, payload, span)
            return
        if self.dsr_address is None:
            self.stats.drops_foreign_vspace += 1
            self._span_end(span, DROP_PREFIX + "foreign-vspace")
            return
        waiting = self._vspace_waiting.setdefault(vspace, [])
        waiting.append((payload, span))
        if len(waiting) == 1:
            self.send(
                self.dsr_address,
                DSR_PORT,
                DsrVspaceRequest(
                    vspace=vspace, reply_to=self.address, reply_port=self.port
                ),
            )

    def _forward_foreign_to(
        self, resolver: str, payload: object, span=None
    ) -> None:
        def forward() -> None:
            self.send(resolver, INR_PORT, payload)
            self._span_end(span, "forwarded-foreign")

        self._work(self.costs.vspace_forward, forward)

    def _handle_vspace_response(self, response: DsrVspaceResponse) -> None:
        self._tally_termination_vote(response)
        waiting = self._vspace_waiting.pop(response.vspace, [])
        if not response.resolvers:
            self.stats.drops_foreign_vspace += len(waiting)
            for _payload, span in waiting:
                self._span_end(span, DROP_PREFIX + "foreign-vspace")
            return
        resolver = response.resolvers[0]
        if len(self._vspace_cache) >= self.config.vspace_cache_size:
            self._vspace_cache.pop(next(iter(self._vspace_cache)))
        self._vspace_cache[response.vspace] = resolver
        for payload, span in waiting:
            self._forward_foreign_to(resolver, payload, span)

    # ------------------------------------------------------------------
    # Load balancing (Section 2.5)
    # ------------------------------------------------------------------
    def _check_load(self) -> None:
        """Section 2.5 policy with hysteresis: decisions compare the
        (optionally EWMA-smoothed) rates against the thresholds, fire
        only after the configured number of consecutive signals, and
        respect a cooldown between actions — with the defaults
        (alpha=1, streak=1, cooldown=0) this is exactly the raw
        act-on-first-signal behavior."""
        sample = self.monitor.sample(self.now)
        if self.spawner is None or self._spawn_pending:
            return
        config = self.config
        if self.now - self._last_load_action < config.load_action_cooldown:
            return
        if sample.ewma_lookups_per_second > config.spawn_lookup_rate:
            self._overload_lookup_streak += 1
            self._overload_update_streak = 0
            self._underload_streak = 0
            if self._overload_lookup_streak >= config.overload_consecutive_samples:
                self._overload_lookup_streak = 0
                self._last_load_action = self.now
                self._claim_candidate(purpose="spawn")
            return
        self._overload_lookup_streak = 0
        if (
            sample.ewma_update_names_per_second > config.delegate_update_rate
            and len(self.trees) > 1
        ):
            self._overload_update_streak += 1
            self._underload_streak = 0
            if self._overload_update_streak >= config.overload_consecutive_samples:
                if self.delegation.busy or not self.delegation.can_start(self.now):
                    return  # one handoff at a time; cooldown after aborts
                self._overload_update_streak = 0
                self._last_load_action = self.now
                self._claim_candidate(purpose="delegate")
            return
        self._overload_update_streak = 0
        if (
            self.was_spawned
            and sample.ewma_lookups_per_second < config.terminate_lookup_rate
            and self.now - self._started_at > config.minimum_lifetime
        ):
            self._underload_streak += 1
            if self._underload_streak >= config.underload_consecutive_samples:
                if self.delegation.busy:
                    return  # never retire mid-handoff (either role)
                self._underload_streak = 0
                self._consider_termination()
        else:
            self._underload_streak = 0

    def _consider_termination(self) -> None:
        """Self-terminate only if every vspace this INR routes is also
        routed by another resolver — a delegated vspace's sole resolver
        must stay up however idle it is."""
        if self._termination_votes is not None:
            return  # a check is already in flight
        if not self.trees:
            # A spawned recipient whose handoff aborted routes nothing
            # and serves nobody: retire immediately (terminate() puts
            # the node back in the candidate pool for the retry).
            self.terminate()
            return
        self._termination_votes = {vspace: None for vspace in self.trees}
        for vspace in self.trees:
            self.send(
                self.dsr_address,
                DSR_PORT,
                DsrVspaceRequest(
                    vspace=vspace, reply_to=self.address, reply_port=self.port
                ),
            )

    def _tally_termination_vote(self, response: DsrVspaceResponse) -> None:
        votes = self._termination_votes
        if votes is None or response.vspace not in votes:
            return
        votes[response.vspace] = any(
            resolver != self.address for resolver in response.resolvers
        )
        if any(vote is None for vote in votes.values()):
            return
        self._termination_votes = None
        if all(votes.values()):
            self.terminate()

    def _claim_candidate(self, purpose: str) -> None:
        self._spawn_pending = True
        self._claim_purpose = purpose
        self.send(
            self.dsr_address,
            DSR_PORT,
            DsrClaimCandidate(
                requester=self.address, reply_to=self.address, reply_port=self.port
            ),
        )

    def _handle_claim_response(self, response: DsrClaimResponse) -> None:
        self._spawn_pending = False
        if not response.candidate or self.spawner is None:
            return
        purpose = getattr(self, "_claim_purpose", "spawn")
        if purpose == "spawn":
            # Lookup overload: replicate this INR's vspaces on the
            # candidate; clients re-selecting a default INR spread out.
            self.spawner(response.candidate, self.vspaces)
        elif self.config.delegation_two_phase:
            self.delegation.begin(response.candidate)
        else:
            self._delegate_vspace(response.candidate)

    def _delegate_vspace(self, candidate: str) -> None:
        """Hand the busiest vspace to a fresh INR on ``candidate``.

        The single-shot legacy path (``delegation_two_phase=False``):
        spawn, fling one update batch, drop the tree. No offer, no
        acks, no commit — a crash on either side mid-handoff loses the
        vspace's names until services re-advertise, and can leave the
        space with no authoritative resolver. Kept as the ablation the
        delegation chaos scenario measures against.
        """
        if len(self.trees) <= 1:
            return
        vspace = max(self.trees, key=lambda v: len(self.trees[v]))
        tree = self.trees[vspace]
        self.spawner(candidate, (vspace,))
        updates = [
            NameUpdate(
                name=name,
                announcer=record.announcer,
                endpoints=tuple(record.endpoints),
                anycast_metric=record.anycast_metric,
                route_metric=record.route.metric,
                lifetime=self.config.record_lifetime,
                vspace=vspace,
            )
            for name, record in tree.names()
        ]
        self.send(candidate, INR_PORT, UpdateBatch(self.address, updates, triggered=True))
        del self.trees[vspace]
        self._vspace_cache[vspace] = candidate
        self._register()  # refresh the DSR's view of our vspaces

    def __repr__(self) -> str:
        return (
            f"INR({self.address}, vspaces={list(self.trees)}, "
            f"names={self.name_count()}, neighbors={len(self.neighbors)})"
        )
