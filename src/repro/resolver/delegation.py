"""Crash-safe vspace delegation: the two-phase handoff (PROTOCOL.md §11).

The paper's §2.5 cure for update overload is to delegate a virtual
space to a freshly spawned INR. Done as a single-shot transfer (the
``delegation_two_phase=False`` ablation, kept in ``INR._delegate_vspace``)
the one mechanism meant to save an overloaded resolver can itself lose
every name in the vspace if either side dies mid-handoff. This module
makes the handoff survive crashes on both sides:

Donor state machine::

    OFFER ──accept──► TRANSFER ──final chunk──► AWAIT-COMMIT ──commit──► done
      │ timeout·N        │ timeout·N                │ timeout·N
      └──────────────────┴───────────► ABORT ◄──────┘   (tree kept)

Recipient state machine::

    (offer) ──► STAGING ──final chunk──► COMMITTED ──echo──► settled
                   │ abort                  │ abort
                   ▼                        ▼
                discard                  ROLLBACK (un-adopt)

Safety comes from three rules:

1. **The donor keeps serving.** The vspace's tree stays in the donor's
   ``trees`` — answering lookups and accepting updates — until the
   recipient's COMMIT lands, and the recipient stages records *outside*
   its ``trees`` until the final chunk. At every instant before commit
   exactly one side is authoritative, and it holds all the state.
2. **Fencing.** Every handoff carries an id that is monotonic per donor
   even across donor crashes (restart incarnation in the high bits). A
   recipient remembers the ids it has settled and the highest id each
   donor has used, so a stale retransmission can never reopen or
   resurrect a handoff — it is answered with the settled outcome, or
   dropped and counted (``delegate_stale_dropped``).
3. **Abort wins, and only the donor aborts what it never finalized.**
   A donor that crashes mid-handoff forgets the in-flight id; if the
   recipient meanwhile committed and retransmits its COMMIT, the
   restarted donor sees an unknown id — it answers with an echo if it
   no longer routes the vspace (the commit must have finalized before
   the crash, since ``delegated_away`` is in the crash snapshot), and
   with an ABORT if it still routes it (it cannot have finalized). The
   recipient rolls the adoption back on such an abort, so the
   two-generals race always converges to exactly one authority.

Crash snapshots follow the custody/DSR pattern: ``crash()`` preserves
the *finalized* facts only — which vspaces were delegated away and
which were adopted — and ``restart()`` re-applies them to the rebuilt
tree set. Adopted trees come back empty and refill from the soft-state
advertisement stream the donor forwards; nothing in-flight survives, by
design.

Layering: this module sits inside ``resolver`` (same lint-DAG node) and
speaks only ``message.delegation`` frames; wall-clock access is
forbidden here as everywhere in ``src`` — all time comes from the
hosting INR's simulated clock.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..message.delegation import (
    DelegateAbort,
    DelegateAccept,
    DelegateCommit,
    DelegateOffer,
    DelegateRecord,
    DelegateTransfer,
    OFFER_ACCEPTED,
    compose_handoff_id,
)
from ..nametree import AnnouncerID, Endpoint, NameRecord, NameTree, Route
from ..obs import DROP_PREFIX, STATUS_OK
from .ports import INR_PORT

#: How many settled handoff outcomes a recipient remembers per process.
#: Old entries fall off FIFO; the per-donor fence still rejects their
#: ids as stale, so forgetting an outcome only downgrades the answer
#: from "resend terminal" to "drop and count".
SETTLED_MEMORY = 32

#: Cap on donor-side remembered aborted ids (late COMMITs for them get
#: an ABORT back instead of a mistaken echo).
ABORTED_MEMORY = 64


@dataclass
class DonorHandoff:
    """Donor-side state for one in-flight handoff."""

    handoff_id: int
    vspace: str
    recipient: str
    chunks: List[Tuple[DelegateRecord, ...]]
    total_records: int
    phase: str = "offer"  # offer -> transfer -> await-commit
    next_chunk: int = 0
    chunks_acked: int = 0
    retries: int = 0
    #: bumped on every (re)send; timers fence on it so a superseded
    #: timeout cannot double-fire into a newer phase
    epoch: int = 0


@dataclass
class RecipientHandoff:
    """Recipient-side state for one in-flight handoff."""

    handoff_id: int
    vspace: str
    donor: str
    total_records: int
    phase: str = "staging"  # staging -> committed (then settled)
    expected_seq: int = 0
    staged: List[DelegateRecord] = field(default_factory=list)
    commit_resends: int = 0
    epoch: int = 0


class DelegationCoordinator:
    """Both sides of the two-phase handoff, hosted inside one INR.

    The coordinator owns no timers or sockets of its own — it drives
    everything through the hosting INR's :meth:`send`/:meth:`set_timer`
    so simulated time, CPU charging and tracing all flow through the
    same paths as every other resolver message.
    """

    def __init__(self, inr) -> None:
        self.inr = inr
        self._next_seq = 0
        #: at most one outbound handoff at a time; overload persistence
        #: re-triggers the next attempt through the load checker
        self.donor: Optional[DonorHandoff] = None
        #: in-flight inbound handoffs by id (staging or awaiting echo)
        self.recipients: Dict[int, RecipientHandoff] = {}
        #: settled inbound outcomes: id -> (outcome, vspace, donor)
        self._settled: "OrderedDict[int, Tuple[str, str, str]]" = OrderedDict()
        #: per-donor fence: highest handoff id ever accepted
        self._fence: Dict[str, int] = {}
        #: vspaces this resolver handed away, and to whom (finalized
        #: only; survives crashes via the snapshot)
        self.delegated_away: Dict[str, str] = {}
        #: vspaces this resolver adopted, and from whom (ditto)
        self.adopted: Dict[str, str] = {}
        #: the handoff id each adoption arrived under — carried in the
        #: crash snapshot so a restarted recipient can probe its donor
        #: (see :meth:`adopt_snapshot`)
        self._adopted_ids: Dict[str, int] = {}
        #: ids this donor aborted (a late COMMIT for one gets an ABORT)
        self._aborted_ids: "OrderedDict[int, str]" = OrderedDict()
        self._last_abort_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Queries the INR's policy code asks
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while any handoff is in flight on either side — the
        load checker neither starts another delegation nor lets a
        spawned resolver consider termination meanwhile."""
        return self.donor is not None or bool(self.recipients)

    def can_start(self, now: float) -> bool:
        """Idempotent-retry pacing: after an abort the donor sits out
        ``delegation_retry_cooldown`` before claiming a fresh candidate."""
        if self.donor is not None:
            return False
        if self._last_abort_at is None:
            return True
        return now - self._last_abort_at >= self.inr.config.delegation_retry_cooldown

    # ------------------------------------------------------------------
    # Crash snapshot (the DSR/custody stable-storage pattern)
    # ------------------------------------------------------------------
    def crash_snapshot(self) -> tuple:
        """The finalized delegation facts that survive this process."""
        return (
            tuple(sorted(self.delegated_away.items())),
            tuple(
                (vspace, donor, self._adopted_ids.get(vspace, 0))
                for vspace, donor in sorted(self.adopted.items())
            ),
        )

    def adopt_snapshot(self, snapshot: tuple) -> None:
        """Re-apply a crash snapshot after ``restart()`` rebuilt the
        initial tree set: delegated-away vspaces leave again, adopted
        ones come back (empty — soft state refills them).

        Each restored adoption also re-sends its COMMIT as a probe.
        The donor's answer resolves the one race a single-sided restart
        cannot: if the donor crashed too before finalizing, it still
        routes the vspace and answers with an ABORT that rolls this
        adoption back (abort wins — exactly one authority); a finalized
        donor echoes the COMMIT, which :meth:`_on_commit` recognizes
        and drops."""
        if not snapshot:
            return
        delegated, adopted = snapshot
        inr = self.inr
        for vspace, recipient in delegated:
            self.delegated_away[vspace] = recipient
            inr.trees.pop(vspace, None)
            inr._vspace_cache[vspace] = recipient
        for vspace, donor, handoff_id in adopted:
            self.adopted[vspace] = donor
            self._adopted_ids[vspace] = handoff_id
            if vspace not in inr.trees:
                inr.trees[vspace] = NameTree(vspace=vspace)
            inr.send(
                donor,
                INR_PORT,
                DelegateCommit(
                    sender=inr.address, handoff_id=handoff_id, vspace=vspace
                ),
            )

    def shutdown(self) -> None:
        """Graceful termination: tell the recipient of any in-flight
        outbound handoff not to wait for chunks that will never come."""
        if self.donor is not None:
            self._donor_abort("donor-terminating")

    # ------------------------------------------------------------------
    # Donor: starting a handoff
    # ------------------------------------------------------------------
    def begin(self, candidate: str) -> None:
        """Hand the busiest vspace to a fresh INR spawned on
        ``candidate``, via the two-phase protocol."""
        inr = self.inr
        if self.donor is not None or len(inr.trees) <= 1 or inr.spawner is None:
            return
        vspace = max(inr.trees, key=lambda v: len(inr.trees[v]))
        tree = inr.trees[vspace]
        now = inr.now
        records = []
        for name, record in tree.names():
            lifetime = record.expires_at - now
            if lifetime <= 0:
                continue  # the sweep will collect it; don't hand off a corpse
            records.append(
                DelegateRecord(
                    name=name,
                    announcer_host=record.announcer.host,
                    announcer_startup=record.announcer.startup_time,
                    endpoints=tuple(
                        (e.host, e.port, e.transport) for e in record.endpoints
                    ),
                    anycast_metric=record.anycast_metric,
                    route_metric=record.route.metric,
                    lifetime=lifetime,
                )
            )
        chunk = max(1, self.inr.config.delegation_chunk_names)
        chunks = [
            tuple(records[i:i + chunk]) for i in range(0, len(records), chunk)
        ] or [()]
        handoff_id = compose_handoff_id(
            inr.restarts & 0xFFFF, self._next_seq & 0xFFFF
        )
        self._next_seq += 1
        # The recipient is spawned with NO vspaces: it must not appear
        # authoritative for anything until it adopts the staged tree.
        inr.spawner(candidate, ())
        self.donor = DonorHandoff(
            handoff_id=handoff_id,
            vspace=vspace,
            recipient=candidate,
            chunks=chunks,
            total_records=len(records),
        )
        inr.stats.delegations_started += 1
        self._emit_span("donor", "offer", handoff_id, vspace,
                        note=f"{len(records)} records to {candidate}")
        self._send_offer(self.donor)

    def _send_offer(self, handoff: DonorHandoff) -> None:
        inr = self.inr
        handoff.epoch += 1
        inr.send(
            handoff.recipient,
            INR_PORT,
            DelegateOffer(
                sender=inr.address,
                handoff_id=handoff.handoff_id,
                vspace=handoff.vspace,
                total_records=handoff.total_records,
            ),
        )
        inr.set_timer(
            inr.config.delegation_offer_timeout,
            self._donor_timeout,
            handoff.handoff_id,
            handoff.epoch,
        )

    def _send_chunk(self, handoff: DonorHandoff) -> None:
        inr = self.inr
        index = handoff.next_chunk
        final = index == len(handoff.chunks) - 1
        handoff.epoch += 1
        records = handoff.chunks[index]
        inr.send(
            handoff.recipient,
            INR_PORT,
            DelegateTransfer(
                sender=inr.address,
                handoff_id=handoff.handoff_id,
                vspace=handoff.vspace,
                seq=index,
                final=final,
                records=records,
            ),
        )
        inr.stats.delegate_records_sent += len(records)
        if final and handoff.phase != "await-commit":
            handoff.phase = "await-commit"
            self._emit_span("donor", "await-commit", handoff.handoff_id,
                            handoff.vspace)
        timeout = (
            inr.config.delegation_commit_timeout
            if final
            else inr.config.delegation_ack_timeout
        )
        inr.set_timer(timeout, self._donor_timeout, handoff.handoff_id,
                      handoff.epoch)

    def _donor_timeout(self, handoff_id: int, epoch: int) -> None:
        inr = self.inr
        if inr._terminated or getattr(inr, "delegation", None) is not self:
            return
        handoff = self.donor
        if handoff is None or handoff.handoff_id != handoff_id:
            return
        if handoff.epoch != epoch:
            return  # progress happened since this timer was armed
        handoff.retries += 1
        if handoff.retries > inr.config.delegation_max_retries:
            self._donor_abort(f"timeout:{handoff.phase}")
            return
        if handoff.phase == "offer":
            self._send_offer(handoff)
        else:
            # transfer and await-commit both retransmit the current
            # chunk; a committed recipient answers the final chunk's
            # retransmission with its COMMIT.
            self._send_chunk(handoff)

    def _donor_abort(self, reason: str, notify: bool = True) -> None:
        inr = self.inr
        handoff = self.donor
        if handoff is None:
            return
        self.donor = None
        self._last_abort_at = inr.now
        self._aborted_ids[handoff.handoff_id] = handoff.vspace
        while len(self._aborted_ids) > ABORTED_MEMORY:
            self._aborted_ids.popitem(last=False)
        inr.stats.delegations_aborted += 1
        if notify:
            inr.send(
                handoff.recipient,
                INR_PORT,
                DelegateAbort(
                    sender=inr.address,
                    handoff_id=handoff.handoff_id,
                    vspace=handoff.vspace,
                    reason=reason,
                ),
            )
        # The tree never left self.trees: the donor simply remains
        # authoritative, and the load checker retries (new candidate,
        # new id) after the cooldown.
        self._emit_span("donor", "abort", handoff.handoff_id, handoff.vspace,
                        status=f"abort:{reason}")

    def _donor_finalize(self, handoff: DonorHandoff) -> None:
        """COMMIT landed: let go of the vspace, atomically with the
        re-registration that removes it from the DSR's map."""
        inr = self.inr
        self.donor = None
        inr.trees.pop(handoff.vspace, None)
        self.delegated_away[handoff.vspace] = handoff.recipient
        if len(inr._vspace_cache) >= inr.config.vspace_cache_size:
            inr._vspace_cache.pop(next(iter(inr._vspace_cache)))
        inr._vspace_cache[handoff.vspace] = handoff.recipient
        inr._register()
        inr.stats.delegations_committed += 1
        # Echo stops the recipient's COMMIT retransmission.
        inr.send(
            handoff.recipient,
            INR_PORT,
            DelegateCommit(
                sender=inr.address,
                handoff_id=handoff.handoff_id,
                vspace=handoff.vspace,
            ),
        )
        self._emit_span("donor", "commit", handoff.handoff_id, handoff.vspace,
                        note=f"delegated to {handoff.recipient}")

    # ------------------------------------------------------------------
    # Message dispatch (called from INR.handle_message)
    # ------------------------------------------------------------------
    def on_message(self, payload, source: str) -> None:
        if isinstance(payload, DelegateOffer):
            self._on_offer(payload, source)
        elif isinstance(payload, DelegateAccept):
            self._on_accept(payload)
        elif isinstance(payload, DelegateTransfer):
            self._on_transfer(payload, source)
        elif isinstance(payload, DelegateCommit):
            self._on_commit(payload, source)
        elif isinstance(payload, DelegateAbort):
            self._on_abort(payload)

    # -- donor-side receives -------------------------------------------
    def _on_accept(self, accept: DelegateAccept) -> None:
        handoff = self.donor
        if handoff is None or handoff.handoff_id != accept.handoff_id:
            self._count_stale("accept", accept.handoff_id)
            return
        if accept.ack_seq == OFFER_ACCEPTED:
            if handoff.phase != "offer":
                return  # duplicate offer-accept; the transfer is underway
            handoff.phase = "transfer"
            handoff.retries = 0
            self._emit_span("donor", "transfer", handoff.handoff_id,
                            handoff.vspace,
                            note=f"{len(handoff.chunks)} chunks")
            self._send_chunk(handoff)
            return
        if handoff.phase != "transfer":
            return
        if accept.ack_seq != handoff.next_chunk:
            return  # stale cumulative ack; the current chunk will re-fire
        handoff.chunks_acked += 1
        handoff.next_chunk += 1
        handoff.retries = 0
        self._send_chunk(handoff)

    # -- recipient-side receives ---------------------------------------
    def _on_offer(self, offer: DelegateOffer, source: str) -> None:
        handoff_id = offer.handoff_id
        existing = self.recipients.get(handoff_id)
        if existing is not None:
            # Duplicate offer: repeat whatever answer moved us forward.
            if existing.phase == "staging":
                self._send_accept(source, handoff_id, OFFER_ACCEPTED)
            else:
                self._send_commit(existing)
            return
        settled = self._settled.get(handoff_id)
        if settled is not None:
            self._resend_terminal(handoff_id, settled)
            return
        if handoff_id <= self._fence.get(source, -1):
            self._count_stale("offer", handoff_id)
            return
        self._fence[source] = handoff_id
        handoff = RecipientHandoff(
            handoff_id=handoff_id,
            vspace=offer.vspace,
            donor=source,
            total_records=offer.total_records,
        )
        self.recipients[handoff_id] = handoff
        self._emit_span("recipient", "offer", handoff_id, offer.vspace,
                        note=f"{offer.total_records} records from {source}")
        self._send_accept(source, handoff_id, OFFER_ACCEPTED)
        self._arm_staging(handoff)

    def _on_transfer(self, transfer: DelegateTransfer, source: str) -> None:
        inr = self.inr
        handoff = self.recipients.get(transfer.handoff_id)
        if handoff is None:
            settled = self._settled.get(transfer.handoff_id)
            if settled is not None:
                self._resend_terminal(transfer.handoff_id, settled)
            elif transfer.handoff_id <= self._fence.get(source, -1):
                self._count_stale("transfer", transfer.handoff_id)
            elif (
                self.adopted.get(transfer.vspace) == source
                and self._adopted_ids.get(transfer.vspace) == transfer.handoff_id
            ):
                # We adopted this vspace, crashed before the donor's
                # echo arrived, and the donor is retransmitting the
                # final chunk: answer with the COMMIT the crash
                # swallowed so the donor can finalize.
                inr.send(
                    source,
                    INR_PORT,
                    DelegateCommit(
                        sender=inr.address,
                        handoff_id=transfer.handoff_id,
                        vspace=transfer.vspace,
                    ),
                )
            else:
                # A chunk for a handoff we never heard of: this process
                # crashed between offer and transfer. Abort fast so the
                # donor keeps its tree instead of burning retries.
                inr.send(
                    source,
                    INR_PORT,
                    DelegateAbort(
                        sender=inr.address,
                        handoff_id=transfer.handoff_id,
                        vspace=transfer.vspace,
                        reason="no-recipient-state",
                    ),
                )
            return
        if handoff.phase != "staging":
            self._send_commit(handoff)  # committed: the chunk is a rerun
            return
        if transfer.seq < handoff.expected_seq:
            # Duplicate chunk: re-ack cumulatively.
            self._send_accept(handoff.donor, handoff.handoff_id,
                              handoff.expected_seq - 1)
            return
        if transfer.seq > handoff.expected_seq:
            self._count_stale("transfer-gap", transfer.handoff_id)
            return
        handoff.staged.extend(transfer.records)
        handoff.expected_seq += 1
        inr.stats.delegate_records_received += len(transfer.records)
        if transfer.final:
            self._recipient_adopt(handoff)
        else:
            self._send_accept(handoff.donor, handoff.handoff_id, transfer.seq)
            self._arm_staging(handoff)

    def _recipient_adopt(self, handoff: RecipientHandoff) -> None:
        """Final chunk staged: become authoritative in one step —
        install the tree, register with the DSR, and COMMIT."""
        inr = self.inr
        now = inr.now
        tree = inr.trees.get(handoff.vspace)
        if tree is None:
            tree = NameTree(vspace=handoff.vspace)
        for staged in handoff.staged:
            record = NameRecord(
                announcer=AnnouncerID(
                    host=staged.announcer_host,
                    startup_time=staged.announcer_startup,
                ),
                endpoints=[
                    Endpoint(host=host, port=port, transport=transport)
                    for host, port, transport in staged.endpoints
                ],
                anycast_metric=staged.anycast_metric,
                # Installed as directly-known state: the services behind
                # these names advertise to the donor, which forwards
                # their ads here from now on — the same install shape
                # those forwarded ads will refresh.
                route=Route(next_hop=None, metric=0.0),
                expires_at=now + staged.lifetime,
            )
            tree.insert(staged.name.copy(), record)
        inr.trees[handoff.vspace] = tree
        self.adopted[handoff.vspace] = handoff.donor
        self._adopted_ids[handoff.vspace] = handoff.handoff_id
        handoff.staged = []
        handoff.phase = "committed"
        inr.stats.delegations_adopted += 1
        inr._register()
        self._emit_span("recipient", "commit", handoff.handoff_id,
                        handoff.vspace, note=f"{len(tree)} records adopted")
        self._send_commit(handoff)

    def _staging_patience(self) -> float:
        """How long a staging recipient waits with no donor traffic
        before abandoning the handoff: longer than the donor's entire
        retry budget, so a live donor can never be abandoned — only one
        that crashed (and whose restart forgot the handoff) or whose
        ABORT was lost."""
        config = self.inr.config
        per_try = max(
            config.delegation_offer_timeout,
            config.delegation_ack_timeout,
            config.delegation_commit_timeout,
        )
        return per_try * (config.delegation_max_retries + 2)

    def _arm_staging(self, handoff: RecipientHandoff) -> None:
        handoff.epoch += 1
        self.inr.set_timer(
            self._staging_patience(),
            self._staging_timeout,
            handoff.handoff_id,
            handoff.epoch,
        )

    def _staging_timeout(self, handoff_id: int, epoch: int) -> None:
        inr = self.inr
        if inr._terminated or getattr(inr, "delegation", None) is not self:
            return
        handoff = self.recipients.get(handoff_id)
        if handoff is None or handoff.phase != "staging":
            return
        if handoff.epoch != epoch:
            return  # a chunk arrived since this timer was armed
        # Nothing was adopted — discard the staged records, settle the
        # id as aborted (fencing keeps rejecting it), and free this
        # resolver to retire back into the candidate pool.
        self.recipients.pop(handoff_id, None)
        self._remember(handoff_id, "aborted", handoff.vspace, handoff.donor)
        inr.send(
            handoff.donor,
            INR_PORT,
            DelegateAbort(
                sender=inr.address,
                handoff_id=handoff_id,
                vspace=handoff.vspace,
                reason="staging-timeout",
            ),
        )
        self._emit_span("recipient", "abort", handoff_id, handoff.vspace,
                        status="abort:staging-timeout")

    def _send_commit(self, handoff: RecipientHandoff) -> None:
        inr = self.inr
        handoff.epoch += 1
        inr.send(
            handoff.donor,
            INR_PORT,
            DelegateCommit(
                sender=inr.address,
                handoff_id=handoff.handoff_id,
                vspace=handoff.vspace,
            ),
        )
        inr.set_timer(
            inr.config.delegation_commit_timeout,
            self._commit_retransmit,
            handoff.handoff_id,
            handoff.epoch,
        )

    def _commit_retransmit(self, handoff_id: int, epoch: int) -> None:
        inr = self.inr
        if inr._terminated or getattr(inr, "delegation", None) is not self:
            return
        handoff = self.recipients.get(handoff_id)
        if handoff is None or handoff.phase != "committed":
            return  # settled (echo arrived) or rolled back
        if handoff.epoch != epoch:
            return
        handoff.commit_resends += 1
        if handoff.commit_resends > 4 * inr.config.delegation_max_retries:
            # The donor has been gone far past its whole retry budget.
            # We are registered and authoritative; settle locally so
            # this resolver is not pinned busy forever. The settled
            # record still answers any late donor retransmission with
            # our COMMIT, and a donor ABORT still rolls us back.
            self._settle(handoff, "committed")
            return
        self._send_commit(handoff)

    # -- commit/abort, both roles --------------------------------------
    def _on_commit(self, commit: DelegateCommit, source: str) -> None:
        inr = self.inr
        donor = self.donor
        if donor is not None and donor.handoff_id == commit.handoff_id:
            self._donor_finalize(donor)
            return
        recipient = self.recipients.get(commit.handoff_id)
        if recipient is not None:
            if recipient.phase == "committed":
                # The donor's echo: the handoff is fully settled.
                self._settle(recipient, "committed")
            return
        if commit.handoff_id in self._settled:
            return  # duplicate echo
        if self._adopted_ids.get(commit.vspace) == commit.handoff_id:
            return  # the donor's echo to our restart probe; we already
            # hold the adoption — nothing left to exchange
        aborted_vspace = self._aborted_ids.get(commit.handoff_id)
        if aborted_vspace is not None:
            # We aborted this handoff; a COMMIT for it is a recipient
            # that adopted off a retransmitted final chunk. Abort wins.
            inr.send(
                source,
                INR_PORT,
                DelegateAbort(
                    sender=inr.address,
                    handoff_id=commit.handoff_id,
                    vspace=commit.vspace,
                    reason="aborted-handoff",
                ),
            )
            return
        # Unknown id: we are a donor that crashed mid-handoff. If we no
        # longer route the vspace the commit finalized before the crash
        # (delegated_away is in the snapshot) — echo idempotently. If we
        # still route it, we cannot have finalized: abort wins.
        if inr.routes_vspace(commit.vspace):
            inr.send(
                source,
                INR_PORT,
                DelegateAbort(
                    sender=inr.address,
                    handoff_id=commit.handoff_id,
                    vspace=commit.vspace,
                    reason="donor-restarted",
                ),
            )
        else:
            inr.send(
                source,
                INR_PORT,
                DelegateCommit(
                    sender=inr.address,
                    handoff_id=commit.handoff_id,
                    vspace=commit.vspace,
                ),
            )

    def _on_abort(self, abort: DelegateAbort) -> None:
        inr = self.inr
        donor = self.donor
        if donor is not None and donor.handoff_id == abort.handoff_id:
            # Recipient-initiated abort (crashed recipient, refused
            # state): unwind without echoing another abort back.
            self._donor_abort(abort.reason, notify=False)
            return
        handoff = self.recipients.get(abort.handoff_id)
        if handoff is None:
            settled = self._settled.get(abort.handoff_id)
            if settled is not None and settled[0] == "committed":
                # Defensive: roll back even a settled adoption — the
                # donor only ever aborts ids it never finalized.
                self._rollback(abort.handoff_id, settled[1], settled[2])
            elif (
                self.adopted.get(abort.vspace) == abort.sender
                and self._adopted_ids.get(abort.vspace) == abort.handoff_id
            ):
                # Our restart probe was answered with an abort: the
                # donor crashed too, before finalizing, and still
                # routes the vspace. Abort wins — un-adopt.
                self._rollback(abort.handoff_id, abort.vspace, abort.sender)
            return
        if handoff.phase == "staging":
            self.recipients.pop(abort.handoff_id, None)
            self._remember(abort.handoff_id, "aborted", handoff.vspace,
                           handoff.donor)
            self._emit_span("recipient", "abort", abort.handoff_id,
                            handoff.vspace, status=f"abort:{abort.reason}")
            return
        # Committed but the donor never finalized: rollback (un-adopt).
        self.recipients.pop(abort.handoff_id, None)
        self._remember(abort.handoff_id, "aborted", handoff.vspace,
                       handoff.donor)
        self._rollback(abort.handoff_id, handoff.vspace, handoff.donor)

    def _rollback(self, handoff_id: int, vspace: str, donor: str) -> None:
        inr = self.inr
        if self.adopted.get(vspace) == donor:
            self.adopted.pop(vspace, None)
            self._adopted_ids.pop(vspace, None)
            inr.trees.pop(vspace, None)
            inr._register()
            inr.stats.delegation_rollbacks += 1
            if handoff_id in self._settled:
                outcome, settled_vspace, settled_donor = self._settled[handoff_id]
                self._settled[handoff_id] = ("aborted", settled_vspace,
                                             settled_donor)
            self._emit_span("recipient", "rollback", handoff_id, vspace,
                            status="abort:rollback")

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    def _send_accept(self, donor: str, handoff_id: int, ack_seq: int) -> None:
        self.inr.send(
            donor,
            INR_PORT,
            DelegateAccept(
                sender=self.inr.address, handoff_id=handoff_id, ack_seq=ack_seq
            ),
        )

    def _settle(self, handoff: RecipientHandoff, outcome: str) -> None:
        self.recipients.pop(handoff.handoff_id, None)
        self._remember(handoff.handoff_id, outcome, handoff.vspace,
                       handoff.donor)

    def _remember(self, handoff_id: int, outcome: str, vspace: str,
                  donor: str) -> None:
        self._settled[handoff_id] = (outcome, vspace, donor)
        while len(self._settled) > SETTLED_MEMORY:
            self._settled.popitem(last=False)

    def _resend_terminal(self, handoff_id: int,
                         settled: Tuple[str, str, str]) -> None:
        """Answer a retransmission for a settled handoff with its
        terminal message — never with fresh state."""
        outcome, vspace, donor = settled
        inr = self.inr
        if outcome == "committed":
            inr.send(
                donor,
                INR_PORT,
                DelegateCommit(
                    sender=inr.address, handoff_id=handoff_id, vspace=vspace
                ),
            )
        else:
            inr.send(
                donor,
                INR_PORT,
                DelegateAbort(
                    sender=inr.address,
                    handoff_id=handoff_id,
                    vspace=vspace,
                    reason="already-aborted",
                ),
            )

    def _count_stale(self, kind: str, handoff_id: int) -> None:
        inr = self.inr
        inr.stats.delegate_stale_dropped += 1
        if inr.tracer is not None:
            span = inr.tracer.start_span(
                "inr.delegate",
                node=inr.address,
                tags={"phase": kind, "handoff": handoff_id},
            )
            inr.tracer.end_span(span, DROP_PREFIX + "delegate-stale")

    def _emit_span(self, role: str, phase: str, handoff_id: int, vspace: str,
                   status: str = STATUS_OK, note: Optional[str] = None) -> None:
        """One root span per phase transition per side. Spans are
        opened and closed at the transition itself (never held across
        simulated time), so a crash can never leak an unfinished span
        into the trace export."""
        inr = self.inr
        if inr.tracer is None:
            return
        span = inr.tracer.start_span(
            "inr.delegate",
            node=inr.address,
            tags={
                "role": role,
                "phase": phase,
                "handoff": handoff_id,
                "vspace": vspace,
            },
        )
        if note:
            inr.tracer.annotate(span, note)
        inr.tracer.end_span(span, status)


__all__ = [
    "ABORTED_MEMORY",
    "DelegationCoordinator",
    "DonorHandoff",
    "RecipientHandoff",
    "SETTLED_MEMORY",
]
