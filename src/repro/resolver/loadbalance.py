"""Load monitoring for spawn/terminate and vspace-delegation decisions
(Section 2.5).

The paper identifies two distinct overload modes with different cures:

- **lookup overload** — cured by spawning another INR for the *same*
  vspaces on a candidate node, letting the client configuration
  protocol move some clients over;
- **update overload** — spawning a same-space replica does not help
  (every replica still processes every name), so the cure is to
  *delegate* one or more virtual spaces to a new INR network.

:class:`LoadMonitor` just counts; the policy decisions live in the INR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class LoadSample:
    """Rates observed over one measurement window.

    The ``ewma_*`` fields are exponentially smoothed versions of the
    raw rates, maintained across samples by the monitor; with the
    default ``ewma_alpha=1.0`` they equal the raw rates exactly, so
    smoothing is strictly opt-in hysteresis (flap damping for the
    spawn/delegate/terminate decisions).
    """

    window: float
    lookups_per_second: float
    update_names_per_second: float
    ewma_lookups_per_second: float = 0.0
    ewma_update_names_per_second: float = 0.0


class LoadMonitor:
    """Windowed counters of resolver work."""

    def __init__(self, now: float = 0.0, ewma_alpha: float = 1.0) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1]: {ewma_alpha}")
        self._window_start = now
        self._lookups = 0
        self._update_names = 0
        self._ewma_alpha = ewma_alpha
        self._ewma_lookups: Optional[float] = None
        self._ewma_update_names: Optional[float] = None
        self.total_lookups = 0
        self.total_update_names = 0

    def count_lookup(self, count: int = 1) -> None:
        self._lookups += count
        self.total_lookups += count

    def count_update_names(self, count: int) -> None:
        self._update_names += count
        self.total_update_names += count

    def sample(self, now: float) -> LoadSample:
        """Rates since the last sample; resets the window and folds the
        raw rates into the running EWMAs (first sample seeds them)."""
        window = max(now - self._window_start, 1e-9)
        lookups = self._lookups / window
        update_names = self._update_names / window
        alpha = self._ewma_alpha
        if self._ewma_lookups is None:
            self._ewma_lookups = lookups
            self._ewma_update_names = update_names
        else:
            self._ewma_lookups = (
                alpha * lookups + (1.0 - alpha) * self._ewma_lookups
            )
            self._ewma_update_names = (
                alpha * update_names + (1.0 - alpha) * self._ewma_update_names
            )
        sample = LoadSample(
            window=window,
            lookups_per_second=lookups,
            update_names_per_second=update_names,
            ewma_lookups_per_second=self._ewma_lookups,
            ewma_update_names_per_second=self._ewma_update_names,
        )
        self._window_start = now
        self._lookups = 0
        self._update_names = 0
        return sample
