"""Load monitoring for spawn/terminate and vspace-delegation decisions
(Section 2.5).

The paper identifies two distinct overload modes with different cures:

- **lookup overload** — cured by spawning another INR for the *same*
  vspaces on a candidate node, letting the client configuration
  protocol move some clients over;
- **update overload** — spawning a same-space replica does not help
  (every replica still processes every name), so the cure is to
  *delegate* one or more virtual spaces to a new INR network.

:class:`LoadMonitor` just counts; the policy decisions live in the INR.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class LoadSample:
    """Rates observed over one measurement window."""

    window: float
    lookups_per_second: float
    update_names_per_second: float


class LoadMonitor:
    """Windowed counters of resolver work."""

    def __init__(self, now: float = 0.0) -> None:
        self._window_start = now
        self._lookups = 0
        self._update_names = 0
        self.total_lookups = 0
        self.total_update_names = 0

    def count_lookup(self, count: int = 1) -> None:
        self._lookups += count
        self.total_lookups += count

    def count_update_names(self, count: int) -> None:
        self._update_names += count
        self.total_update_names += count

    def sample(self, now: float) -> LoadSample:
        """Rates since the last sample; resets the window."""
        window = max(now - self._window_start, 1e-9)
        sample = LoadSample(
            window=window,
            lookups_per_second=self._lookups / window,
            update_names_per_second=self._update_names / window,
        )
        self._window_start = now
        self._lookups = 0
        self._update_names = 0
        return sample
