"""Overlay neighbor state kept by each INR (Section 2.4).

Neighbors are the spanning-tree peers an INR exchanges updates with.
Each entry tracks the measured INR-ping round-trip metric (the overlay
routing metric) and when the neighbor was last heard from, so silent
neighbors can be declared dead and their routes flushed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

#: Used for a neighbor whose RTT has not been measured yet; high enough
#: that unmeasured paths lose ties but finite so routing still works.
UNMEASURED_RTT = 1.0

#: Weight of the newest sample in the RTT moving average. High enough
#: that a few pings converge on a changed link, low enough that one
#: queueing spike does not trigger a parent switch.
RTT_EWMA_ALPHA = 0.3


@dataclass
class Neighbor:
    """One overlay peer."""

    address: str
    #: smoothed INR-to-INR round-trip metric (seconds, EWMA)
    rtt: float = UNMEASURED_RTT
    #: virtual time we last received anything from this neighbor
    last_heard: float = 0.0
    #: True when this is the peer we joined the overlay through; losing
    #: it requires a re-join, losing a child does not.
    is_parent: bool = False
    #: False until the first real RTT sample arrives.
    measured: bool = False

    def observe_rtt(self, sample: float) -> float:
        """Fold a fresh RTT sample into the smoothed metric.

        An EWMA rather than a best-ever minimum: when a link degrades
        (congestion, CPU chaos) the routing metric must follow it back
        up, or relaxation keeps preferring a parent that is no longer
        close.
        """
        if not self.measured:
            self.rtt = sample
            self.measured = True
        else:
            self.rtt += RTT_EWMA_ALPHA * (sample - self.rtt)
        return self.rtt


class NeighborTable:
    """The INR's set of overlay peers."""

    def __init__(self) -> None:
        self._neighbors: Dict[str, Neighbor] = {}

    def add(
        self,
        address: str,
        rtt: Optional[float] = None,
        is_parent: bool = False,
    ) -> Neighbor:
        """Add or update a neighbor; ``rtt`` (when given) is folded into
        the smoothed metric as one sample."""
        neighbor = self._neighbors.get(address)
        if neighbor is None:
            neighbor = Neighbor(address=address, is_parent=is_parent)
            self._neighbors[address] = neighbor
        else:
            neighbor.is_parent = neighbor.is_parent or is_parent
        if rtt is not None:
            neighbor.observe_rtt(rtt)
        return neighbor

    def remove(self, address: str) -> Optional[Neighbor]:
        return self._neighbors.pop(address, None)

    def get(self, address: str) -> Optional[Neighbor]:
        return self._neighbors.get(address)

    def __contains__(self, address: str) -> bool:
        return address in self._neighbors

    def __len__(self) -> int:
        return len(self._neighbors)

    def __iter__(self) -> Iterator[Neighbor]:
        return iter(list(self._neighbors.values()))

    @property
    def addresses(self) -> Tuple[str, ...]:
        return tuple(self._neighbors)

    @property
    def parent(self) -> Optional[Neighbor]:
        for neighbor in self._neighbors.values():
            if neighbor.is_parent:
                return neighbor
        return None

    def rtt_to(self, address: str) -> float:
        neighbor = self._neighbors.get(address)
        return neighbor.rtt if neighbor is not None else UNMEASURED_RTT

    def heard_from(self, address: str, now: float) -> None:
        neighbor = self._neighbors.get(address)
        if neighbor is not None:
            neighbor.last_heard = now

    def silent_since(self, cutoff: float) -> Tuple[Neighbor, ...]:
        """Neighbors not heard from since ``cutoff`` (candidates for
        removal)."""
        return tuple(
            n for n in self._neighbors.values() if n.last_heard < cutoff
        )
