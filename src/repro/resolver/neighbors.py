"""Overlay neighbor state kept by each INR (Section 2.4).

Neighbors are the spanning-tree peers an INR exchanges updates with.
Each entry tracks the measured INR-ping round-trip metric (the overlay
routing metric) and when the neighbor was last heard from, so silent
neighbors can be declared dead and their routes flushed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

#: Used for a neighbor whose RTT has not been measured yet; high enough
#: that unmeasured paths lose ties but finite so routing still works.
UNMEASURED_RTT = 1.0


@dataclass
class Neighbor:
    """One overlay peer."""

    address: str
    #: measured INR-to-INR round-trip metric (seconds)
    rtt: float = UNMEASURED_RTT
    #: virtual time we last received anything from this neighbor
    last_heard: float = 0.0
    #: True when this is the peer we joined the overlay through; losing
    #: it requires a re-join, losing a child does not.
    is_parent: bool = False


class NeighborTable:
    """The INR's set of overlay peers."""

    def __init__(self) -> None:
        self._neighbors: Dict[str, Neighbor] = {}

    def add(self, address: str, rtt: float = UNMEASURED_RTT, is_parent: bool = False) -> Neighbor:
        """Add or update a neighbor; keeps the best known RTT."""
        neighbor = self._neighbors.get(address)
        if neighbor is None:
            neighbor = Neighbor(address=address, rtt=rtt, is_parent=is_parent)
            self._neighbors[address] = neighbor
        else:
            neighbor.rtt = min(neighbor.rtt, rtt)
            neighbor.is_parent = neighbor.is_parent or is_parent
        return neighbor

    def remove(self, address: str) -> Optional[Neighbor]:
        return self._neighbors.pop(address, None)

    def get(self, address: str) -> Optional[Neighbor]:
        return self._neighbors.get(address)

    def __contains__(self, address: str) -> bool:
        return address in self._neighbors

    def __len__(self) -> int:
        return len(self._neighbors)

    def __iter__(self) -> Iterator[Neighbor]:
        return iter(list(self._neighbors.values()))

    @property
    def addresses(self) -> Tuple[str, ...]:
        return tuple(self._neighbors)

    @property
    def parent(self) -> Optional[Neighbor]:
        for neighbor in self._neighbors.values():
            if neighbor.is_parent:
                return neighbor
        return None

    def rtt_to(self, address: str) -> float:
        neighbor = self._neighbors.get(address)
        return neighbor.rtt if neighbor is not None else UNMEASURED_RTT

    def heard_from(self, address: str, now: float) -> None:
        neighbor = self._neighbors.get(address)
        if neighbor is not None:
            neighbor.last_heard = now

    def silent_since(self, cutoff: float) -> Tuple[Neighbor, ...]:
        """Neighbors not heard from since ``cutoff`` (candidates for
        removal)."""
        return tuple(
            n for n in self._neighbors.values() if n.last_heard < cutoff
        )
