"""Control-plane message types exchanged by services, clients, INRs and
the DSR.

Each message knows its approximate wire size so the simulator can charge
links for the bandwidth the real system would consume. The numbers
follow the paper's measurements: randomly generated intentional names
averaged 82 bytes, and each name in an update also carries addresses,
metrics and the AnnouncerID (Section 2.2 lists the update contents).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..naming import NameSpecifier
from ..nametree import AnnouncerID, Endpoint
from ..obs import TRACE_CONTEXT_SIZE, TraceContext

#: Fixed per-message overhead we charge for any control datagram
#: (UDP/IP headers plus message framing).
BASE_OVERHEAD = 28

#: Extra bytes per name in an update beyond the name text itself:
#: endpoints, metrics, lifetime and the AnnouncerID (Section 2.2).
PER_NAME_OVERHEAD = 30


def _fresh_request_id() -> int:
    return next(_REQUEST_IDS)


_REQUEST_IDS = itertools.count(1)


@dataclass
class NameUpdate:
    """Everything an INR update says about one name (Section 2.2).

    ``route_metric`` is the announcing path's cumulative overlay metric
    as seen by the *sender* of the update; the receiver adds its own
    link cost to the sender (distributed Bellman-Ford).
    """

    name: NameSpecifier
    announcer: AnnouncerID
    endpoints: Tuple[Endpoint, ...]
    anycast_metric: float
    route_metric: float
    lifetime: float
    vspace: str

    def wire_size(self) -> int:
        return self.name.wire_size() + PER_NAME_OVERHEAD + 12 * len(self.endpoints)


@dataclass
class UpdateBatch:
    """A periodic or triggered batch of name updates between INRs."""

    sender: str
    updates: List[NameUpdate]
    triggered: bool = False

    def wire_size(self) -> int:
        return BASE_OVERHEAD + sum(update.wire_size() for update in self.updates)


@dataclass
class Advertisement:
    """A service's periodic announcement of its intentional name.

    ``triggered`` marks announcements that carry *new* state (first
    advertisement after attaching, a metric change, a rename) as
    opposed to periodic soft-state refreshes; an overloaded resolver's
    admission control sheds refreshes before triggered updates.
    """

    name: NameSpecifier
    announcer: AnnouncerID
    endpoints: Tuple[Endpoint, ...]
    anycast_metric: float
    lifetime: float
    triggered: bool = False

    def wire_size(self) -> int:
        return BASE_OVERHEAD + self.name.wire_size() + 12 * len(self.endpoints)


@dataclass
class DiscoveryRequest:
    """Name discovery (Section 2.2): return all names matching a filter."""

    filter: NameSpecifier
    reply_to: str
    reply_port: int
    request_id: int = field(default_factory=_fresh_request_id)
    #: Optional trace context (PROTOCOL.md §9), carried like the data
    #: path's header extension so control-plane hops join the span tree.
    trace: Optional[TraceContext] = None

    def wire_size(self) -> int:
        return (
            BASE_OVERHEAD
            + self.filter.wire_size()
            + (TRACE_CONTEXT_SIZE if self.trace is not None else 0)
        )


@dataclass
class DiscoveryResponse:
    """The names (and their anycast metrics) matching a discovery filter."""

    request_id: int
    names: List[Tuple[NameSpecifier, float]]

    def wire_size(self) -> int:
        return BASE_OVERHEAD + sum(name.wire_size() + 8 for name, _ in self.names)


@dataclass
class ResolutionRequest:
    """Early binding: resolve a name to network locations (Section 2)."""

    name: NameSpecifier
    reply_to: str
    reply_port: int
    request_id: int = field(default_factory=_fresh_request_id)
    #: Optional trace context (PROTOCOL.md §9); see DiscoveryRequest.
    trace: Optional[TraceContext] = None

    def wire_size(self) -> int:
        return (
            BASE_OVERHEAD
            + self.name.wire_size()
            + (TRACE_CONTEXT_SIZE if self.trace is not None else 0)
        )


@dataclass
class ResolutionResponse:
    """The [ip, [port, transport]] list plus per-endpoint metrics.

    Metric-based selection over this list is the paper's richer
    alternative to round-robin DNS.
    """

    request_id: int
    bindings: List[Tuple[Endpoint, float]]

    def wire_size(self) -> int:
        return BASE_OVERHEAD + 20 * len(self.bindings)


@dataclass
class DataPacket:
    """An encoded INS data message (Figure 10 bytes) in flight.

    INRs decode the header and names to forward it but never touch the
    application data; we keep the raw bytes authoritative and cache the
    decoded form for the simulator's benefit.
    """

    raw: bytes
    _decoded: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def message(self):
        from ..message import InsMessage

        if self._decoded is None:
            self._decoded = InsMessage.decode(self.raw)
        return self._decoded

    def wire_size(self) -> int:
        return BASE_OVERHEAD + len(self.raw)


@dataclass
class NameWithdraw:
    """Explicit removal of a name (reliable-delta update mode only).

    Soft state never needs withdrawals — silence is the withdrawal —
    but the footnote-3 reliable mode eliminates periodic refreshes, so
    an origin INR must announce that a name died.
    """

    sender: str
    announcer: AnnouncerID
    vspace: str

    def wire_size(self) -> int:
        return BASE_OVERHEAD + 24 + len(self.vspace)


@dataclass
class PingRequest:
    """An INR-ping: a small name whose processing time is part of the
    measured round trip (Section 2.4)."""

    probe: NameSpecifier
    reply_to: str
    reply_port: int
    token: int = field(default_factory=_fresh_request_id)

    def wire_size(self) -> int:
        return BASE_OVERHEAD + self.probe.wire_size()


@dataclass
class PingResponse:
    token: int
    responder: str

    def wire_size(self) -> int:
        return BASE_OVERHEAD


@dataclass
class Pushback:
    """Explicit overload signal for a client request (admission control).

    When an INR's pending-work queue is past its client-request bound it
    answers a resolution/discovery request with a Pushback instead of
    silently dropping it: the client learns the resolver is alive (no
    failover needed) and defers its next retransmission by
    ``retry_after`` seconds, replacing its own backoff with the
    resolver's estimate of when the backlog will have drained.
    """

    request_id: int
    responder: str
    retry_after: float

    def wire_size(self) -> int:
        return BASE_OVERHEAD + 8


@dataclass
class PeerRequest:
    """Ask an INR to become an overlay neighbor (spanning-tree join).

    Carries the requester's INR-ping measurement of the path so both
    ends start from the same overlay metric (links are symmetric here).
    """

    requester: str
    measured_rtt: float = 1.0

    def wire_size(self) -> int:
        return BASE_OVERHEAD


@dataclass
class PeerAccept:
    accepter: str

    def wire_size(self) -> int:
        return BASE_OVERHEAD


@dataclass
class PeerGoodbye:
    """An INR leaving the overlay (self-termination on low load)."""

    sender: str

    def wire_size(self) -> int:
        return BASE_OVERHEAD


__all__ = [
    "Advertisement",
    "NameWithdraw",
    "BASE_OVERHEAD",
    "DataPacket",
    "DiscoveryRequest",
    "DiscoveryResponse",
    "NameUpdate",
    "PER_NAME_OVERHEAD",
    "PeerAccept",
    "PeerGoodbye",
    "PeerRequest",
    "PingRequest",
    "PingResponse",
    "Pushback",
    "ResolutionRequest",
    "ResolutionResponse",
    "UpdateBatch",
]
