"""Tunable parameters of an INR.

Defaults follow the paper where it gives numbers (15-second refresh
interval in the Figure 8/9/15 experiments; soft-state lifetimes are three
refresh periods, the conventional soft-state rule that tolerates two
consecutive lost refreshes).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class InrConfig:
    """Configuration knobs for one INR (all times in seconds)."""

    #: Interval between periodic update batches to neighbors and between
    #: a service's re-advertisements. The paper's experiments use 15 s.
    refresh_interval: float = 15.0

    #: Soft-state lifetime granted to names on insert/refresh.
    record_lifetime: float = 45.0

    #: How often the expiry sweep runs.
    expiry_sweep_interval: float = 5.0

    #: Heartbeat interval to the DSR.
    heartbeat_interval: float = 10.0

    #: A neighbor silent for this long is declared dead.
    neighbor_timeout: float = 50.0

    #: Jitter fraction applied to periodic timers so resolver timers do
    #: not phase-lock.
    timer_jitter: float = 0.05

    #: How long to wait for INR-ping responses while joining before
    #: picking the best peer among those that answered.
    join_ping_timeout: float = 0.5

    #: --- Load balancing (Section 2.5) --------------------------------
    #: Enable spawn/terminate decisions.
    enable_load_balancing: bool = False

    #: Lookups per second above which an INR tries to spawn a helper.
    spawn_lookup_rate: float = 400.0

    #: Update names per second above which a vspace is delegated.
    delegate_update_rate: float = 600.0

    #: Lookup rate below which a spawned INR terminates itself.
    terminate_lookup_rate: float = 1.0

    #: Seconds between load-policy evaluations.
    load_check_interval: float = 10.0

    #: A freshly spawned INR will not self-terminate before this age.
    minimum_lifetime: float = 30.0

    #: --- Load hysteresis (flap damping for Section 2.5 decisions) ----
    #: EWMA smoothing factor applied to the load rates the policy
    #: compares against its thresholds. 1.0 (the default) disables
    #: smoothing: each window's raw rate is used directly, the paper's
    #: implied behavior.
    load_ewma_alpha: float = 1.0

    #: Consecutive over-threshold samples required before an overload
    #: action (spawn or delegate) fires. 1 = act on the first signal.
    overload_consecutive_samples: int = 1

    #: Consecutive under-threshold samples required before a spawned
    #: INR considers self-termination.
    underload_consecutive_samples: int = 1

    #: Minimum seconds between load-policy actions (spawn, delegate or
    #: termination check) — a cooldown so one hot window cannot trigger
    #: a burst of spawns. 0 disables.
    load_action_cooldown: float = 0.0

    #: --- Crash-safe vspace delegation (PROTOCOL.md §11) --------------
    #: Use the two-phase OFFER/ACCEPT/TRANSFER/COMMIT handoff when
    #: delegating a vspace. False falls back to the single-shot
    #: transfer (the ablation: no crash safety, no dual serving).
    delegation_two_phase: bool = True

    #: Seconds the donor waits for the offer to be accepted before
    #: retransmitting it.
    delegation_offer_timeout: float = 1.0

    #: Seconds the donor waits for a transfer chunk's cumulative ack.
    delegation_ack_timeout: float = 1.0

    #: Seconds either side waits on the COMMIT exchange (the donor for
    #: the recipient's COMMIT, the recipient for the donor's echo)
    #: before retransmitting.
    delegation_commit_timeout: float = 1.0

    #: Retransmissions allowed per handoff phase before the donor
    #: aborts and keeps the vspace.
    delegation_max_retries: int = 3

    #: Name-records per DELEGATE-TRANSFER chunk (stop-and-wait).
    delegation_chunk_names: int = 32

    #: Seconds after an aborted handoff before the donor will claim a
    #: fresh candidate and retry (idempotently, under a new id).
    delegation_retry_cooldown: float = 5.0

    #: --- Overlay relaxation (extension; Section 2.4 future work) -----
    #: Periodically re-evaluate the parent peering and switch to a
    #: lower-RTT earlier-ordered INR when the improvement is large.
    enable_relaxation: bool = False

    #: Seconds between relaxation probes.
    relaxation_interval: float = 30.0

    #: Required multiplicative improvement before switching parents
    #: (hysteresis so the tree does not flap).
    relaxation_improvement: float = 0.8

    #: Maximum entries in the vspace -> resolver cache.
    vspace_cache_size: int = 32

    #: Maximum entries in the data-packet cache (0 disables caching).
    packet_cache_size: int = 128

    #: --- Admission control (overload shedding) -----------------------
    #: When enabled, an INR bounds the work it accepts: once the node's
    #: CPU backlog (seconds of queued work) crosses the thresholds
    #: below, incoming messages are shed in priority order — periodic
    #: soft-state refreshes first, then triggered updates, and client
    #: lookups last (those get an explicit Pushback with a retry-after
    #: hint instead of a silent drop). Defaults off: unbounded
    #: acceptance is the paper's behavior and what the Figure 8
    #: saturation experiments measure.
    admission_control: bool = False

    #: Backlog above which periodic refreshes (non-triggered update
    #: batches and advertisements) are shed.
    admission_shed_backlog: float = 0.25

    #: Backlog above which triggered updates and withdrawals are shed
    #: too; soft state re-delivers them within a refresh interval.
    admission_trigger_backlog: float = 0.75

    #: Backlog above which client resolution/discovery requests are
    #: answered with a Pushback instead of being queued.
    admission_pushback_backlog: float = 1.5

    #: Cap on the retry-after hint carried by a Pushback.
    admission_retry_after_max: float = 3.0

    #: --- Disruption tolerance (custody store-and-forward) ------------
    #: When enabled, a payload the forwarding agent cannot move — no
    #: matching record, every match expired, or a silent next hop — is
    #: parked in a bounded custody store and re-attempted when name
    #: state returns, instead of being dropped. Defaults off: dropping
    #: is the paper's behavior and what the figure experiments measure.
    enable_custody: bool = False

    #: Maximum payloads held in custody at once (FIFO-within-priority
    #: eviction past this bound).
    custody_capacity: int = 64

    #: Seconds a payload may wait in custody before it lapses.
    custody_ttl: float = 30.0

    #: How often held payloads are re-attempted and expired. Triggered
    #: name updates retry immediately; this timer is the backstop that
    #: catches link heals no update announces.
    custody_retry_interval: float = 1.0

    #: A next hop silent for longer than this is treated as unreachable
    #: at forward time, diverting the payload into custody rather than
    #: onto a dead link. 0 disables the check (forward regardless).
    custody_suspect_silence: float = 0.0

    #: Extra seconds an expired record is retained (unused for routing)
    #: so a partitioned service's immediate re-advertisement on heal is
    #: a fast-path refresh instead of a rebuild from nothing. 0 keeps
    #: the paper's discard-at-expiry behavior.
    partition_grace: float = 0.0

    #: --- Inter-INR update transport (footnote 3) ---------------------
    #: "soft-state": the paper's shipped design — periodic re-floods of
    #: every name plus triggered updates, names expire by lifetime.
    #: "reliable-delta": TCP-like per-neighbor connections carrying only
    #: changed entries and explicit withdrawals; periodic messages
    #: shrink to empty keepalives.
    update_mode: str = "soft-state"

    #: Retransmission timeout of the reliable channel.
    reliable_retransmit_timeout: float = 1.0
