"""Reliable in-order delivery between INR neighbors (footnote 3).

The paper notes an alternative to soft-state flooding: "we could have
had the INRs use reliable TCP connections and send updates only for
entries that change, perhaps eliminating periodic updates at the expense
of maintaining connection state in the INRs. We do not explore this
option further in this paper, but intend to in the future."

This module is that exploration. :class:`ReliableChannel` gives an INR
per-neighbor TCP-like semantics over the UDP substrate: sequence
numbers, cumulative acks, retransmission on timeout, in-order delivery,
duplicate suppression. The resolver uses it (``update_mode =
"reliable-delta"``) to send only *changed* entries plus explicit
withdrawals, instead of re-flooding every name each refresh interval.
The bandwidth/staleness comparison lives in
``benchmarks/bench_ablation_reliable.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional


@dataclass
class ReliableFrame:
    """One sequenced payload on a reliable neighbor connection."""

    sender: str
    sequence: int
    inner: Any

    def wire_size(self) -> int:
        sizer = getattr(self.inner, "wire_size", None)
        return 8 + (int(sizer()) if callable(sizer) else 0)


@dataclass
class ReliableAck:
    """Cumulative ack: every frame up to ``sequence`` was delivered."""

    sender: str
    sequence: int

    def wire_size(self) -> int:
        return 36  # header-sized, like a bare TCP ack


@dataclass
class _PendingFrame:
    frame: ReliableFrame
    retransmissions: int = 0


class ReliableChannel:
    """One INR's reliable connections to its neighbors.

    The owner provides ``transmit(neighbor, payload)`` (raw datagram
    send), ``deliver(neighbor, payload)`` (in-order application
    delivery) and ``set_timer(delay, fn)``; the channel handles
    sequencing, acks, retransmits and reordering.
    """

    MAX_RETRANSMISSIONS = 30

    def __init__(
        self,
        transmit: Callable[[str, Any], None],
        deliver: Callable[[str, Any], None],
        set_timer: Callable[..., Any],
        retransmit_timeout: float = 1.0,
    ) -> None:
        self._transmit = transmit
        self._deliver = deliver
        self._set_timer = set_timer
        self.retransmit_timeout = retransmit_timeout
        self._next_sequence: Dict[str, int] = {}
        self._unacked: Dict[str, Dict[int, _PendingFrame]] = {}
        self._expected: Dict[str, int] = {}
        self._reorder: Dict[str, Dict[int, Any]] = {}
        self.retransmissions = 0
        self.duplicates_dropped = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, neighbor: str, payload: Any) -> None:
        """Queue ``payload`` for reliable in-order delivery."""
        sequence = self._next_sequence.get(neighbor, 1)
        self._next_sequence[neighbor] = sequence + 1
        frame = ReliableFrame(sender="", sequence=sequence, inner=payload)
        self._unacked.setdefault(neighbor, {})[sequence] = _PendingFrame(frame)
        self._push(neighbor, sequence)

    def _push(self, neighbor: str, sequence: int) -> None:
        pending = self._unacked.get(neighbor, {}).get(sequence)
        if pending is None:
            return  # acked in the meantime
        if pending.retransmissions > self.MAX_RETRANSMISSIONS:
            # The neighbor is unreachable; the resolver's neighbor
            # timeout will clean up. Stop resending into the void.
            self._unacked[neighbor].pop(sequence, None)
            return
        if pending.retransmissions:
            self.retransmissions += 1
        pending.retransmissions += 1
        self._transmit(neighbor, pending.frame)
        self._set_timer(self.retransmit_timeout, self._push, neighbor, sequence)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def on_frame(self, neighbor: str, frame: ReliableFrame) -> Optional[ReliableAck]:
        """Process an incoming frame; returns the ack to transmit."""
        expected = self._expected.get(neighbor, 1)
        if frame.sequence < expected:
            self.duplicates_dropped += 1
        elif frame.sequence == expected:
            self._deliver(neighbor, frame.inner)
            expected += 1
            buffered = self._reorder.get(neighbor, {})
            while expected in buffered:
                self._deliver(neighbor, buffered.pop(expected))
                expected += 1
            self._expected[neighbor] = expected
        else:
            self._reorder.setdefault(neighbor, {})[frame.sequence] = frame.inner
        return ReliableAck(sender="", sequence=self._expected.get(neighbor, 1) - 1)

    def on_ack(self, neighbor: str, ack: ReliableAck) -> None:
        unacked = self._unacked.get(neighbor)
        if not unacked:
            return
        for sequence in [s for s in unacked if s <= ack.sequence]:
            del unacked[sequence]

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def reset(self, neighbor: str) -> None:
        """Drop all connection state for a dead neighbor."""
        self._next_sequence.pop(neighbor, None)
        self._unacked.pop(neighbor, None)
        self._expected.pop(neighbor, None)
        self._reorder.pop(neighbor, None)

    def unacked_count(self, neighbor: str) -> int:
        return len(self._unacked.get(neighbor, {}))
