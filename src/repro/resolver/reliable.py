"""Reliable in-order delivery between INR neighbors (footnote 3).

The paper notes an alternative to soft-state flooding: "we could have
had the INRs use reliable TCP connections and send updates only for
entries that change, perhaps eliminating periodic updates at the expense
of maintaining connection state in the INRs. We do not explore this
option further in this paper, but intend to in the future."

This module is that exploration. :class:`ReliableChannel` gives an INR
per-neighbor TCP-like semantics over the UDP substrate: sequence
numbers, cumulative acks, retransmission on timeout, in-order delivery,
duplicate suppression. The resolver uses it (``update_mode =
"reliable-delta"``) to send only *changed* entries plus explicit
withdrawals, instead of re-flooding every name each refresh interval.
The bandwidth/staleness comparison lives in
``benchmarks/bench_ablation_reliable.py``.

Connections are identified by an *epoch* (a process-unique incarnation
number) carried on every frame and ack, playing the role TCP's initial
sequence number negotiation plays. A sender that resets a connection —
a restart after a crash, an explicit :meth:`ReliableChannel.reset`, or
abandoning a neighbor after too many retransmissions — draws a fresh,
strictly larger epoch and restarts its sequence at 1. A receiver that
sees a frame with a newer epoch discards its receive state for that
neighbor and accepts the new incarnation from sequence 1; frames from
an older epoch are dropped as stale. Without this, a crashed-and-
restarted sender's fresh sequence numbers would sit below the
receiver's stale ``expected`` cursor and every new frame would be
silently swallowed as a duplicate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional


@dataclass
class ReliableFrame:
    """One sequenced payload on a reliable neighbor connection."""

    sender: str
    sequence: int
    inner: Any
    epoch: int = 0

    def wire_size(self) -> int:
        sizer = getattr(self.inner, "wire_size", None)
        return 12 + (int(sizer()) if callable(sizer) else 0)


@dataclass
class ReliableAck:
    """Cumulative ack: every frame of ``epoch`` up to ``sequence`` was
    delivered."""

    sender: str
    sequence: int
    epoch: int = 0

    def wire_size(self) -> int:
        return 40  # header-sized, like a bare TCP ack


@dataclass
class _PendingFrame:
    frame: ReliableFrame
    retransmissions: int = 0


class ReliableChannel:
    """One INR's reliable connections to its neighbors.

    The owner provides ``transmit(neighbor, payload)`` (raw datagram
    send), ``deliver(neighbor, payload)`` (in-order application
    delivery) and ``set_timer(delay, fn)``; the channel handles
    sequencing, acks, retransmits, reordering and connection epochs.
    """

    MAX_RETRANSMISSIONS = 30

    #: How far past the in-order cursor a frame may run before the
    #: receiver drops it instead of buffering it. Bounds the per-
    #: neighbor reorder buffer so a partitioned or lossy peer cannot
    #: grow it without limit; retransmission recovers dropped frames.
    MAX_REORDER_BUFFER = 64

    #: Process-unique connection incarnations. Monotonic, so any new
    #: connection's epoch compares greater than every epoch that any
    #: previous incarnation (even in a restarted channel) ever used.
    _incarnations = itertools.count(1)

    def __init__(
        self,
        transmit: Callable[[str, Any], None],
        deliver: Callable[[str, Any], None],
        set_timer: Callable[..., Any],
        retransmit_timeout: float = 1.0,
    ) -> None:
        self._transmit = transmit
        self._deliver = deliver
        self._set_timer = set_timer
        self.retransmit_timeout = retransmit_timeout
        self._next_sequence: Dict[str, int] = {}
        self._send_epoch: Dict[str, int] = {}
        self._unacked: Dict[str, Dict[int, _PendingFrame]] = {}
        self._expected: Dict[str, int] = {}
        self._recv_epoch: Dict[str, int] = {}
        self._reorder: Dict[str, Dict[int, Any]] = {}
        self.retransmissions = 0
        self.duplicates_dropped = 0
        #: connections abandoned after MAX_RETRANSMISSIONS and reset
        self.connection_resets = 0
        #: receive states discarded because a newer epoch arrived
        self.epoch_resets = 0
        #: frames dropped because they carried an outdated epoch
        self.stale_epoch_dropped = 0
        #: frames dropped because they ran past the reorder window
        self.reorder_dropped = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, neighbor: str, payload: Any) -> None:
        """Queue ``payload`` for reliable in-order delivery."""
        epoch = self._send_epoch.get(neighbor)
        if epoch is None:
            epoch = next(self._incarnations)
            self._send_epoch[neighbor] = epoch
        sequence = self._next_sequence.get(neighbor, 1)
        self._next_sequence[neighbor] = sequence + 1
        frame = ReliableFrame(
            sender="", sequence=sequence, inner=payload, epoch=epoch
        )
        self._unacked.setdefault(neighbor, {})[sequence] = _PendingFrame(frame)
        self._push(neighbor, sequence)

    def _push(self, neighbor: str, sequence: int) -> None:
        pending = self._unacked.get(neighbor, {}).get(sequence)
        if pending is None:
            return  # acked (or reset away) in the meantime
        if pending.retransmissions > self.MAX_RETRANSMISSIONS:
            # The neighbor is unreachable. Dropping just this frame
            # while its successors eventually deliver would create a
            # silent gap in the in-order stream; reset the whole
            # connection instead, so anything sent from now on starts a
            # new epoch the receiver recognizes as a fresh stream.
            self.connection_resets += 1
            self.reset(neighbor)
            return
        if pending.retransmissions:
            self.retransmissions += 1
        pending.retransmissions += 1
        self._transmit(neighbor, pending.frame)
        self._set_timer(self.retransmit_timeout, self._push, neighbor, sequence)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def on_frame(self, neighbor: str, frame: ReliableFrame) -> Optional[ReliableAck]:
        """Process an incoming frame; returns the ack to transmit, or
        None for frames of an outdated epoch (acking those could only
        confuse a sender that has already moved on)."""
        current_epoch = self._recv_epoch.get(neighbor)
        if current_epoch is not None and frame.epoch < current_epoch:
            self.stale_epoch_dropped += 1
            return None
        if current_epoch is None or frame.epoch > current_epoch:
            # A new connection incarnation: the peer restarted or reset.
            # Drop all receive state and take the stream from the top.
            if current_epoch is not None:
                self.epoch_resets += 1
            self._recv_epoch[neighbor] = frame.epoch
            self._expected[neighbor] = 1
            self._reorder.pop(neighbor, None)
        expected = self._expected.get(neighbor, 1)
        if frame.sequence < expected:
            self.duplicates_dropped += 1
        elif frame.sequence == expected:
            self._deliver(neighbor, frame.inner)
            expected += 1
            buffered = self._reorder.get(neighbor, {})
            while expected in buffered:
                self._deliver(neighbor, buffered.pop(expected))
                expected += 1
            self._expected[neighbor] = expected
        elif frame.sequence - expected > self.MAX_REORDER_BUFFER:
            self.reorder_dropped += 1
        else:
            self._reorder.setdefault(neighbor, {})[frame.sequence] = frame.inner
        return ReliableAck(
            sender="",
            sequence=self._expected.get(neighbor, 1) - 1,
            epoch=self._recv_epoch[neighbor],
        )

    def on_ack(self, neighbor: str, ack: ReliableAck) -> None:
        if ack.epoch != self._send_epoch.get(neighbor):
            return  # ack for a previous incarnation of this connection
        unacked = self._unacked.get(neighbor)
        if not unacked:
            return
        for sequence in [s for s in unacked if s <= ack.sequence]:
            del unacked[sequence]

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def reset(self, neighbor: str) -> None:
        """Drop all connection state for a neighbor.

        The next ``send`` to that neighbor draws a fresh epoch and
        restarts its sequence at 1, which the receiver recognizes as a
        new stream (no frames silently dropped as duplicates)."""
        self._next_sequence.pop(neighbor, None)
        self._send_epoch.pop(neighbor, None)
        self._unacked.pop(neighbor, None)
        self._expected.pop(neighbor, None)
        self._recv_epoch.pop(neighbor, None)
        self._reorder.pop(neighbor, None)

    def unacked_count(self, neighbor: str) -> int:
        return len(self._unacked.get(neighbor, {}))

    def reorder_buffered(self, neighbor: str) -> int:
        return len(self._reorder.get(neighbor, {}))
