"""Intentional Name Resolvers and their protocols (Section 2)."""

from .cache import CacheEntry, PacketCache
from .config import InrConfig
from .costs import DEFAULT_COSTS, CostModel
from .delegation import DelegationCoordinator, DonorHandoff, RecipientHandoff
from .inr import INR, InrStats
from .loadbalance import LoadMonitor, LoadSample
from .neighbors import Neighbor, NeighborTable
from .ports import DSR_PORT, EPHEMERAL_BASE, INR_PORT, PortAllocator
from .protocol import (
    Advertisement,
    DataPacket,
    DiscoveryRequest,
    DiscoveryResponse,
    NameUpdate,
    PeerAccept,
    PeerGoodbye,
    PeerRequest,
    PingRequest,
    PingResponse,
    Pushback,
    ResolutionRequest,
    ResolutionResponse,
    UpdateBatch,
)

__all__ = [
    "Advertisement",
    "CacheEntry",
    "CostModel",
    "DEFAULT_COSTS",
    "DSR_PORT",
    "DataPacket",
    "DiscoveryRequest",
    "DiscoveryResponse",
    "EPHEMERAL_BASE",
    "INR",
    "INR_PORT",
    "InrConfig",
    "InrStats",
    "DelegationCoordinator",
    "DonorHandoff",
    "LoadMonitor",
    "LoadSample",
    "NameUpdate",
    "Neighbor",
    "NeighborTable",
    "PacketCache",
    "PeerAccept",
    "PeerGoodbye",
    "PeerRequest",
    "PingRequest",
    "PingResponse",
    "PortAllocator",
    "Pushback",
    "RecipientHandoff",
    "ResolutionRequest",
    "ResolutionResponse",
    "UpdateBatch",
]
