"""Services: applications that advertise an intentional name.

A :class:`Service` is a client that additionally announces a
name-specifier with an application-controlled metric, refreshing it
periodically (soft state, Section 2.2). Updating the metric triggers an
immediate re-advertisement, which is how the Printer proxies steer
anycast toward the least-loaded printer (Section 3.3).

Advertisements are marked *triggered* when they carry new information
(first announcement after an attachment or failover, a metric change, a
rename, a post-mobility repair) and left periodic otherwise; an
overloaded resolver's admission control sheds periodic refreshes first,
so triggered state still lands while pure keepalives wait a round.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..message import InsMessage
from ..naming import NameSpecifier
from ..nametree import AnnouncerID, Endpoint
from ..netsim import Node
from ..resolver.ports import INR_PORT
from ..resolver.protocol import Advertisement
from .api import InsClient, RetryPolicy

RequestHandler = Callable[[InsMessage, str], None]


class Service(InsClient):
    """An application that provides functionality under a name."""

    def __init__(
        self,
        node: Node,
        port: int,
        name: NameSpecifier,
        resolver: Optional[str] = None,
        dsr_address: Optional[str] = None,
        metric: float = 0.0,
        lifetime: float = 45.0,
        refresh_interval: float = 15.0,
        transport: str = "udp",
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(
            node,
            port,
            resolver=resolver,
            dsr_address=dsr_address,
            retry_policy=retry_policy,
        )
        name.require_concrete()
        self.name = name
        self.metric = metric
        self.lifetime = lifetime
        self.refresh_interval = refresh_interval
        self.transport = transport
        self.announcer = AnnouncerID.generate(node.address)
        self.advertisements_sent = 0

    def start(self) -> None:
        super().start()
        # Advertise as soon as we know our resolver, then periodically.
        # Runs again on every reattachment (including the failover path),
        # so a service is visible at its new resolver immediately.
        self.attached.then(lambda _resolver: self._begin_advertising())

    def _begin_advertising(self) -> None:
        self.advertise(triggered=True)
        # start() can run more than once (reattach after a resolver
        # failure); only the first attachment installs the refresh timer.
        if not getattr(self, "_advertising", False):
            self._advertising = True
            self.every(self.refresh_interval, self.advertise, jitter_fraction=0.05)

    def advertise(self, triggered: bool = False) -> None:
        """Announce (or refresh) this service's name at its resolver.

        The endpoint is built fresh each time so a node that moved
        advertises its new address on the next refresh — this is what
        makes INS track node mobility (Section 3.2).
        """
        if self.resolver is None:
            return
        advertisement = Advertisement(
            name=self.name,
            announcer=self.announcer,
            endpoints=(
                Endpoint(host=self.address, port=self.port, transport=self.transport),
            ),
            anycast_metric=self.metric,
            lifetime=self.lifetime,
            triggered=triggered,
        )
        self.send(self.resolver, INR_PORT, advertisement)
        self.advertisements_sent += 1

    def set_metric(self, metric: float, announce_now: bool = True) -> None:
        """Change the application-controlled anycast metric.

        With ``announce_now`` the new value reaches the resolver
        immediately (a triggered advertisement) instead of waiting for
        the next periodic refresh.
        """
        self.metric = metric
        if announce_now:
            self.advertise(triggered=True)

    def rename(self, name: NameSpecifier, announce_now: bool = True) -> None:
        """Change the advertised name (service mobility, Section 3.2).

        The AnnouncerID stays fixed, so resolvers replace the old name
        with the new one instead of keeping both.
        """
        name.require_concrete()
        self.name = name
        if announce_now:
            self.advertise(triggered=True)

    def reply_to(
        self, request: InsMessage, data: bytes, cache_lifetime: int = 0
    ) -> None:
        """Answer ``request`` by inverting its source and destination
        names, the Camera transmitter's pattern (Section 3.2)."""
        if request.source.is_empty:
            return
        response = request.reply_template()
        response.data = data
        response.cache_lifetime = cache_lifetime
        self.send_message(response)

    def on_network_change(self) -> None:
        """After mobility, re-announce immediately from the new address
        so resolvers update the name-to-location mapping fast."""
        self.advertise(triggered=True)
