"""The INS application programming interface (Section 3)."""

from .api import ClientStats, InsClient, RetryPolicy
from .futures import DeadlineExceeded, Reply, RequestError, RequestTimeout
from .mobility import MobilityManager
from .service import Service

__all__ = [
    "ClientStats",
    "DeadlineExceeded",
    "InsClient",
    "MobilityManager",
    "Reply",
    "RequestError",
    "RequestTimeout",
    "RetryPolicy",
    "Service",
]
