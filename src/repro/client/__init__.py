"""The INS application programming interface (Section 3)."""

from .api import InsClient
from .futures import Reply
from .mobility import MobilityManager
from .service import Service

__all__ = ["InsClient", "MobilityManager", "Reply", "Service"]
