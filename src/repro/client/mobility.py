"""The mobility manager (Section 4).

In the paper's implementation a MobilityManager at the client detects
network movement and rebinds the UDP socket when the IP address changes,
transparently to applications. Here, node movement is an explicit
simulation action: :meth:`MobilityManager.migrate` gives the node its
new address (datagrams in flight to the old one are lost, like real
UDP), then notifies every INS process on the node so services re-announce
themselves immediately from the new location.
"""

from __future__ import annotations

from ..netsim import Node
from .api import InsClient


class MobilityManager:
    """Moves a node between network locations."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self.moves = 0

    def migrate(self, new_address: str) -> None:
        """Change the node's network address (node mobility).

        Every :class:`InsClient`-derived process on the node is told via
        ``on_network_change()``; services re-advertise at once so the
        name discovery protocol replaces the stale location quickly.
        """
        old_address = self.node.address
        if new_address == old_address:
            return
        self.node.network.rename_node(old_address, new_address)
        self.moves += 1
        for process in self.node.processes:
            if isinstance(process, InsClient):
                process.on_network_change()
