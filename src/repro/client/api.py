"""The INS client API (Section 3).

:class:`InsClient` is what applications embed. It attaches to an INR
(either a given one, or the best of the DSR's active list measured by
INR-ping, mirroring how resolvers choose peers), and then offers the
three INS services:

- **early binding** — :meth:`resolve_early` returns the [ip, [port,
  transport]] list with per-endpoint metrics;
- **intentional anycast** — :meth:`send_anycast` late-binds a message to
  the single best matching service;
- **intentional multicast** — :meth:`send_multicast` late-binds to all
  matching services;

plus :meth:`discover` for bootstrap-style name discovery.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..message import Binding, Delivery, InsMessage
from ..naming import NameSpecifier
from ..netsim import Node, Process
from ..overlay.protocol import DsrListRequest, DsrListResponse
from ..resolver.ports import DSR_PORT, INR_PORT
from ..resolver.protocol import (
    DataPacket,
    DiscoveryRequest,
    DiscoveryResponse,
    PingRequest,
    PingResponse,
    ResolutionRequest,
    ResolutionResponse,
)
from .futures import Reply

#: How long a client waits for INR-ping answers before attaching.
_ATTACH_PING_TIMEOUT = 0.5

#: The probe name used when a client pings candidate resolvers.
_PROBE = NameSpecifier.from_dict({"service": "client-ping"})

MessageHandler = Callable[[InsMessage, str], None]


class InsClient(Process):
    """An application endpoint speaking the INS protocols."""

    def __init__(
        self,
        node: Node,
        port: int,
        resolver: Optional[str] = None,
        dsr_address: Optional[str] = None,
        reselect_interval: Optional[float] = None,
    ) -> None:
        """``reselect_interval`` enables the periodic part of the client
        configuration protocol: every interval the client re-measures
        the active INRs and moves to the best one. Because INR-ping
        responses queue behind the resolver's CPU backlog, a loaded INR
        looks slow and clients drain toward freshly spawned helpers —
        exactly how Section 2.5 expects spawn-based load balancing to
        take effect."""
        if resolver is None and dsr_address is None:
            raise ValueError("a client needs either a resolver or a DSR to find one")
        super().__init__(node, port)
        self.resolver = resolver
        self.dsr_address = dsr_address
        self.reselect_interval = reselect_interval
        self.attached = Reply()
        self._pending: Dict[int, Reply] = {}
        self._ping_rtts: Dict[str, float] = {}
        self._ping_sent: Dict[int, tuple] = {}
        self._message_handler: Optional[MessageHandler] = None
        self._reselect_timer = None

    # ------------------------------------------------------------------
    # Attachment (the client configuration protocol)
    # ------------------------------------------------------------------
    def start(self) -> None:
        if (
            self.reselect_interval is not None
            and self.dsr_address is not None
            and self._reselect_timer is None
        ):
            self._reselect_timer = self.every(self.reselect_interval, self._reselect)
        if self.resolver is not None:
            self.attached.resolve(self.resolver)
            return
        self.send(
            self.dsr_address,
            DSR_PORT,
            DsrListRequest(reply_to=self.address, reply_port=self.port),
        )

    def _reselect(self) -> None:
        """Re-run resolver selection; the current resolver keeps serving
        until a better one is measured."""
        if not self.attached.done:
            return  # initial selection still in progress
        self.attached = Reply()
        self.send(
            self.dsr_address,
            DSR_PORT,
            DsrListRequest(reply_to=self.address, reply_port=self.port),
        )

    def _handle_inr_list(self, response: DsrListResponse) -> None:
        if self.attached.done:
            return
        if not response.active:
            # No resolver yet; ask again shortly.
            self.set_timer(1.0, self.start)
            return
        self._ping_rtts = {}
        for address in response.active:
            request = PingRequest(
                probe=_PROBE, reply_to=self.address, reply_port=self.port
            )
            self._ping_sent[request.token] = (address, self.now)
            self.send(address, INR_PORT, request)
        self.set_timer(_ATTACH_PING_TIMEOUT, self._pick_resolver)

    def _pick_resolver(self) -> None:
        if self.attached.done:
            return
        if not self._ping_rtts:
            self.set_timer(1.0, self.start)
            return
        best = min(self._ping_rtts, key=lambda a: (self._ping_rtts[a], a))
        self.resolver = best
        self.attached.resolve(best)

    def reattach(self) -> None:
        """Re-run resolver selection (e.g. after the INR died or new
        resolvers were spawned for load balancing)."""
        if self.dsr_address is None:
            return
        self.attached = Reply()
        self.resolver = None
        self.start()

    def _require_resolver(self) -> str:
        if self.resolver is None:
            raise RuntimeError(
                f"client {self.address}:{self.port} is not attached to a resolver yet"
            )
        return self.resolver

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def resolve_early(self, name: NameSpecifier) -> Reply:
        """Early binding: resolve ``name`` to [(Endpoint, metric), ...],
        sorted by metric (least first)."""
        request = ResolutionRequest(
            name=name, reply_to=self.address, reply_port=self.port
        )
        reply = Reply()
        self._pending[request.request_id] = reply
        self.send(self._require_resolver(), INR_PORT, request)
        return reply

    def resolve_best(self, name: NameSpecifier) -> Reply:
        """Early binding plus the metric-based selection the paper
        describes ("the client may select an end-node with the least
        metric"): resolves to a single (Endpoint, metric) or None."""
        reply = Reply()
        self.resolve_early(name).then(
            lambda bindings: reply.resolve(bindings[0] if bindings else None)
        )
        return reply

    def discover(self, name_filter: NameSpecifier) -> Reply:
        """Name discovery: all known names matching ``name_filter`` as
        [(NameSpecifier, metric), ...]."""
        request = DiscoveryRequest(
            filter=name_filter, reply_to=self.address, reply_port=self.port
        )
        reply = Reply()
        self._pending[request.request_id] = reply
        self.send(self._require_resolver(), INR_PORT, request)
        return reply

    # ------------------------------------------------------------------
    # Late binding sends
    # ------------------------------------------------------------------
    def send_message(self, message: InsMessage) -> None:
        """Hand a fully-formed INS message to the attached resolver."""
        self.send(self._require_resolver(), INR_PORT, DataPacket(raw=message.encode()))

    def send_anycast(
        self,
        destination: NameSpecifier,
        data: bytes = b"",
        source: Optional[NameSpecifier] = None,
        cache_lifetime: int = 0,
        accept_cached: bool = False,
    ) -> None:
        """Intentional anycast: deliver to the best node matching
        ``destination`` (least application-advertised metric)."""
        self.send_message(
            InsMessage(
                destination=destination,
                source=source if source is not None else NameSpecifier(),
                data=data,
                binding=Binding.LATE,
                delivery=Delivery.ANYCAST,
                cache_lifetime=cache_lifetime,
                accept_cached=accept_cached,
            )
        )

    def send_multicast(
        self,
        destination: NameSpecifier,
        data: bytes = b"",
        source: Optional[NameSpecifier] = None,
        cache_lifetime: int = 0,
    ) -> None:
        """Intentional multicast: deliver to every node matching
        ``destination``."""
        self.send_message(
            InsMessage(
                destination=destination,
                source=source if source is not None else NameSpecifier(),
                data=data,
                binding=Binding.LATE,
                delivery=Delivery.MULTICAST,
                cache_lifetime=cache_lifetime,
            )
        )

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def on_message(self, handler: MessageHandler) -> None:
        """Register the callback for late-bound messages tunnelled to
        this endpoint: ``handler(message, source_address)``."""
        self._message_handler = handler

    def handle_message(self, payload: object, source: str) -> None:
        if isinstance(payload, (ResolutionResponse, DiscoveryResponse)):
            reply = self._pending.pop(payload.request_id, None)
            if reply is not None:
                reply.resolve(
                    payload.bindings
                    if isinstance(payload, ResolutionResponse)
                    else payload.names
                )
        elif isinstance(payload, DataPacket):
            if self._message_handler is not None:
                self._message_handler(payload.message, source)
        elif isinstance(payload, PingResponse):
            sent = self._ping_sent.pop(payload.token, None)
            if sent is not None:
                address, sent_at = sent
                self._ping_rtts[address] = self.now - sent_at
        elif isinstance(payload, DsrListResponse):
            self._handle_inr_list(payload)

    def on_network_change(self) -> None:
        """Called by the mobility manager after this node's address
        changed; plain clients have no announcements to repair."""
