"""The INS client API (Section 3).

:class:`InsClient` is what applications embed. It attaches to an INR
(either a given one, or the best of the DSR's active list measured by
INR-ping, mirroring how resolvers choose peers), and then offers the
three INS services:

- **early binding** — :meth:`resolve_early` returns the [ip, [port,
  transport]] list with per-endpoint metrics;
- **intentional anycast** — :meth:`send_anycast` late-binds a message to
  the single best matching service;
- **intentional multicast** — :meth:`send_multicast` late-binds to all
  matching services;

plus :meth:`discover` for bootstrap-style name discovery.

Every request/response operation (early binding, discovery, the attach
pings and DSR list requests behind them) is wrapped in the resilience
layer described by :class:`RetryPolicy`: per-request timeouts with
capped exponential backoff, an overall deadline after which the
:class:`~.futures.Reply` fails instead of hanging, resolver ``Pushback``
hints that defer the next retransmission, and automatic failover to a
different resolver after enough consecutive timeouts against the
current one. Per-client counters live in :class:`ClientStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, Dict, Optional, Tuple

from ..message import Binding, Delivery, InsMessage
from ..naming import NameSpecifier
from ..netsim import Node, Process
from ..obs import STATUS_OK
from ..message.dsr import DsrListRequest, DsrListResponse
from ..resolver.ports import DSR_PORT, INR_PORT
from ..resolver.protocol import (
    DataPacket,
    DiscoveryRequest,
    DiscoveryResponse,
    PingRequest,
    PingResponse,
    Pushback,
    ResolutionRequest,
    ResolutionResponse,
)
from .futures import DeadlineExceeded, Reply, RequestTimeout

#: How long a client waits for INR-ping answers before attaching.
_ATTACH_PING_TIMEOUT = 0.5

#: How long a reselection round may run before the previous attachment
#: is restored (list round-trip plus the ping round, with margin).
_RESELECT_TIMEOUT = 2.0

#: The probe name used when a client pings candidate resolvers.
_PROBE = NameSpecifier.from_dict({"service": "client-ping"})

MessageHandler = Callable[[InsMessage, str], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Resilience knobs for one client's request/response operations.

    The retransmit schedule: attempt k is answered within
    ``min(request_timeout * backoff_factor**(k-1), backoff_max)``
    seconds or it times out and the next attempt goes out (retry delays
    after the first carry multiplicative jitter so synchronized clients
    do not retry in lockstep). ``max_attempts`` timeouts fail the
    request with :class:`~.futures.RequestTimeout`; ``deadline`` caps
    the whole request with :class:`~.futures.DeadlineExceeded`
    regardless of how many attempts remain. ``failover_threshold``
    consecutive timeouts against one resolver trigger ``reattach()``
    through the DSR, excluding the suspect.
    """

    enabled: bool = True
    request_timeout: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 4.0
    jitter_fraction: float = 0.1
    max_attempts: int = 4
    deadline: float = 10.0
    failover_threshold: int = 3

    @classmethod
    def disabled(cls) -> "RetryPolicy":
        """Fire-and-forget mode: one datagram per request, no timers —
        the pre-resilience behavior, kept for ablations."""
        return cls(enabled=False)


@dataclass
class ClientStats:
    """Per-client resilience counters."""

    requests_sent: int = 0
    attempts_sent: int = 0
    retries: int = 0
    requests_succeeded: int = 0
    requests_failed: int = 0
    deadline_exceeded: int = 0
    pushbacks_received: int = 0
    failovers: int = 0
    attach_retries: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Every counter in declaration order — the uniform shape the
        metrics registry ingests and artifacts embed."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class _PendingRequest:
    """Book-keeping for one in-flight request/response operation."""

    reply: Reply
    request: object
    started_at: float = 0.0
    attempts: int = 0
    timeouts: int = 0
    resolver: Optional[str] = None
    timer: Optional[object] = None
    #: The root span covering this request, when the domain is traced.
    span: Optional[object] = None

    def cancel_timer(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None


class InsClient(Process):
    """An application endpoint speaking the INS protocols."""

    def __init__(
        self,
        node: Node,
        port: int,
        resolver: Optional[str] = None,
        dsr_address: Optional[str] = None,
        reselect_interval: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        """``reselect_interval`` enables the periodic part of the client
        configuration protocol: every interval the client re-measures
        the active INRs and moves to the best one. Because INR-ping
        responses queue behind the resolver's CPU backlog, a loaded INR
        looks slow and clients drain toward freshly spawned helpers —
        exactly how Section 2.5 expects spawn-based load balancing to
        take effect."""
        if resolver is None and dsr_address is None:
            raise ValueError("a client needs either a resolver or a DSR to find one")
        super().__init__(node, port)
        self.resolver = resolver
        self.dsr_address = dsr_address
        self.reselect_interval = reselect_interval
        self.retry_policy = retry_policy or RetryPolicy()
        self.stats = ClientStats()
        #: Observability hook: a ``repro.obs.Tracer`` when the domain is
        #: being observed, None otherwise (zero cost when off).
        self.tracer = None
        self.attached = Reply()
        self._pending: Dict[int, _PendingRequest] = {}
        self._ping_rtts: Dict[str, float] = {}
        self._ping_sent: Dict[int, tuple] = {}
        self._message_handler: Optional[MessageHandler] = None
        self._reselect_timer = None
        #: resolver address skipped during the next selection round
        #: (the suspect a failover is escaping from).
        self._exclude_resolver: Optional[str] = None
        #: (attached Reply, resolver) to fall back to if a reselection
        #: round dies on a lost datagram.
        self._reselect_previous: Optional[Tuple[Reply, Optional[str]]] = None
        self._reselect_epoch = 0
        self._attach_epoch = 0
        self._attach_attempts = 0
        #: True between a DSR list arriving and the ping round closing;
        #: while set, the list-request watchdog stands down.
        self._ping_round_open = False
        self._consecutive_failures = 0
        #: Once a client has attached at least once, a resilient request
        #: issued mid-failover waits for the new resolver instead of
        #: raising — only a never-attached client rejects operations.
        self._ever_attached = False

    # ------------------------------------------------------------------
    # Attachment (the client configuration protocol)
    # ------------------------------------------------------------------
    def start(self) -> None:
        if (
            self.reselect_interval is not None
            and self.dsr_address is not None
            and self._reselect_timer is None
        ):
            self._reselect_timer = self.every(self.reselect_interval, self._reselect)
        if self.resolver is not None:
            self._ever_attached = True
            self.attached.resolve(self.resolver)
            return
        self._request_inr_list()

    def _request_inr_list(self) -> None:
        """Ask the DSR for the active list, with a retransmit watchdog:
        on a lossy link the request or its answer may vanish, and an
        attach round must not hang forever."""
        self._attach_epoch += 1
        self._ping_round_open = False
        self.send(
            self.dsr_address,
            DSR_PORT,
            DsrListRequest(reply_to=self.address, reply_port=self.port),
        )
        if self.retry_policy.enabled:
            self._attach_attempts += 1
            delay = min(1.0 * 2.0 ** (self._attach_attempts - 1), 5.0)
            self.set_timer(delay, self._attach_watchdog, self._attach_epoch)

    def _attach_watchdog(self, epoch: int) -> None:
        if epoch != self._attach_epoch or self.attached.done:
            return
        if self._ping_round_open:
            return  # the list arrived; the ping-timeout path is in control
        self.stats.attach_retries += 1
        self._request_inr_list()

    def _reselect(self) -> None:
        """Re-run resolver selection; the current resolver keeps serving
        until a better one is measured. If the round dies (lost DSR
        response, no ping answers) the previous attachment is restored,
        so callbacks registered against ``attached`` in the window never
        hang while the old resolver still works."""
        if not self.attached.done:
            return  # initial selection still in progress
        self._reselect_previous = (self.attached, self.resolver)
        self._reselect_epoch += 1
        self.attached = Reply()
        self._attach_attempts = 0
        self._request_inr_list()
        self.set_timer(_RESELECT_TIMEOUT, self._restore_reselect, self._reselect_epoch)

    def _restore_reselect(self, epoch: int) -> None:
        if epoch != self._reselect_epoch or self.attached.done:
            return
        previous = self._reselect_previous
        if previous is None:
            return
        self.attached, self.resolver = previous
        self._reselect_previous = None
        self._attach_epoch += 1  # stand the watchdog down
        self._ping_round_open = False

    def _handle_inr_list(self, response: DsrListResponse) -> None:
        if self.attached.done:
            return
        if not response.active:
            # No resolver yet; ask again shortly.
            self._ping_round_open = False
            self.set_timer(1.0, self._request_inr_list)
            return
        candidates = [a for a in response.active if a != self._exclude_resolver]
        if not candidates:
            # The suspect is the only resolver there is; better a slow
            # or flaky INR than none at all.
            candidates = list(response.active)
        self._ping_round_open = True
        self._ping_rtts = {}
        for address in candidates:
            request = PingRequest(
                probe=_PROBE, reply_to=self.address, reply_port=self.port
            )
            self._ping_sent[request.token] = (address, self.now)
            self.send(address, INR_PORT, request)
        self.set_timer(_ATTACH_PING_TIMEOUT, self._pick_resolver)

    def _pick_resolver(self) -> None:
        # The selection round is over: tokens whose responses never
        # arrived would otherwise pin dead entries forever.
        self._ping_sent.clear()
        self._ping_round_open = False
        if self.attached.done:
            return
        if not self._ping_rtts:
            if self._reselect_previous is not None:
                self._restore_reselect(self._reselect_epoch)
                return
            self.set_timer(1.0, self._request_inr_list)
            return
        best = min(self._ping_rtts, key=lambda a: (self._ping_rtts[a], a))
        self.resolver = best
        self._exclude_resolver = None
        self._reselect_previous = None
        self._consecutive_failures = 0
        self._ever_attached = True
        self.attached.resolve(best)

    def reattach(self, exclude: Optional[str] = None) -> None:
        """Re-run resolver selection (e.g. after the INR died or new
        resolvers were spawned for load balancing). ``exclude`` skips
        one address during the round — the failover path uses it to
        avoid re-picking the resolver that just went silent."""
        if self.dsr_address is None:
            return
        self._exclude_resolver = exclude
        self._reselect_previous = None
        self.attached = Reply()
        self.resolver = None
        self._attach_attempts = 0
        self.start()

    def _require_resolver(self) -> str:
        if self.resolver is None:
            raise RuntimeError(
                f"client {self.address}:{self.port} is not attached to a resolver yet"
            )
        return self.resolver

    # ------------------------------------------------------------------
    # The request/response resilience layer
    # ------------------------------------------------------------------
    def _issue(self, request, reply: Reply) -> Reply:
        """Send ``request`` under the retry policy and track ``reply``."""
        policy = self.retry_policy
        if not (policy.enabled and self._ever_attached):
            # Mid-failover a resilient request waits for the new
            # resolver; everyone else needs an attachment up front.
            self._require_resolver()
        self.stats.requests_sent += 1
        pending = _PendingRequest(reply=reply, request=request, started_at=self.now)
        if self.tracer is not None:
            # Root span of the trace: every INR hop this request touches
            # nests under it through the wire context.
            pending.span = self.tracer.start_span(
                "client.request",
                node=f"{self.address}:{self.port}",
                tags={"kind": type(request).__name__},
            )
            request.trace = pending.span.context
        self._pending[request.request_id] = pending
        if not policy.enabled:
            # Fire-and-forget: one datagram, no timers, replies may hang.
            pending.attempts = 1
            self.stats.attempts_sent += 1
            self.send(self.resolver, INR_PORT, request)
            return reply
        reply.deadline = self.now + policy.deadline
        self._attempt(request.request_id)
        return reply

    def _attempt(self, request_id: int) -> None:
        pending = self._pending.get(request_id)
        if pending is None:
            return
        policy = self.retry_policy
        if self.now - pending.started_at >= policy.deadline:
            self._fail_request(request_id, DeadlineExceeded(
                f"request {request_id} exceeded its {policy.deadline}s deadline"
            ))
            return
        if self.resolver is None:
            # Reattachment in progress: hold the attempt until a new
            # resolver is selected (the deadline still applies).
            pending.timer = self.set_timer(0.25, self._attempt, request_id)
            return
        pending.attempts += 1
        pending.resolver = self.resolver
        self.stats.attempts_sent += 1
        if pending.attempts > 1:
            self.stats.retries += 1
        if pending.span is not None:
            self.tracer.annotate(
                pending.span,
                f"attempt {pending.attempts} -> {self.resolver}",
            )
        self.send(self.resolver, INR_PORT, pending.request)
        timeout = min(
            policy.request_timeout * policy.backoff_factor ** pending.timeouts,
            policy.backoff_max,
        )
        if pending.timeouts > 0 and policy.jitter_fraction > 0.0:
            # Jitter only the backed-off waits: synchronized clients must
            # not hammer a recovering resolver in lockstep, but the happy
            # path should not consume RNG draws.
            timeout *= 1.0 + policy.jitter_fraction * self.sim.rng.random()
        remaining = pending.started_at + policy.deadline - self.now
        timeout = min(timeout, max(remaining, 1e-3))
        pending.timer = self.set_timer(
            timeout, self._on_request_timeout, request_id, pending.attempts
        )

    def _on_request_timeout(self, request_id: int, attempt_no: int) -> None:
        pending = self._pending.get(request_id)
        if pending is None or pending.attempts != attempt_no:
            return  # answered, or superseded by a pushback reschedule
        pending.timeouts += 1
        if pending.span is not None:
            self.tracer.annotate(
                pending.span, f"timeout {pending.timeouts} at {pending.resolver}"
            )
        self._note_resolver_failure(pending.resolver)
        if pending.timeouts >= self.retry_policy.max_attempts:
            self._fail_request(request_id, RequestTimeout(
                f"request {request_id} unanswered after "
                f"{pending.timeouts} attempts"
            ))
            return
        self._attempt(request_id)

    def _fail_request(self, request_id: int, error: BaseException) -> None:
        pending = self._pending.pop(request_id, None)
        if pending is None:
            return
        pending.cancel_timer()
        self.stats.requests_failed += 1
        if isinstance(error, DeadlineExceeded):
            self.stats.deadline_exceeded += 1
        if pending.span is not None:
            status = (
                "deadline-exceeded"
                if isinstance(error, DeadlineExceeded)
                else "timeout"
                if isinstance(error, RequestTimeout)
                else "failed"
            )
            self.tracer.end_span(pending.span, status)
        pending.reply.fail(error)

    def _note_resolver_failure(self, address: Optional[str]) -> None:
        """Count a timeout against the resolver an attempt targeted;
        enough consecutive ones trigger failover through the DSR."""
        if address is None or address != self.resolver:
            return  # a straggler against a resolver we already left
        self._consecutive_failures += 1
        if (
            self.dsr_address is not None
            and self._consecutive_failures >= self.retry_policy.failover_threshold
        ):
            self._consecutive_failures = 0
            self.stats.failovers += 1
            self.reattach(exclude=address)

    def _handle_pushback(self, pushback: Pushback) -> None:
        pending = self._pending.get(pushback.request_id)
        if pending is None:
            return
        self.stats.pushbacks_received += 1
        # The resolver is alive, just shedding: its hint replaces our own
        # backoff and does not count toward failover.
        self._consecutive_failures = 0
        if pending.span is not None:
            self.tracer.annotate(
                pending.span,
                f"pushback from {pushback.responder}, "
                f"retry after {pushback.retry_after:.3f}s",
            )
        if not self.retry_policy.enabled:
            return
        pending.cancel_timer()
        delay = max(pushback.retry_after, self.retry_policy.request_timeout * 0.5)
        pending.timer = self.set_timer(delay, self._attempt, pushback.request_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def resolve_early(self, name: NameSpecifier) -> Reply:
        """Early binding: resolve ``name`` to [(Endpoint, metric), ...],
        sorted by metric (least first)."""
        request = ResolutionRequest(
            name=name, reply_to=self.address, reply_port=self.port
        )
        return self._issue(request, Reply())

    def resolve_best(self, name: NameSpecifier) -> Reply:
        """Early binding plus the metric-based selection the paper
        describes ("the client may select an end-node with the least
        metric"): resolves to a single (Endpoint, metric) or None."""
        reply = Reply()
        inner = self.resolve_early(name)
        inner.then(
            lambda bindings: reply.resolve(bindings[0] if bindings else None)
        )
        inner.on_error(reply.fail)
        return reply

    def discover(self, name_filter: NameSpecifier) -> Reply:
        """Name discovery: all known names matching ``name_filter`` as
        [(NameSpecifier, metric), ...]."""
        request = DiscoveryRequest(
            filter=name_filter, reply_to=self.address, reply_port=self.port
        )
        return self._issue(request, Reply())

    # ------------------------------------------------------------------
    # Late binding sends
    # ------------------------------------------------------------------
    def send_message(self, message: InsMessage) -> None:
        """Hand a fully-formed INS message to the attached resolver."""
        resolver = self._require_resolver()
        if self.tracer is not None and message.trace is None:
            # Root span for a late-binding send: zero-duration anchor
            # that the per-INR hop spans nest under.
            span = self.tracer.start_span(
                "client.send",
                node=f"{self.address}:{self.port}",
                tags={"delivery": message.delivery.value},
            )
            message.trace = span.context
            self.send(resolver, INR_PORT, DataPacket(raw=message.encode()))
            self.tracer.end_span(span, "sent")
            return
        self.send(resolver, INR_PORT, DataPacket(raw=message.encode()))

    def send_anycast(
        self,
        destination: NameSpecifier,
        data: bytes = b"",
        source: Optional[NameSpecifier] = None,
        cache_lifetime: int = 0,
        accept_cached: bool = False,
    ) -> None:
        """Intentional anycast: deliver to the best node matching
        ``destination`` (least application-advertised metric)."""
        self.send_message(
            InsMessage(
                destination=destination,
                source=source if source is not None else NameSpecifier(),
                data=data,
                binding=Binding.LATE,
                delivery=Delivery.ANYCAST,
                cache_lifetime=cache_lifetime,
                accept_cached=accept_cached,
            )
        )

    def send_multicast(
        self,
        destination: NameSpecifier,
        data: bytes = b"",
        source: Optional[NameSpecifier] = None,
        cache_lifetime: int = 0,
    ) -> None:
        """Intentional multicast: deliver to every node matching
        ``destination``."""
        self.send_message(
            InsMessage(
                destination=destination,
                source=source if source is not None else NameSpecifier(),
                data=data,
                binding=Binding.LATE,
                delivery=Delivery.MULTICAST,
                cache_lifetime=cache_lifetime,
            )
        )

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def on_message(self, handler: MessageHandler) -> None:
        """Register the callback for late-bound messages tunnelled to
        this endpoint: ``handler(message, source_address)``."""
        self._message_handler = handler

    def handle_message(self, payload: object, source: str) -> None:
        if isinstance(payload, (ResolutionResponse, DiscoveryResponse)):
            pending = self._pending.pop(payload.request_id, None)
            if pending is not None:
                pending.cancel_timer()
                self.stats.requests_succeeded += 1
                self._consecutive_failures = 0
                if pending.span is not None:
                    self.tracer.end_span(pending.span, STATUS_OK)
                pending.reply.resolve(
                    payload.bindings
                    if isinstance(payload, ResolutionResponse)
                    else payload.names
                )
        elif isinstance(payload, Pushback):
            self._handle_pushback(payload)
        elif isinstance(payload, DataPacket):
            if self._message_handler is not None:
                self._message_handler(payload.message, source)
        elif isinstance(payload, PingResponse):
            sent = self._ping_sent.pop(payload.token, None)
            if sent is not None:
                address, sent_at = sent
                self._ping_rtts[address] = self.now - sent_at
        elif isinstance(payload, DsrListResponse):
            self._handle_inr_list(payload)

    @property
    def pending_requests(self) -> int:
        """Requests issued but not yet settled (for tests and chaos)."""
        return len(self._pending)

    def on_network_change(self) -> None:
        """Called by the mobility manager after this node's address
        changed; plain clients have no announcements to repair."""
