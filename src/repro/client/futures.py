"""A tiny future for request/response over the simulated network.

Client operations (early-binding resolution, name discovery) are
asynchronous: the reply arrives as a later simulator event. A
:class:`Reply` lets callers either register callbacks or run the
simulator and then read ``value``.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class Reply:
    """A single-assignment container for an asynchronous result."""

    def __init__(self) -> None:
        self._value: Any = None
        self._done = False
        self._callbacks: List[Callable[[Any], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        """The result; raises if the reply has not arrived yet."""
        if not self._done:
            raise RuntimeError("reply not available yet; run the simulator")
        return self._value

    def value_or(self, default: Any) -> Any:
        return self._value if self._done else default

    def resolve(self, value: Any) -> None:
        """Deliver the result; runs registered callbacks. Idempotent —
        only the first resolution counts (duplicate datagrams happen)."""
        if self._done:
            return
        self._value = value
        self._done = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)

    def then(self, callback: Callable[[Any], None]) -> "Reply":
        """Run ``callback(value)`` once resolved (immediately if done)."""
        if self._done:
            callback(self._value)
        else:
            self._callbacks.append(callback)
        return self
