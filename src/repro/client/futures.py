"""A tiny future for request/response over the simulated network.

Client operations (early-binding resolution, name discovery) are
asynchronous: the reply arrives as a later simulator event. A
:class:`Reply` lets callers either register callbacks or run the
simulator and then read ``value``.

A reply can also *fail* — the request timed out against every resolver
tried, or its overall deadline passed. Failure is terminal and mutually
exclusive with success: the first of :meth:`resolve` / :meth:`fail`
wins and the loser is ignored, which is exactly the semantics a lossy
datagram network needs (a late duplicate response arriving after the
client gave up must not reanimate the request).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class RequestError(Exception):
    """Base class for client request failures carried by a Reply."""


class RequestTimeout(RequestError):
    """Every retransmission of a request went unanswered."""


class DeadlineExceeded(RequestError):
    """The request's overall deadline passed before an answer arrived."""


class Reply:
    """A single-assignment container for an asynchronous result.

    Exactly one of three things happens to a reply: it stays pending
    forever (the caller abandoned it), it resolves with a value, or it
    fails with a :class:`RequestError`. ``done`` reports success only;
    ``settled`` reports "no longer pending".
    """

    def __init__(self) -> None:
        self._value: Any = None
        self._done = False
        self._failed = False
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[[Any], None]] = []
        self._error_callbacks: List[Callable[[BaseException], None]] = []
        #: Absolute virtual time by which this request must settle, when
        #: the issuing client enforces one (informational for callers).
        self.deadline: Optional[float] = None

    @property
    def done(self) -> bool:
        return self._done

    @property
    def failed(self) -> bool:
        return self._failed

    @property
    def settled(self) -> bool:
        """True once the reply resolved or failed."""
        return self._done or self._failed

    @property
    def error(self) -> Optional[BaseException]:
        """The failure, or None while pending/resolved."""
        return self._error

    @property
    def value(self) -> Any:
        """The result; raises if the reply has not arrived (or failed)."""
        if self._failed:
            raise self._error
        if not self._done:
            raise RuntimeError("reply not available yet; run the simulator")
        return self._value

    def value_or(self, default: Any) -> Any:
        return self._value if self._done else default

    def resolve(self, value: Any) -> None:
        """Deliver the result; runs registered callbacks. Idempotent —
        only the first settlement counts (duplicate datagrams happen),
        and a response landing after the request already failed is
        ignored the same way."""
        if self._done or self._failed:
            return
        self._value = value
        self._done = True
        self._error_callbacks = []
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)

    def fail(self, error: BaseException) -> None:
        """Settle the reply as failed; runs ``on_error`` callbacks.
        Idempotent, and a no-op once the reply resolved."""
        if self._done or self._failed:
            return
        self._error = error
        self._failed = True
        self._callbacks = []
        callbacks, self._error_callbacks = self._error_callbacks, []
        for callback in callbacks:
            callback(error)

    def then(self, callback: Callable[[Any], None]) -> "Reply":
        """Run ``callback(value)`` once resolved (immediately if done)."""
        if self._done:
            callback(self._value)
        elif not self._failed:
            self._callbacks.append(callback)
        return self

    def on_error(self, callback: Callable[[BaseException], None]) -> "Reply":
        """Run ``callback(error)`` if the reply fails (immediately if it
        already has). Each callback fires at most once."""
        if self._failed:
            callback(self._error)
        elif not self._done:
            self._error_callbacks.append(callback)
        return self
