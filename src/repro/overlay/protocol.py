"""Compatibility re-export of the DSR wire messages.

The definitions moved to :mod:`repro.message.dsr` so the resolver can
speak the DSR protocol without importing the overlay layer above it
(the layering DAG runs naming -> ... -> resolver -> overlay). Existing
imports of ``repro.overlay.protocol`` keep working through this module.
"""

from ..message.dsr import (
    BASE_OVERHEAD,
    DsrClaimCandidate,
    DsrClaimResponse,
    DsrDeregister,
    DsrHeartbeat,
    DsrListRequest,
    DsrListResponse,
    DsrRegisterActive,
    DsrRegisterCandidate,
    DsrReplicate,
    DsrVspaceRequest,
    DsrVspaceResponse,
)

__all__ = [
    "BASE_OVERHEAD",
    "DsrClaimCandidate",
    "DsrClaimResponse",
    "DsrDeregister",
    "DsrHeartbeat",
    "DsrListRequest",
    "DsrListResponse",
    "DsrRegisterActive",
    "DsrRegisterCandidate",
    "DsrReplicate",
    "DsrVspaceRequest",
    "DsrVspaceResponse",
]
