"""Overlay self-configuration: the DSR and its protocol (Section 2.4)."""

from .dsr import DEFAULT_REGISTRATION_LIFETIME, DomainSpaceResolver
from .protocol import (
    DsrClaimCandidate,
    DsrClaimResponse,
    DsrDeregister,
    DsrHeartbeat,
    DsrListRequest,
    DsrListResponse,
    DsrRegisterActive,
    DsrRegisterCandidate,
    DsrReplicate,
    DsrVspaceRequest,
    DsrVspaceResponse,
)

__all__ = [
    "DEFAULT_REGISTRATION_LIFETIME",
    "DomainSpaceResolver",
    "DsrClaimCandidate",
    "DsrClaimResponse",
    "DsrDeregister",
    "DsrHeartbeat",
    "DsrListRequest",
    "DsrListResponse",
    "DsrRegisterActive",
    "DsrRegisterCandidate",
    "DsrReplicate",
    "DsrVspaceRequest",
    "DsrVspaceResponse",
]
