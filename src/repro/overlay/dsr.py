"""The Domain Space Resolver (Section 2.4).

The DSR is the one well-known entity in an INS domain — the paper likens
it to an extension of the domain's DNS server. It maintains:

- the **active list**: INRs currently in the overlay, in the order they
  became active. This linear order is what makes the self-configured
  topology a spanning tree: every joiner peers with exactly one INR
  already on the list.
- the **candidate list**: nodes that can host a spawned INR when an
  active one overloads (Section 2.5). Claims remove the candidate so
  two resolvers never spawn onto the same node.
- the **vspace map**: which resolvers route each virtual space, used to
  forward requests for spaces the local INR does not route.

Registrations are soft state: active INRs heartbeat and silent ones are
expired, so a crashed resolver disappears from the list on its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..netsim import Node, Process
from ..resolver.ports import DSR_PORT, INR_PORT
from .protocol import (
    DsrClaimCandidate,
    DsrClaimResponse,
    DsrDeregister,
    DsrHeartbeat,
    DsrListRequest,
    DsrListResponse,
    DsrRegisterActive,
    DsrRegisterCandidate,
    DsrReplicate,
    DsrVspaceRequest,
    DsrVspaceResponse,
)

#: How long a registration lives without a heartbeat.
DEFAULT_REGISTRATION_LIFETIME = 45.0


@dataclass
class _ActiveEntry:
    address: str
    vspaces: Tuple[str, ...]
    expires_at: float


@dataclass
class _ClaimTaken:
    """Replicated notice that a candidate node was granted."""

    candidate: str

    def wire_size(self) -> int:
        return 28 + len(self.candidate)


class DomainSpaceResolver(Process):
    """The DSR process; binds the well-known DSR port on its node."""

    def __init__(
        self,
        node: Node,
        registration_lifetime: float = DEFAULT_REGISTRATION_LIFETIME,
        sweep_interval: float = 5.0,
        peers: Tuple[str, ...] = (),
    ) -> None:
        """``peers`` are replica DSR addresses: every state-changing
        message is forwarded to them (Section 2.4: the DSR "may be
        replicated for fault-tolerance"). Candidate claims remain
        single-writer in spirit — concurrent claims of the same node at
        two replicas can race, which soft state tolerates but operators
        should route claims at one replica.
        """
        super().__init__(node, DSR_PORT)
        self._lifetime = registration_lifetime
        #: insertion-ordered: the linear order of Section 2.4
        self._active: Dict[str, _ActiveEntry] = {}
        self._candidates: List[str] = []
        self._vspace_map: Dict[str, Set[str]] = {}
        self.queries_served = 0
        self._sweep_interval = sweep_interval
        self.peers: Tuple[str, ...] = tuple(peers)

    def add_peer(self, address: str) -> None:
        """Register another replica to mirror state changes to."""
        if address != self.address and address not in self.peers:
            self.peers = self.peers + (address,)

    # ------------------------------------------------------------------
    # State transfer (failover promotion)
    # ------------------------------------------------------------------
    def snapshot(self) -> tuple:
        """A copyable view of the registration state, for promoting a
        standby after the primary dies."""
        return (
            tuple(
                (entry.address, entry.vspaces, entry.expires_at)
                for entry in self._active.values()
            ),
            tuple(self._candidates),
        )

    def adopt(self, snapshot: tuple) -> None:
        """Replace this DSR's state with ``snapshot`` (from a replica).

        Adopted registrations keep their expiry times: state the dead
        primary believed in is honored only as long as its soft-state
        lease, then the INRs' own heartbeats take over.
        """
        actives, candidates = snapshot
        self._active = {
            address: _ActiveEntry(address, tuple(vspaces), expires_at)
            for address, vspaces, expires_at in actives
        }
        self._candidates = list(candidates)
        self._vspace_map = {}
        for address, vspaces, _expires_at in actives:
            for vspace in vspaces:
                self._vspace_map.setdefault(vspace, set()).add(address)

    def start(self) -> None:
        self.every(self._sweep_interval, self._sweep_expired)

    # ------------------------------------------------------------------
    # Introspection (used by experiments and tests)
    # ------------------------------------------------------------------
    @property
    def registration_lifetime(self) -> float:
        """How long a registration lives without a heartbeat."""
        return self._lifetime

    @property
    def active_inrs(self) -> Tuple[str, ...]:
        """Active INR addresses, in activation (linear) order."""
        return tuple(self._active)

    @property
    def candidates(self) -> Tuple[str, ...]:
        return tuple(self._candidates)

    def resolvers_for(self, vspace: str) -> Tuple[str, ...]:
        return tuple(sorted(self._vspace_map.get(vspace, ())))

    def vspace_map(self) -> Dict[str, Tuple[str, ...]]:
        """The full vspace → resolvers mapping, deterministically
        ordered. The delegation invariants read this to assert that a
        handed-off space converges to exactly one authoritative INR."""
        return {
            vspace: tuple(sorted(resolvers))
            for vspace, resolvers in sorted(self._vspace_map.items())
        }

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle_message(self, payload, source: str) -> None:
        replicated = isinstance(payload, DsrReplicate)
        if replicated:
            payload = payload.inner
        if isinstance(payload, DsrRegisterActive):
            self._register_active(payload.address, payload.vspaces)
            if not replicated:
                self._mirror(payload)
        elif isinstance(payload, DsrRegisterCandidate):
            if (
                payload.address not in self._candidates
                and payload.address not in self._active
            ):
                self._candidates.append(payload.address)
            if not replicated:
                self._mirror(payload)
        elif isinstance(payload, DsrDeregister):
            self._drop_active(payload.address)
            if not replicated:
                self._mirror(payload)
        elif isinstance(payload, DsrHeartbeat):
            self._register_active(payload.address, payload.vspaces)
            if not replicated:
                self._mirror(payload)
        elif isinstance(payload, DsrListRequest):
            self.queries_served += 1
            self.send(
                payload.reply_to,
                payload.reply_port,
                DsrListResponse(
                    request_id=payload.request_id,
                    active=self.active_inrs,
                    candidates=self.candidates,
                ),
            )
        elif isinstance(payload, DsrVspaceRequest):
            self.queries_served += 1
            self.send(
                payload.reply_to,
                payload.reply_port,
                DsrVspaceResponse(
                    request_id=payload.request_id,
                    vspace=payload.vspace,
                    resolvers=self.resolvers_for(payload.vspace),
                ),
            )
        elif isinstance(payload, DsrClaimCandidate):
            candidate = self._candidates.pop(0) if self._candidates else ""
            self.send(
                payload.reply_to,
                payload.reply_port,
                DsrClaimResponse(request_id=payload.request_id, candidate=candidate),
            )
            if candidate and not replicated:
                # Tell replicas the candidate is taken. A same-instant
                # claim at another replica can still race; spawner-side
                # idempotence absorbs it.
                self._mirror(_ClaimTaken(candidate))
        elif isinstance(payload, _ClaimTaken):
            if payload.candidate in self._candidates:
                self._candidates.remove(payload.candidate)
            if not replicated:
                self._mirror(payload)

    def _mirror(self, payload) -> None:
        for peer in self.peers:
            self.send(peer, DSR_PORT, DsrReplicate(origin=self.address,
                                                   inner=payload))

    # ------------------------------------------------------------------
    # Registration state
    # ------------------------------------------------------------------
    def _register_active(self, address: str, vspaces: Tuple[str, ...]) -> None:
        expires = self.now + self._lifetime
        entry = self._active.get(address)
        if entry is None:
            # A node promoted from candidate stops being spawnable.
            if address in self._candidates:
                self._candidates.remove(address)
            self._active[address] = _ActiveEntry(address, tuple(vspaces), expires)
        else:
            entry.expires_at = expires
            if tuple(vspaces) != entry.vspaces:
                self._unmap_vspaces(address, entry.vspaces)
                entry.vspaces = tuple(vspaces)
        for vspace in vspaces:
            self._vspace_map.setdefault(vspace, set()).add(address)

    def _drop_active(self, address: str) -> None:
        entry = self._active.pop(address, None)
        if entry is not None:
            self._unmap_vspaces(address, entry.vspaces)

    def _unmap_vspaces(self, address: str, vspaces: Tuple[str, ...]) -> None:
        for vspace in vspaces:
            resolvers = self._vspace_map.get(vspace)
            if resolvers is not None:
                resolvers.discard(address)
                if not resolvers:
                    del self._vspace_map[vspace]

    def _sweep_expired(self) -> None:
        now = self.now
        for address in [a for a, e in self._active.items() if e.expires_at <= now]:
            self._drop_active(address)
