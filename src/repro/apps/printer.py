"""Printer: a load-balancing printer utility (Section 3.3).

``PrinterSpooler`` proxies one printer: it queues submitted jobs, drains
them at the printer's speed and keeps its advertised anycast metric in
step with its load (queue length weighted by job sizes, with a large
penalty while in an error state). ``PrinterClient`` can submit a job to
a *named* printer, or — the mode the paper's authors used day to day —
submit by location only and let intentional anycast find the
least-loaded printer in that room.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

from ..client import Reply
from ..message import InsMessage
from ..naming import NameSpecifier
from .common import AppEndpoint

#: Metric penalty advertised while the printer reports an error, large
#: enough that any healthy printer wins anycast.
ERROR_PENALTY = 1_000_000.0

_JOB_IDS = itertools.count(1)


@dataclass
class PrintJob:
    """One queued job at a spooler."""

    job_id: int
    owner: str
    size: int
    submitted_at: float


def printer_name(printer_id: str, room: str) -> NameSpecifier:
    """The intentional name a spooler advertises (Section 3.3)."""
    return NameSpecifier.from_dict(
        {
            "service": ("printer", {"entity": "spooler", "id": printer_id}),
            "room": room,
        }
    )


def printers_in_room(room: str) -> NameSpecifier:
    """The anycast destination for "best printer in this room": the
    printer's id is omitted on purpose (omitted attributes are
    wild-cards)."""
    return NameSpecifier.from_dict(
        {"service": ("printer", {"entity": "spooler"}), "room": room}
    )


class PrinterSpooler(AppEndpoint):
    """The proxy advertising one printer into INS."""

    def __init__(
        self,
        node,
        port,
        printer_id: str,
        room: str,
        resolver=None,
        dsr_address=None,
        pages_per_second: float = 2000.0,
        **kwargs,
    ) -> None:
        super().__init__(
            node,
            port,
            name=printer_name(printer_id, room),
            resolver=resolver,
            dsr_address=dsr_address,
            **kwargs,
        )
        self.printer_id = printer_id
        self.room = room
        self.pages_per_second = pages_per_second
        self.queue: List[PrintJob] = []
        self.completed: List[PrintJob] = []
        self.error = False
        self._draining = False

    # ------------------------------------------------------------------
    # Load metric (application-controlled, Section 3.3)
    # ------------------------------------------------------------------
    def current_metric(self) -> float:
        """Queued work in seconds, plus the error penalty if down."""
        backlog = sum(job.size for job in self.queue) / self.pages_per_second
        return backlog + (ERROR_PENALTY if self.error else 0.0)

    def _refresh_metric(self) -> None:
        self.set_metric(self.current_metric(), announce_now=True)

    def set_error(self, error: bool) -> None:
        """Flip the printer's error status; re-advertises immediately."""
        self.error = error
        self._refresh_metric()

    # ------------------------------------------------------------------
    # Queue machinery
    # ------------------------------------------------------------------
    def _enqueue(self, owner: str, size: int) -> PrintJob:
        job = PrintJob(
            job_id=next(_JOB_IDS), owner=owner, size=size, submitted_at=self.now
        )
        self.queue.append(job)
        self._refresh_metric()
        if not self._draining:
            self._schedule_drain()
        return job

    def _schedule_drain(self) -> None:
        if self.error or not self.queue:
            self._draining = False
            return
        self._draining = True
        duration = self.queue[0].size / self.pages_per_second
        self.set_timer(duration, self._finish_head)

    def _finish_head(self) -> None:
        if self.queue:
            self.completed.append(self.queue.pop(0))
            self._refresh_metric()
        self._schedule_drain()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def handle_request(self, message: InsMessage, fields, source: str) -> None:
        op = fields.get("op")
        if op == "submit":
            if self.error:
                self.respond(message, {"ok": False, "error": "printer error"})
                return
            job = self._enqueue(fields.get("user", "?"), int(fields.get("size", 1)))
            self.respond(
                message,
                {"ok": True, "job_id": job.job_id, "printer": self.printer_id},
            )
        elif op == "list":
            self.respond(
                message,
                {
                    "ok": True,
                    "printer": self.printer_id,
                    "jobs": [
                        {"job_id": j.job_id, "user": j.owner, "size": j.size}
                        for j in self.queue
                    ],
                },
            )
        elif op == "remove":
            job_id = fields.get("job_id")
            user = fields.get("user")
            for job in self.queue:
                if job.job_id == job_id:
                    if job.owner != user:
                        self.respond(
                            message, {"ok": False, "error": "permission denied"}
                        )
                        return
                    self.queue.remove(job)
                    self._refresh_metric()
                    self.respond(message, {"ok": True, "job_id": job_id})
                    return
            self.respond(message, {"ok": False, "error": "no such job"})


class PrinterClient(AppEndpoint):
    """The user-side printer utility."""

    def __init__(self, node, port, user: str, resolver=None, dsr_address=None, **kwargs):
        name = NameSpecifier.from_dict(
            {"service": ("printer", {"entity": "client", "id": user})}
        )
        super().__init__(
            node, port, name=name, resolver=resolver, dsr_address=dsr_address, **kwargs
        )
        self.user = user

    def submit_to(self, printer: NameSpecifier, size: int) -> Reply:
        """Submit a job to a specific named printer."""
        return self.request(printer, {"op": "submit", "user": self.user, "size": size})

    def submit_best(self, room: str, size: int) -> Reply:
        """Submit by location: intentional anycast picks the printer in
        ``room`` with the least advertised load. The reply names the
        chosen printer, as the paper's utility informs the user."""
        return self.request(
            printers_in_room(room), {"op": "submit", "user": self.user, "size": size}
        )

    def list_jobs(self, printer: NameSpecifier) -> Reply:
        return self.request(printer, {"op": "list"})

    def remove_job(self, printer: NameSpecifier, job_id: int) -> Reply:
        return self.request(
            printer, {"op": "remove", "job_id": job_id, "user": self.user}
        )
