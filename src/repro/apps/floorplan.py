"""Floorplan: a map-based service discovery tool (Section 3.1).

Floorplan shows the services available around the user. It learns about
them by sending a discovery message whose name-specifier acts as a
filter; every matching name comes back and is turned into an icon keyed
by (service type, location). Maps themselves are not baked in: they are
fetched on demand from the :class:`Locator` service by intentional
anycast, and Locator routes its answer back using the requester's
intentional name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..client import Reply
from ..message import InsMessage
from ..naming import NameSpecifier
from .common import AppEndpoint


def locator_name() -> NameSpecifier:
    """The Locator server's advertised name."""
    return NameSpecifier.from_dict({"service": ("locator", {"entity": "server"})})


@dataclass(frozen=True)
class Icon:
    """One service displayed on the floorplan."""

    service: str
    entity: str
    room: str
    name_wire: str

    @property
    def label(self) -> str:
        where = self.room if self.room else "?"
        return f"{self.service}/{self.entity}@{where}"


class Locator(AppEndpoint):
    """The location server Floorplan fetches region maps from."""

    def __init__(self, node, port, resolver=None, dsr_address=None, **kwargs) -> None:
        super().__init__(
            node,
            port,
            name=locator_name(),
            resolver=resolver,
            dsr_address=dsr_address,
            **kwargs,
        )
        self._maps: Dict[str, str] = {}
        self.maps_served = 0

    def add_map(self, region: str, map_data: str) -> None:
        self._maps[region] = map_data

    def handle_request(self, message: InsMessage, fields, source: str) -> None:
        if fields.get("op") == "map":
            region = fields.get("region", "")
            self.maps_served += 1
            self.respond(
                message,
                {
                    "region": region,
                    "map": self._maps.get(region, f"<no map for {region}>"),
                },
            )


class FloorplanApp(AppEndpoint):
    """The user-facing discovery tool."""

    def __init__(
        self, node, port, user: str, region: str, resolver=None, dsr_address=None, **kwargs
    ) -> None:
        name = NameSpecifier.from_dict(
            {"service": ("floorplan", {"entity": "client", "id": user})}
        )
        super().__init__(
            node, port, name=name, resolver=resolver, dsr_address=dsr_address, **kwargs
        )
        self.user = user
        self.region = region
        self.icons: Dict[str, Icon] = {}
        self.map_data: Optional[str] = None

    # ------------------------------------------------------------------
    # Discovery -> icons
    # ------------------------------------------------------------------
    def refresh(self, name_filter: Optional[NameSpecifier] = None) -> Reply:
        """Re-run discovery and rebuild the icon set.

        The default filter is the empty name, which matches every
        service the resolver knows (omitted attributes are wild-cards);
        passing e.g. ``[service=printer]`` narrows the display.
        """
        if name_filter is None:
            name_filter = NameSpecifier()
        reply = self.discover(name_filter)
        reply.then(self._rebuild_icons)
        return reply

    def _rebuild_icons(self, names) -> None:
        icons: Dict[str, Icon] = {}
        for name, _metric in names:
            icon = self._icon_for(name)
            if icon is not None:
                icons[icon.name_wire] = icon
        self.icons = icons

    @staticmethod
    def _icon_for(name: NameSpecifier) -> Optional[Icon]:
        service_pair = name.root("service")
        if service_pair is None:
            return None
        entity = ""
        for child in service_pair.children:
            if child.attribute == "entity":
                entity = child.value
        room_pair = name.root("room")
        return Icon(
            service=service_pair.value,
            entity=entity,
            room=room_pair.value if room_pair is not None else "",
            name_wire=name.to_wire(),
        )

    def visible_services(self) -> List[str]:
        """Sorted icon labels, the "display" of the tool."""
        return sorted(icon.label for icon in self.icons.values())

    def click(self, label: str) -> Optional[str]:
        """Simulate clicking an icon: returns the wire name the
        appropriate application should be launched against."""
        for icon in self.icons.values():
            if icon.label == label:
                return icon.name_wire
        return None

    # ------------------------------------------------------------------
    # Map retrieval via Locator
    # ------------------------------------------------------------------
    def fetch_map(self, region: Optional[str] = None) -> Reply:
        """Ask the Locator (by name, not address) for a region's map."""
        if region is None:
            region = self.region
        reply = self.request(locator_name(), {"op": "map", "region": region})
        reply.then(lambda fields: setattr(self, "map_data", fields.get("map")))
        return reply

    def move_to_region(self, region: str) -> Reply:
        """The user walked into a new region: fetch its map and refresh
        the services shown (the pop-up behaviour of Section 3.1)."""
        self.region = region
        self.fetch_map(region)
        return self.refresh()
