"""Device controllers: the TV/MP3 services Floorplan discovers (§3.1).

The paper's deployed Floorplan listed "device controllers for TV/MP3
players" among the discoverable services. A :class:`DeviceController`
advertises ``[service=controller[entity=<kind>][id=X]][room=R]`` and
accepts a small command vocabulary (power, volume, play) over
intentional anycast; a :class:`RemoteControl` drives any controller in
a room without knowing its address — or even which specific device will
answer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..client import Reply
from ..message import InsMessage
from ..naming import NameSpecifier
from .common import AppEndpoint


def controller_name(kind: str, device_id: str, room: str) -> NameSpecifier:
    return NameSpecifier.from_dict(
        {
            "service": ("controller", {"entity": kind, "id": device_id}),
            "room": room,
        }
    )


def controllers_in_room(room: str, kind: Optional[str] = None) -> NameSpecifier:
    if kind is None:
        return NameSpecifier.from_dict({"service": "controller", "room": room})
    return NameSpecifier.from_dict(
        {"service": ("controller", {"entity": kind}), "room": room}
    )


class DeviceController(AppEndpoint):
    """One controllable device (a TV, an MP3 player, ...)."""

    #: volume bounds for every device kind
    MIN_VOLUME, MAX_VOLUME = 0, 100

    def __init__(
        self,
        node,
        port,
        kind: str,
        device_id: str,
        room: str,
        resolver=None,
        dsr_address=None,
        **kwargs,
    ) -> None:
        super().__init__(
            node,
            port,
            name=controller_name(kind, device_id, room),
            resolver=resolver,
            dsr_address=dsr_address,
            **kwargs,
        )
        self.kind = kind
        self.device_id = device_id
        self.room = room
        self.powered = False
        self.volume = 25
        self.now_playing: Optional[str] = None
        self.command_log: List[Dict] = []

    # ------------------------------------------------------------------
    # Command handling
    # ------------------------------------------------------------------
    def handle_request(self, message: InsMessage, fields, source: str) -> None:
        op = fields.get("op")
        if op not in ("power", "volume", "play", "status"):
            return
        self.command_log.append(fields)
        if op == "power":
            self.powered = bool(fields.get("on", not self.powered))
            if not self.powered:
                self.now_playing = None
        elif op == "volume":
            requested = int(fields.get("level", self.volume))
            self.volume = max(self.MIN_VOLUME, min(self.MAX_VOLUME, requested))
        elif op == "play":
            if self.powered:
                self.now_playing = str(fields.get("track", ""))
        self.respond(message, self._status())

    def _status(self) -> Dict:
        return {
            "device": self.device_id,
            "kind": self.kind,
            "powered": self.powered,
            "volume": self.volume,
            "now_playing": self.now_playing,
        }


class RemoteControl(AppEndpoint):
    """A universal remote: drives devices by intentional name."""

    def __init__(self, node, port, user: str, resolver=None, dsr_address=None,
                 **kwargs) -> None:
        name = NameSpecifier.from_dict(
            {"service": ("controller", {"entity": "remote", "id": user})}
        )
        super().__init__(
            node, port, name=name, resolver=resolver, dsr_address=dsr_address,
            **kwargs,
        )
        self.user = user

    def power(self, target: NameSpecifier, on: bool) -> Reply:
        return self.request(target, {"op": "power", "on": on})

    def set_volume(self, target: NameSpecifier, level: int) -> Reply:
        return self.request(target, {"op": "volume", "level": level})

    def play(self, target: NameSpecifier, track: str) -> Reply:
        return self.request(target, {"op": "play", "track": track})

    def status(self, target: NameSpecifier) -> Reply:
        return self.request(target, {"op": "status"})
