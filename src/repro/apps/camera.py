"""Camera: a mobile camera network (Section 3.2).

Transmitters advertise ``[service=camera[entity=transmitter][id=X]]
[room=R]`` and serve frames in two modes:

- **request-response** — a receiver anycasts a request to a transmitter
  name; the transmitter replies by inverting source and destination, so
  the exchange survives node and camera mobility. Responses may carry a
  cache lifetime, letting INRs answer repeat requests (Section 3.2's
  caching extension).
- **subscription** — the transmitter periodically intentional-multicasts
  its frame to ``[service=camera[entity=receiver][id=*]][room=R]``; the
  wild-card id reaches every subscribed receiver regardless of identity.

Receivers subscribe simply by advertising a receiver name carrying the
room they want frames from — group membership *is* the name.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..client import Reply
from ..message import InsMessage
from ..naming import NameSpecifier
from .common import AppEndpoint


def transmitter_name(
    camera_id: str,
    room: str,
    data_type: str = "picture",
    image_format: str = "jpg",
    resolution: str = "640x480",
) -> NameSpecifier:
    """The full camera description of the paper's Figure 2: service,
    entity, id, plus the orthogonal data-type (with its dependent
    format) and resolution attributes."""
    return NameSpecifier.from_dict(
        {
            "service": (
                "camera",
                {
                    "entity": "transmitter",
                    "id": camera_id,
                    "data-type": (data_type, {"format": image_format}),
                    "resolution": resolution,
                },
            ),
            "room": room,
        }
    )


def transmitters_in_room(room: str) -> NameSpecifier:
    """Any camera in ``room`` (id omitted -> wild-card)."""
    return NameSpecifier.from_dict(
        {"service": ("camera", {"entity": "transmitter"}), "room": room}
    )


def receiver_name(receiver_id: str, room: str) -> NameSpecifier:
    return NameSpecifier.from_dict(
        {
            "service": ("camera", {"entity": "receiver", "id": receiver_id}),
            "room": room,
        }
    )


def subscribers_of_room(room: str) -> NameSpecifier:
    """All receivers subscribed to ``room``: ``[id=*]`` (Section 3.2)."""
    return NameSpecifier.from_dict(
        {
            "service": ("camera", {"entity": "receiver", "id": "*"}),
            "room": room,
        }
    )


class CameraTransmitter(AppEndpoint):
    """A camera serving frames under an intentional name."""

    def __init__(
        self,
        node,
        port,
        camera_id: str,
        room: str,
        resolver=None,
        dsr_address=None,
        frame_interval: float = 1.0,
        publish_interval: Optional[float] = None,
        cache_lifetime: int = 0,
        resolution: str = "640x480",
        image_format: str = "jpg",
        **kwargs,
    ) -> None:
        super().__init__(
            node,
            port,
            name=transmitter_name(camera_id, room, image_format=image_format,
                                  resolution=resolution),
            resolver=resolver,
            dsr_address=dsr_address,
            **kwargs,
        )
        self.camera_id = camera_id
        self.resolution = resolution
        self.image_format = image_format
        self.room = room
        self.frame_number = 0
        self.frame_interval = frame_interval
        self.publish_interval = publish_interval
        self.cache_lifetime = cache_lifetime
        self.requests_served = 0
        self.frames_published = 0

    def start(self) -> None:
        super().start()
        self.every(self.frame_interval, self._capture)
        if self.publish_interval is not None:
            self.attached.then(
                lambda _r: self.every(self.publish_interval, self.publish_frame)
            )

    def _capture(self) -> None:
        self.frame_number += 1

    def current_frame(self) -> str:
        """The synthetic stand-in for an image (Section 2's scope: the
        evaluation is about names and delivery, not pixels)."""
        return f"frame-{self.frame_number}/camera-{self.camera_id}/room-{self.room}"

    def move_to_room(self, room: str) -> None:
        """Service mobility (Section 3.2): the camera was carried to a
        new room. The name changes; the AnnouncerID does not, so
        resolvers replace the old name rather than keeping both."""
        self.room = room
        self.rename(transmitter_name(self.camera_id, room,
                                     image_format=self.image_format,
                                     resolution=self.resolution))

    # Request-response mode -------------------------------------------
    def handle_request(self, message: InsMessage, fields, source: str) -> None:
        if fields.get("op") == "get":
            self.requests_served += 1
            self.respond(
                message,
                {"frame": self.current_frame(), "camera": self.camera_id},
                cache_lifetime=self.cache_lifetime,
            )

    # Subscription mode ------------------------------------------------
    def publish_frame(self) -> None:
        """Multicast the current frame to every subscriber of this room."""
        from .common import encode_payload

        self.frames_published += 1
        self.send_multicast(
            subscribers_of_room(self.room),
            encode_payload({"frame": self.current_frame(), "camera": self.camera_id}),
            source=self.name,
        )


class CameraReceiver(AppEndpoint):
    """A viewer; announcing its name is what makes multicast reach it."""

    def __init__(
        self, node, port, receiver_id: str, room: str, resolver=None, dsr_address=None, **kwargs
    ) -> None:
        super().__init__(
            node,
            port,
            name=receiver_name(receiver_id, room),
            resolver=resolver,
            dsr_address=dsr_address,
            **kwargs,
        )
        self.receiver_id = receiver_id
        self.room = room
        self.frames: List[Dict] = []

    def handle_request(self, message: InsMessage, fields, source: str) -> None:
        # Published frames arrive as unsolicited messages with a frame
        # field; keep them in arrival order for the application.
        if "frame" in fields:
            self.frames.append(fields)

    def request_frame(
        self, destination: Optional[NameSpecifier] = None, cacheable: bool = False
    ) -> Reply:
        """Request one frame from a camera (default: any camera in this
        receiver's room). ``cacheable`` marks the request as willing to
        be served from an INR packet cache."""
        if destination is None:
            destination = transmitters_in_room(self.room)
        reply = self.request(destination, {"op": "get"}, accept_cached=cacheable)
        reply.then(lambda fields: self.frames.append(fields))
        return reply

    def subscribe_to_room(self, room: str) -> None:
        """Re-point the subscription at another room (renames)."""
        self.room = room
        self.rename(receiver_name(self.receiver_id, room))
