"""Shared plumbing for the example applications (Section 3).

INS never interprets application data, so each application defines its
own payload encoding; ours is JSON with a request token, enough to build
request/response exchanges over intentional anycast. An
:class:`AppEndpoint` is a :class:`Service` that announces its own name
(so replies can be late-bound back to it) and correlates responses to
outstanding requests.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Dict, Optional

from ..client import Reply, Service
from ..message import InsMessage
from ..naming import NameSpecifier

_TOKENS = itertools.count(1)


def encode_payload(fields: Dict[str, Any]) -> bytes:
    """Serialize an application payload."""
    return json.dumps(fields, sort_keys=True).encode("utf-8")


def decode_payload(data: bytes) -> Dict[str, Any]:
    """Parse an application payload; returns {} for non-JSON data."""
    try:
        decoded = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return {}
    return decoded if isinstance(decoded, dict) else {}


class AppEndpoint(Service):
    """A service that also issues correlated requests.

    Subclasses implement :meth:`handle_request` for incoming requests
    and may call :meth:`request` to perform an anycast RPC: the reply
    is matched by token and resolves the returned :class:`Reply`.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._outstanding: Dict[int, Reply] = {}
        self.on_message(self._dispatch)

    # ------------------------------------------------------------------
    # Outgoing RPC
    # ------------------------------------------------------------------
    def request(
        self,
        destination: NameSpecifier,
        fields: Dict[str, Any],
        accept_cached: bool = False,
    ) -> Reply:
        """Anycast ``fields`` to ``destination``; resolves with the
        responder's payload dict. ``accept_cached`` marks the request
        as willing to be answered from an INR packet cache."""
        token = next(_TOKENS)
        fields = dict(fields)
        fields["token"] = token
        reply = Reply()
        self._outstanding[token] = reply
        self.send_anycast(
            destination,
            encode_payload(fields),
            source=self.name,
            accept_cached=accept_cached,
        )
        return reply

    def respond(
        self,
        request_message: InsMessage,
        fields: Dict[str, Any],
        cache_lifetime: int = 0,
    ) -> None:
        """Answer an incoming request, echoing its token."""
        incoming = decode_payload(request_message.data)
        fields = dict(fields)
        if "token" in incoming:
            fields["token"] = incoming["token"]
        self.reply_to(
            request_message, encode_payload(fields), cache_lifetime=cache_lifetime
        )

    # ------------------------------------------------------------------
    # Incoming dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, message: InsMessage, source: str) -> None:
        fields = decode_payload(message.data)
        token = fields.get("token")
        if token in self._outstanding and "op" not in fields:
            self._outstanding.pop(token).resolve(fields)
            return
        self.handle_request(message, fields, source)

    def handle_request(
        self, message: InsMessage, fields: Dict[str, Any], source: str
    ) -> None:
        """Incoming application request; subclasses override."""
