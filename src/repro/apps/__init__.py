"""The three applications of Section 3: Floorplan, Camera, Printer."""

from .camera import (
    CameraReceiver,
    CameraTransmitter,
    receiver_name,
    subscribers_of_room,
    transmitter_name,
    transmitters_in_room,
)
from .common import AppEndpoint, decode_payload, encode_payload
from .controller import (
    DeviceController,
    RemoteControl,
    controller_name,
    controllers_in_room,
)
from .floorplan import FloorplanApp, Icon, Locator, locator_name
from .printer import (
    ERROR_PENALTY,
    PrintJob,
    PrinterClient,
    PrinterSpooler,
    printer_name,
    printers_in_room,
)

__all__ = [
    "AppEndpoint",
    "DeviceController",
    "RemoteControl",
    "controller_name",
    "controllers_in_room",
    "CameraReceiver",
    "CameraTransmitter",
    "ERROR_PENALTY",
    "FloorplanApp",
    "Icon",
    "Locator",
    "PrintJob",
    "PrinterClient",
    "PrinterSpooler",
    "decode_payload",
    "encode_payload",
    "locator_name",
    "printer_name",
    "printers_in_room",
    "receiver_name",
    "subscribers_of_room",
    "transmitter_name",
    "transmitters_in_room",
]
