"""``python -m repro`` — a guided, self-contained INS demonstration.

Builds a small domain, walks through discovery, the three delivery
services, mobility and failure handling, and finishes with the
operator's view (overlay topology and per-resolver reports).
"""

from __future__ import annotations

from .apps import CameraTransmitter, PrinterSpooler
from .client import MobilityManager
from .experiments import InsDomain
from .naming import NameSpecifier
from .tools import domain_report, render_name_tree


def main() -> None:
    print(__doc__)
    domain = InsDomain(seed=99)
    inr_a = domain.add_inr()
    inr_b = domain.add_inr()
    print(f"==> two INRs self-configured: {inr_b.address} peered with "
          f"{inr_b.neighbors.parent.address}\n")

    def app(cls, host, **kwargs):
        node = domain.network.add_node(host)
        instance = cls(node, domain.ports.allocate(),
                       resolver=inr_a.address, **kwargs)
        instance.start()
        return instance

    camera = app(CameraTransmitter, "camera-host", camera_id="a", room="510")
    printer = app(PrinterSpooler, "printer-host", printer_id="lw1", room="510")
    domain.run(3.0)

    client = domain.add_client(resolver=inr_b)
    print("==> discovery from the other resolver:")
    reply = client.discover(NameSpecifier.parse("[room=510]"))
    domain.run(1.0)
    for name, metric in reply.value:
        print(f"    {name.to_wire()}  metric={metric}")

    print("\n==> intentional anycast to [service=printer][room=510]:")
    inbox = []
    printer.on_message(lambda m, s: inbox.append(m.data))
    client.send_anycast(NameSpecifier.parse("[service=printer][room=510]"),
                        b"job-1")
    domain.run(1.0)
    print(f"    printer received {inbox}")

    print("\n==> the camera's host roams to a new address:")
    MobilityManager(camera.node).migrate("camera-roaming")
    domain.run(1.0)
    reply = client.resolve_early(
        NameSpecifier.parse("[service=camera[entity=transmitter]]"))
    domain.run(1.0)
    for endpoint, _metric in reply.value:
        print(f"    early binding now returns {endpoint}")

    print("\n==> inr-a's name-tree (default vspace):")
    print(render_name_tree(inr_a.trees["default"]))

    print("\n==> operator view:")
    print(domain_report(domain))


if __name__ == "__main__":
    main()
