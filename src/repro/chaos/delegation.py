"""Delegation under fire: the two-phase vspace handoff vs crashes.

The load balancer's cure for update overload (Section 2.5) is to
delegate a virtual space to a freshly spawned INR. The handoff is the
one moment the soft-state argument does not cover: records are in
flight between two processes, and a crash on either side can leave the
vspace with no authoritative resolver — or two. This scenario holds a
resolver in sustained update overload so it *must* delegate, then
crashes the donor or the recipient at a chosen phase of the handoff
(offer, mid-transfer, await-commit, committed) and restarts it shortly
after, while steady client lookups against the delegated vspace run
throughout. Measured per run:

- lookup success rate inside the handoff window (the dual-serving
  guarantee: the donor answers until COMMIT lands);
- name records lost after convergence (must be zero);
- the delegation invariants: exactly one authoritative INR per vspace,
  no handoff left in flight (:meth:`InvariantChecker
  .single_vspace_authority`, :meth:`InvariantChecker
  .delegations_settled`), plus the standard converged set.

The crash is *phase-triggered*, not wall-scheduled: a fine-grained
deterministic poller watches the donor's coordinator and fires the
crash the instant the target phase is observed, so every run in the
role x phase matrix actually exercises the transition it names (a
pre-computed :class:`FaultPlan` cannot, because the handoff's start
time depends on load-policy timing).

:func:`run_delegation_ablation` runs the same recipient-crash plan
with ``delegation_two_phase=False`` — the paper-era single-shot
transfer — as a controlled ablation: the records are flung in one
unacknowledged batch and the tree dropped, so the crash loses the
vspace outright until the operator restarts the recipient and soft
state refills it. ``BENCH_delegation.json`` records the comparison.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..experiments.domain import InsDomain
from ..naming import NameSpecifier
from ..obs import merge_counts
from ..resolver import InrConfig
from .availability import CHAOS_RETRY_POLICY
from .invariants import InvariantChecker
from .scenario import fast_chaos_config

#: The handoff phases a seeded crash can target. The first three are
#: donor-side state-machine phases; "committed" is the recipient-side
#: window between adopting the tree and receiving the donor's echo.
CRASH_PHASES: Tuple[str, ...] = (
    "offer",
    "transfer",
    "await-commit",
    "committed",
)

CRASH_ROLES: Tuple[str, ...] = ("donor", "recipient")

#: The vspace the overloaded donor hands off, and the one it keeps.
DELEGATED_VSPACE = "bulk"
KEPT_VSPACE = "anchor"


@dataclass
class DelegationReport:
    """What one delegation-under-fire run observed, end to end."""

    seed: int
    two_phase: bool
    crash_role: Optional[str]
    crash_phase: Optional[str]
    #: virtual timestamps (-1.0 when the event never happened)
    handoff_started_at: float
    crash_at: float
    restarted_at: float
    #: aggregated resolver delegation counters (final incarnations)
    delegations_started: int
    delegations_committed: int
    delegations_aborted: int
    delegations_adopted: int
    delegation_rollbacks: int
    delegate_records_sent: int
    delegate_records_received: int
    delegate_stale_dropped: int
    #: all lookup traffic over the run
    requests_attempted: int
    requests_succeeded: int
    success_rate: float
    #: lookups issued inside the handoff window — the dual-serving
    #: guarantee is measured here
    window_requests: int
    window_succeeded: int
    window_success_rate: float
    #: delegated-vspace records missing after convergence (must be 0
    #: with the two-phase protocol; the ablation's headline loss)
    lost_records: int
    #: live resolvers routing the delegated vspace after convergence
    authority: Tuple[str, ...]
    always_violations: Tuple[str, ...]
    converged_violations: Tuple[str, ...]
    invariant_samples: int
    sim_time: float

    def fingerprint(self) -> Tuple:
        """Deterministic digest: same seed + parameters ⇒ identical."""
        return (
            self.seed,
            self.two_phase,
            self.crash_role,
            self.crash_phase,
            round(self.handoff_started_at, 6),
            round(self.crash_at, 6),
            round(self.restarted_at, 6),
            self.delegations_started,
            self.delegations_committed,
            self.delegations_aborted,
            self.delegations_adopted,
            self.delegation_rollbacks,
            self.delegate_records_sent,
            self.delegate_records_received,
            self.delegate_stale_dropped,
            self.requests_attempted,
            self.requests_succeeded,
            round(self.success_rate, 6),
            self.window_requests,
            self.window_succeeded,
            round(self.window_success_rate, 6),
            self.lost_records,
            self.authority,
            self.always_violations,
            self.converged_violations,
            self.invariant_samples,
            round(self.sim_time, 6),
        )


def delegation_chaos_config(two_phase: bool = True) -> InrConfig:
    """Fast chaos clocks plus the load-balancing and handoff knobs.

    The delegate threshold sits well under the sustained advertisement
    rate the scenario generates, so the donor is in genuine update
    overload the whole run; the spawn threshold is parked out of reach
    so the delegation path is exercised in isolation. Handoff timers
    are scaled to the fast clocks, and the chunk size forces a
    multi-chunk transfer so mid-transfer crashes have a mid-transfer
    to hit.
    """
    config = fast_chaos_config()
    return replace(
        config,
        enable_load_balancing=True,
        spawn_lookup_rate=1e9,
        delegate_update_rate=30.0,
        terminate_lookup_rate=5.0,
        load_check_interval=0.5,
        minimum_lifetime=2.0,
        delegation_two_phase=two_phase,
        delegation_offer_timeout=0.3,
        delegation_ack_timeout=0.3,
        delegation_commit_timeout=0.3,
        delegation_max_retries=3,
        delegation_chunk_names=8,
        delegation_retry_cooldown=1.0,
    )


class _HandoffWatch:
    """Deterministic fine-grained poller: detects the handoff start,
    fires the seeded crash at the target phase, and schedules the
    restart. Polls every millisecond of virtual time until the crash
    has fired, which is cheap in the event simulator and catches even
    RTT-short phases like OFFER."""

    POLL = 0.001

    def __init__(
        self,
        domain: InsDomain,
        donor,
        two_phase: bool,
        crash_role: Optional[str],
        crash_phase: Optional[str],
        restart_after: Optional[float],
    ) -> None:
        self.domain = domain
        self.donor = donor
        self.two_phase = two_phase
        self.crash_role = crash_role
        self.crash_phase = crash_phase
        self.restart_after = restart_after
        self.handoff_started_at: Optional[float] = None
        self.recipient_address: Optional[str] = None
        self.crash_at: Optional[float] = None
        self.restarted_at: Optional[float] = None
        self._victim = None
        self._running = True
        domain.sim.schedule(self.POLL, self._tick)

    def stop(self) -> None:
        self._running = False

    # -- polling -------------------------------------------------------
    def _tick(self) -> None:
        if not self._running:
            return
        self._observe()
        done_crashing = self.crash_role is None or self.crash_at is not None
        if self.handoff_started_at is not None and done_crashing:
            return  # nothing left to detect; stop burning events
        self.domain.sim.schedule(self.POLL, self._tick)

    def _observe(self) -> None:
        now = self.domain.sim.now
        donor = self.donor
        if self.two_phase:
            handoff = None if donor.terminated else donor.delegation.donor
            if handoff is not None:
                if self.handoff_started_at is None:
                    self.handoff_started_at = now
                self.recipient_address = handoff.recipient
        elif self.handoff_started_at is None and not donor.terminated:
            if DELEGATED_VSPACE not in donor.trees:
                # Single-shot ablation: the tree is already gone; the
                # one unacked batch is on the wire right now.
                self.handoff_started_at = now
                self.recipient_address = next(
                    (
                        inr.address
                        for inr in self.domain.inrs
                        if inr.was_spawned
                    ),
                    None,
                )
        if self.crash_role is None or self.crash_at is not None:
            return
        if self._phase_reached():
            self._fire_crash(now)

    def _phase_reached(self) -> bool:
        if not self.two_phase:
            return self.handoff_started_at is not None
        handoff = None if self.donor.terminated else self.donor.delegation.donor
        if self.crash_phase == "committed":
            recipient = self._recipient()
            if recipient is None or recipient.terminated:
                return False
            return any(
                h.phase == "committed"
                for h in recipient.delegation.recipients.values()
            )
        if handoff is None:
            return False
        if self.crash_phase == "offer":
            return handoff.phase == "offer"
        if self.crash_phase == "transfer":
            return handoff.phase == "transfer" and handoff.chunks_acked >= 1
        if self.crash_phase == "await-commit":
            return handoff.phase == "await-commit"
        return False

    def _recipient(self):
        if self.recipient_address is None:
            return None
        return self.domain.inr_at(self.recipient_address)

    # -- crash / restart -----------------------------------------------
    def _fire_crash(self, now: float) -> None:
        victim = self.donor if self.crash_role == "donor" else self._recipient()
        if victim is None or victim.terminated:
            return
        victim.crash()
        self._victim = victim
        self.crash_at = now
        if self.restart_after is not None:
            self.domain.sim.schedule(self.restart_after, self._restart)

    def _restart(self) -> None:
        victim = self._victim
        if victim is not None and victim.terminated:
            victim.restart()
            self.restarted_at = self.domain.sim.now


def run_delegation_scenario(
    seed: int = 0,
    two_phase: bool = True,
    crash_role: Optional[str] = None,
    crash_phase: Optional[str] = None,
    restart_after: Optional[float] = 1.5,
    n_bulk: int = 24,
    n_anchor: int = 6,
    service_refresh: float = 0.5,
    lookup_interval: float = 0.1,
    n_clients: int = 2,
    traffic: float = 14.0,
    window: float = 6.0,
    config: Optional[InrConfig] = None,
    observe: bool = False,
) -> DelegationReport:
    """One delegation-under-fire run.

    Topology: a relay resolver (``inr-base``) that clients attach to,
    and a donor (``inr-donor``) routing two vspaces — a small anchor
    space it keeps and a large bulk space whose sustained advertisement
    stream pushes it over the delegate threshold. Two spare candidate
    nodes give the donor somewhere to hand off to, with one left over
    so an aborted handoff can retry onto fresh hardware while the
    abandoned recipient drains back into the pool.

    ``crash_role``/``crash_phase`` seed one crash at the named phase of
    the first handoff (see :data:`CRASH_PHASES`); the crashed process
    restarts ``restart_after`` virtual seconds later — within the
    recipient's COMMIT-retransmission budget, so the two-generals
    reconciliation paths are actually exercised. ``None``/``None`` is
    the fault-free baseline.

    ``observe=True`` attaches an :class:`repro.obs.ObsCollector`; it
    rides on the returned report as ``report.collector`` (a plain
    attribute — not part of the dataclass or the fingerprint).
    """
    config = config or delegation_chaos_config(two_phase)
    domain = InsDomain(
        seed=seed,
        config=config,
        dsr_registration_lifetime=3.0 * config.heartbeat_interval,
        dsr_sweep_interval=max(0.25, config.heartbeat_interval / 2.0),
    )
    collector = domain.observe() if observe else None
    base = domain.add_inr(address="inr-base")
    donor = domain.add_inr(
        address="inr-donor", vspaces=(KEPT_VSPACE, DELEGATED_VSPACE)
    )
    for index in range(2):
        domain.add_candidate(f"spare-{index}")
    for index in range(n_anchor):
        domain.add_service(
            f"[service=anchor[id=a{index}]][vspace={KEPT_VSPACE}]",
            resolver=donor,
            refresh_interval=service_refresh,
            lifetime=config.record_lifetime,
        )
    for index in range(n_bulk):
        domain.add_service(
            f"[service=bulk[id=n{index}]][vspace={DELEGATED_VSPACE}]",
            resolver=donor,
            refresh_interval=service_refresh,
            lifetime=config.record_lifetime,
        )
    clients = [
        domain.add_client(resolver=base, retry_policy=CHAOS_RETRY_POLICY)
        for _ in range(n_clients)
    ]

    checker = InvariantChecker(domain).install(0.5)
    watch = _HandoffWatch(
        domain, donor, two_phase, crash_role, crash_phase, restart_after
    )

    # ------------------------------------------------------------------
    # Steady lookup traffic against the vspace being handed off,
    # scheduled up front (deterministic). Lookups start before the
    # overload trips the delegation, so the handoff window always has
    # traffic inside it.
    # ------------------------------------------------------------------
    query = NameSpecifier.parse(
        f"[service=bulk][vspace={DELEGATED_VSPACE}]"
    )
    samples: List[dict] = []

    def issue(client_index: int) -> None:
        client = clients[client_index]
        sample = {"issued_at": domain.sim.now, "reply": None}
        samples.append(sample)
        try:
            sample["reply"] = client.resolve_early(query)
        except RuntimeError:
            return  # mid-failover with no resolver selected

    start = domain.sim.now
    for client_index in range(n_clients):
        t = 0.1 + (client_index / max(n_clients, 1)) * lookup_interval
        while t < traffic:
            domain.sim.at(start + t, issue, client_index)
            t += lookup_interval

    domain.run(traffic)
    watch.stop()
    # Drain in-flight retries, then run out the convergence bound so
    # the post-fault invariants are meaningful.
    domain.run(CHAOS_RETRY_POLICY.deadline + 1.0)
    domain.run(checker.convergence_bound())
    checker.uninstall()

    converged = (
        checker.check_converged()
        + checker.single_vspace_authority((KEPT_VSPACE, DELEGATED_VSPACE))
        + checker.delegations_settled()
    )

    # ------------------------------------------------------------------
    # Tally lookups, overall and inside the handoff window.
    # ------------------------------------------------------------------
    def succeeded(sample: dict) -> bool:
        reply = sample["reply"]
        return reply is not None and reply.done and bool(reply.value)

    attempted = len(samples)
    ok = sum(1 for sample in samples if succeeded(sample))
    window_start = watch.handoff_started_at
    if window_start is None:
        in_window: List[dict] = []
    else:
        in_window = [
            sample
            for sample in samples
            if window_start <= sample["issued_at"] <= window_start + window
        ]
    window_ok = sum(1 for sample in in_window if succeeded(sample))

    # ------------------------------------------------------------------
    # Record loss: every live bulk service's announcer must be present
    # in some live resolver's bulk tree after convergence.
    # ------------------------------------------------------------------
    expected = checker._expected_names().get(DELEGATED_VSPACE, set())
    present = set()
    for inr in domain.live_inrs:
        tree = inr.trees.get(DELEGATED_VSPACE)
        if tree is None:
            continue
        present |= {
            record.announcer
            for record in tree.records()
            if not record.is_expired(domain.sim.now)
        }
    lost = len(expected - present)
    authority = tuple(
        sorted(
            inr.address
            for inr in domain.live_inrs
            if inr.routes_vspace(DELEGATED_VSPACE)
        )
    )

    inr_totals = merge_counts(inr.stats.snapshot() for inr in domain.inrs)

    def stamp(value: Optional[float]) -> float:
        return -1.0 if value is None else value

    report = DelegationReport(
        seed=seed,
        two_phase=two_phase,
        crash_role=crash_role,
        crash_phase=crash_phase,
        handoff_started_at=stamp(watch.handoff_started_at),
        crash_at=stamp(watch.crash_at),
        restarted_at=stamp(watch.restarted_at),
        delegations_started=int(inr_totals.get("delegations_started", 0)),
        delegations_committed=int(inr_totals.get("delegations_committed", 0)),
        delegations_aborted=int(inr_totals.get("delegations_aborted", 0)),
        delegations_adopted=int(inr_totals.get("delegations_adopted", 0)),
        delegation_rollbacks=int(inr_totals.get("delegation_rollbacks", 0)),
        delegate_records_sent=int(inr_totals.get("delegate_records_sent", 0)),
        delegate_records_received=int(
            inr_totals.get("delegate_records_received", 0)
        ),
        delegate_stale_dropped=int(
            inr_totals.get("delegate_stale_dropped", 0)
        ),
        requests_attempted=attempted,
        requests_succeeded=ok,
        success_rate=ok / attempted if attempted else 0.0,
        window_requests=len(in_window),
        window_succeeded=window_ok,
        window_success_rate=window_ok / len(in_window) if in_window else 0.0,
        lost_records=lost,
        authority=authority,
        always_violations=tuple(
            violation.invariant for violation in checker.violations
        ),
        converged_violations=tuple(
            violation.invariant for violation in converged
        ),
        invariant_samples=checker.samples_taken,
        sim_time=domain.now,
    )
    if collector is not None:
        domain.harvest()
        report.collector = collector
    return report


def run_delegation_matrix(
    seed: int = 0,
    restart_after: float = 1.5,
    observe_baseline: bool = False,
    **kwargs,
) -> List[DelegationReport]:
    """The full crash matrix: a fault-free baseline plus one run per
    (role, phase) combination — donor and recipient each crashed at
    every handoff phase. Every run must converge to exactly one
    authoritative resolver per vspace with zero lost records; the
    benchmark and the CI smoke job assert exactly that."""
    reports = [
        run_delegation_scenario(
            seed=seed, two_phase=True, observe=observe_baseline, **kwargs
        )
    ]
    for role in CRASH_ROLES:
        for phase in CRASH_PHASES:
            reports.append(
                run_delegation_scenario(
                    seed=seed,
                    two_phase=True,
                    crash_role=role,
                    crash_phase=phase,
                    restart_after=restart_after,
                    **kwargs,
                )
            )
    return reports


def run_delegation_ablation(
    seed: int = 0, restart_after: Optional[float] = None, **kwargs
) -> Dict[str, DelegationReport]:
    """The controlled ablation ``BENCH_delegation.json`` leads with:
    the same recipient crash, with no operator intervention (the
    crashed process is never restarted), against both transfer modes.

    Two-phase: the donor's chunk acks time out, it aborts, keeps its
    tree — it never stopped serving it — and retries onto the spare
    candidate; nothing is lost and no human touched anything. Single
    shot: the records were flung in one unacknowledged batch and the
    tree dropped, so the crash orphans the vspace permanently — every
    record is lost, lookups collapse, and the single-authority
    invariant is violated at convergence. (A prompt operator restart
    plus client retries can mask the single-shot loss, which is why
    the ablation defaults to none.)"""
    return {
        "two_phase": run_delegation_scenario(
            seed=seed,
            two_phase=True,
            crash_role="recipient",
            crash_phase="transfer",
            restart_after=restart_after,
            **kwargs,
        ),
        "ablated": run_delegation_scenario(
            seed=seed,
            two_phase=False,
            crash_role="recipient",
            crash_phase="post-transfer",
            restart_after=restart_after,
            **kwargs,
        ),
    }


def write_bench_delegation_json(
    path: Union[str, Path],
    matrix: Sequence[DelegationReport],
    ablation: Dict[str, DelegationReport],
) -> dict:
    """Emit ``BENCH_delegation.json``: the crash matrix and the
    two-phase vs single-shot ablation. Returns the payload.

    A report carrying a collector (an ``observe=True`` run) contributes
    an ``observability`` section — drop attribution and per-hop span
    percentiles for the traced run.
    """
    observability = {}
    matrix_rows = []
    for report in matrix:
        matrix_rows.append(asdict(report))
        collector = getattr(report, "collector", None)
        if collector is not None:
            label = f"{report.crash_role or 'baseline'}:{report.crash_phase or '-'}"
            observability[label] = collector.observability_payload()
    on = ablation["two_phase"]
    off = ablation["ablated"]
    payload = {
        "benchmark": "delegation-chaos",
        "schema_version": 1,
        "matrix": matrix_rows,
        "ablation": {
            "two_phase": asdict(on),
            "ablated": asdict(off),
            "window_success_delta": round(
                on.window_success_rate - off.window_success_rate, 6
            ),
            "lost_records_delta": off.lost_records - on.lost_records,
        },
    }
    if observability:
        payload["observability"] = observability
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
