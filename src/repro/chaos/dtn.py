"""Disruption tolerance under chaos: custody transfer on vs off.

The availability scenario (:mod:`.availability`) measures what request
traffic experiences when faults are short next to the request deadline
— retries and failover can ride them out. This module measures the
regime the resilience layer cannot help with: duty-cycled links and
partitions that outlast any reasonable deadline. Late-binding anycast
payloads sent into a partition are simply gone unless *something*
holds them; the custody store (:mod:`repro.dtn`) is that something,
and this scenario quantifies exactly what it buys.

One client streams intentional anycast payloads at a service whose
resolver first suffers duty-cycled overlay links (intermittent
connectivity) and then a long partition, all from a seed-deterministic
:class:`FaultPlan`. Each payload carries its sequence number and
virtual send time, so the receiving service measures end-to-end
delivery ratio and latency — including payloads that waited out the
partition in custody. Running the identical plan with custody enabled
and disabled is a controlled ablation of the DTN machinery alone.

:func:`run_dtn_sweep` sweeps disruption lengths and
:func:`write_bench_dtn_json` emits ``BENCH_dtn.json`` for trend
tracking across sessions.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..experiments.domain import DSR_HOST, InsDomain
from ..naming import NameSpecifier
from ..obs import merge_counts
from ..resolver import InrConfig
from .invariants import InvariantChecker
from .plan import ChaosController, FaultEvent, FaultPlan
from .scenario import fast_chaos_config


@dataclass
class DtnReport:
    """What one disruption run delivered, end to end."""

    seed: int
    custody: bool
    disruption: float
    messages_sent: int
    #: unique payloads that reached the service (dedup by sequence)
    messages_delivered: int
    delivery_ratio: float
    #: end-to-end virtual seconds, send to first delivery; payloads
    #: that waited out the partition in custody dominate the tail
    latency_p50: float
    latency_p99: float
    latency_max: float
    #: aggregated resolver custody counters
    custody_accepted: int
    custody_released: int
    custody_transfers_sent: int
    custody_transfers_received: int
    expiry_grace_readmissions: int
    drops_custody_expired: int
    drops_custody_evicted: int
    drops_custody_transfer_failed: int
    #: the paper's drop behavior — what custody exists to avoid
    drops_no_route: int
    drops_expired_record: int
    #: post-heal convergence invariants (must be empty; includes the
    #: custody-drained invariant when custody is on)
    converged_violations: Tuple[str, ...]
    faults_applied: int
    fault_kinds: Tuple[str, ...]
    sim_time: float

    def fingerprint(self) -> Tuple:
        """Deterministic digest: same seed + parameters ⇒ identical."""
        return (
            self.seed,
            self.custody,
            round(self.disruption, 6),
            self.messages_sent,
            self.messages_delivered,
            round(self.delivery_ratio, 6),
            round(self.latency_p50, 6),
            round(self.latency_p99, 6),
            round(self.latency_max, 6),
            self.custody_accepted,
            self.custody_released,
            self.custody_transfers_sent,
            self.custody_transfers_received,
            self.expiry_grace_readmissions,
            self.drops_custody_expired,
            self.drops_custody_evicted,
            self.drops_custody_transfer_failed,
            self.drops_no_route,
            self.drops_expired_record,
            self.converged_violations,
            self.faults_applied,
            self.fault_kinds,
            round(self.sim_time, 6),
        )


def dtn_chaos_config(disruption: float, custody: bool) -> InrConfig:
    """The fast chaos clocks plus the DTN knobs for one run.

    The custody TTL must outlast the partition plus reconvergence or
    payloads lapse moments before they could have been delivered; the
    grace window spans two record lifetimes so the partitioned
    service's first post-heal refresh is a fast-path readmission.
    """
    config = fast_chaos_config()
    if not custody:
        return config
    return replace(
        config,
        enable_custody=True,
        custody_capacity=256,
        custody_ttl=disruption + 20.0,
        custody_retry_interval=0.5,
        custody_suspect_silence=2.5,
        partition_grace=2.0 * config.record_lifetime,
    )


def run_dtn_scenario(
    seed: int = 0,
    custody: bool = True,
    disruption: float = 30.0,
    n_inrs: int = 3,
    send_interval: float = 0.5,
    duty_window: float = 12.0,
    duty_period: float = 6.0,
    duty: float = 0.5,
    settle: float = 3.0,
    tail: float = 3.0,
    config: Optional[InrConfig] = None,
    observe: bool = False,
) -> DtnReport:
    """Stream anycast payloads through duty-cycled links and one long
    partition; measure what arrived.

    The fault plan is identical for both settings of ``custody`` (same
    seed, same surface): first every link incident to the service's
    resolver duty-cycles for ``duty_window`` seconds (radio-style
    intermittent connectivity), then that resolver and its service are
    partitioned from the rest of the mesh — and the DSR — for
    ``disruption`` seconds. Traffic runs from the start until ``tail``
    seconds after the heal; the run then drains for the invariant
    checker's convergence bound so every custodied payload has settled
    (released or lapsed) before the post-heal invariants are checked.

    ``observe=True`` attaches a :class:`repro.obs.ObsCollector` before
    any traffic flows; it rides on the returned report as
    ``report.collector`` (a plain attribute — not part of the
    dataclass, the fingerprint, or the JSON artifact).
    """
    config = config or dtn_chaos_config(disruption, custody)

    domain = InsDomain(
        seed=seed,
        config=config,
        dsr_registration_lifetime=3.0 * config.heartbeat_interval,
        dsr_sweep_interval=max(0.5, config.heartbeat_interval / 2.0),
    )
    collector = domain.observe() if observe else None
    inrs = [domain.add_inr() for _ in range(n_inrs)]
    far = inrs[-1]
    name = NameSpecifier.parse("[service=dtn[role=sink]]")
    service = domain.add_service(
        name,
        resolver=far,
        refresh_interval=config.refresh_interval,
        lifetime=config.record_lifetime,
    )
    client = domain.add_client(resolver=inrs[0])
    domain.run(settle)

    # ------------------------------------------------------------------
    # The receiving side: dedup by sequence, latency from the virtual
    # send time each payload carries.
    # ------------------------------------------------------------------
    delivered: Dict[int, float] = {}

    def on_message(message, _source) -> None:
        sequence_text, _, sent_text = message.data.decode().partition(":")
        sequence = int(sequence_text)
        if sequence not in delivered:
            delivered[sequence] = domain.sim.now - float(sent_text)

    service.on_message(on_message)

    # ------------------------------------------------------------------
    # Fault plan: duty-cycled links incident to the far resolver, then
    # a long partition cutting it (and its service) off from the rest
    # of the mesh and the DSR. Duty cycles end before the partition
    # starts so a scheduled link-up never re-opens a cut link.
    # ------------------------------------------------------------------
    far_links = sorted(
        tuple(sorted((far.address, neighbor)))
        for neighbor in far.neighbors.addresses
    )
    duty_start = 1.0
    partition_at = duty_start + duty_window + 2.0
    heal_at = partition_at + disruption
    isolated = (far.address, service.address)
    others = tuple(
        sorted(
            [inr.address for inr in inrs if inr is not far]
            + [client.address, DSR_HOST]
        )
    )
    duty_plan = FaultPlan.duty_cycle(
        seed=seed,
        link_pairs=far_links,
        start=duty_start,
        end=duty_start + duty_window,
        period=duty_period,
        duty=duty,
    )
    plan = FaultPlan(
        events=FaultPlan.build(
            list(duty_plan.events)
            + [
                FaultEvent(at=partition_at, kind="partition", target=(isolated, others)),
                FaultEvent(at=heal_at, kind="heal", target=(isolated, others)),
            ]
        ).events,
        duration=heal_at + tail,
    )
    controller = ChaosController(domain)
    controller.execute(plan)

    # ------------------------------------------------------------------
    # Steady anycast traffic, scheduled up front (deterministic).
    # ------------------------------------------------------------------
    sent = 0

    def send(sequence: int) -> None:
        client.send_anycast(
            name, data=f"{sequence}:{domain.sim.now:.6f}".encode()
        )

    start = domain.sim.now
    traffic_end = heal_at + tail
    t = 0.0
    while t < traffic_end:
        domain.sim.at(start + t, send, sent)
        sent += 1
        t += send_interval

    domain.run(traffic_end)

    # Drain: every custodied payload must settle — released once the
    # healed mesh re-learns the name, or lapsed by its TTL — before the
    # post-heal convergence invariants are checked.
    checker = InvariantChecker(domain)
    domain.run(checker.convergence_bound())
    converged = checker.check_converged()

    inr_totals = merge_counts(inr.stats.snapshot() for inr in domain.inrs)
    latencies = sorted(delivered.values())

    def latency_at(fraction: float) -> float:
        if not latencies:
            return 0.0
        index = min(len(latencies) - 1, int(fraction * (len(latencies) - 1)))
        return latencies[index]

    report = DtnReport(
        seed=seed,
        custody=custody,
        disruption=disruption,
        messages_sent=sent,
        messages_delivered=len(delivered),
        delivery_ratio=len(delivered) / sent if sent else 0.0,
        latency_p50=latency_at(0.50),
        latency_p99=latency_at(0.99),
        latency_max=latencies[-1] if latencies else 0.0,
        custody_accepted=int(inr_totals.get("custody_accepted", 0)),
        custody_released=int(inr_totals.get("custody_released", 0)),
        custody_transfers_sent=int(inr_totals.get("custody_transfers_sent", 0)),
        custody_transfers_received=int(
            inr_totals.get("custody_transfers_received", 0)
        ),
        expiry_grace_readmissions=int(
            inr_totals.get("expiry_grace_readmissions", 0)
        ),
        drops_custody_expired=int(inr_totals.get("drops_custody_expired", 0)),
        drops_custody_evicted=int(inr_totals.get("drops_custody_evicted", 0)),
        drops_custody_transfer_failed=int(
            inr_totals.get("drops_custody_transfer_failed", 0)
        ),
        drops_no_route=int(inr_totals.get("drops_no_route", 0)),
        drops_expired_record=int(inr_totals.get("drops_expired_record", 0)),
        converged_violations=tuple(
            violation.invariant for violation in converged
        ),
        faults_applied=len(controller.applied),
        fault_kinds=plan.kinds,
        sim_time=domain.now,
    )
    if collector is not None:
        domain.harvest()
        report.collector = collector
    return report


def run_dtn_sweep(
    seed: int = 0,
    disruptions: Sequence[float] = (10.0, 30.0, 60.0),
    observe_first: bool = False,
    **kwargs,
) -> List[Dict[str, DtnReport]]:
    """Delivery ratio and latency vs disruption length, custody on vs
    off — the controlled ablation ``BENCH_dtn.json`` records.

    ``observe_first`` traces the custody-on run of the first disruption
    length (one observed run keeps the sweep cheap while still
    producing span artifacts for the CI job to upload).
    """
    rows: List[Dict[str, DtnReport]] = []
    for index, disruption in enumerate(disruptions):
        observed = observe_first and index == 0
        rows.append(
            {
                "disruption": disruption,
                "custody_on": run_dtn_scenario(
                    seed=seed,
                    custody=True,
                    disruption=disruption,
                    observe=observed,
                    **kwargs,
                ),
                "custody_off": run_dtn_scenario(
                    seed=seed, custody=False, disruption=disruption, **kwargs
                ),
            }
        )
    return rows


def write_bench_dtn_json(
    path: Union[str, Path], rows: Sequence[Dict[str, object]]
) -> dict:
    """Emit ``BENCH_dtn.json``: delivery ratio and latency vs
    disruption length, custody on vs off. Returns the payload.

    A custody-on report carrying a collector (an ``observe=True`` run)
    contributes an ``observability`` section keyed by its disruption
    length — drop attribution and per-hop percentiles for the traced
    run.
    """
    payload_rows = []
    observability = {}
    for row in rows:
        on: DtnReport = row["custody_on"]
        off: DtnReport = row["custody_off"]
        payload_rows.append(
            {
                "disruption": row["disruption"],
                "custody_on": asdict(on),
                "custody_off": asdict(off),
                "delivery_ratio_delta": round(
                    on.delivery_ratio - off.delivery_ratio, 6
                ),
            }
        )
        collector = getattr(on, "collector", None)
        if collector is not None:
            observability[str(row["disruption"])] = (
                collector.observability_payload()
            )
    payload = {
        "benchmark": "dtn-chaos",
        "schema_version": 1,
        "rows": payload_rows,
    }
    if observability:
        payload["observability"] = observability
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
